"""Shared fixtures for the benchmark suite.

The expensive state — a built pipeline and the two trained generators —
is session-scoped and shared by the Table 2 / Figure 7 / Figure 8 /
Figure 9 benchmarks, exactly as one training run feeds all evaluation
experiments in the paper.

Scale is selected with the ``REPRO_BENCH_SCALE`` environment variable:

* ``full`` (default) — 128 px, the smallest scale where Table 2's
  qualitative shape reproduces (~6 CPU minutes for the shared run);
* ``medium`` — 64 px, ~1.5 minutes;
* ``quick`` — 32 px smoke scale for CI.

Trained generators are checkpointed under ``benchmarks/.cache`` keyed
by the experiment configuration, so re-running the suite skips
training.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np
import pytest

from repro import nn
from repro.bench import ExperimentConfig, Pipeline, TrainedGenerators
from repro.bench.harness import train_generators as _train
from repro.core import MaskGenerator
from repro.core.gan_opc import TrainingHistory
from repro.core.pretrain import PretrainHistory

_CACHE_DIR = os.path.join(os.path.dirname(__file__), ".cache")
OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def _scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "full")


def experiment_config() -> ExperimentConfig:
    scale = _scale()
    if scale == "quick":
        return ExperimentConfig.quick()
    if scale == "medium":
        return ExperimentConfig.medium()
    if scale == "full":
        return ExperimentConfig()
    raise ValueError(f"unknown REPRO_BENCH_SCALE={scale!r}")


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return experiment_config()


@pytest.fixture(scope="session")
def pipeline(bench_config) -> Pipeline:
    return Pipeline.build(bench_config)


def _config_key(config: ExperimentConfig) -> str:
    payload = json.dumps(config.__dict__, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@pytest.fixture(scope="session")
def generators(pipeline) -> TrainedGenerators:
    """Trained GAN-OPC / PGAN-OPC generators, cached on disk."""
    key = _config_key(pipeline.config)
    cache = os.path.join(_CACHE_DIR, key)
    gan_ckpt = os.path.join(cache, "gan.npz")
    pgan_ckpt = os.path.join(cache, "pgan.npz")
    hist_path = os.path.join(cache, "histories.npz")

    gan_cfg = pipeline.gan_config()
    if all(os.path.exists(p) for p in (gan_ckpt, pgan_ckpt, hist_path)):
        gan = MaskGenerator(gan_cfg.generator_channels,
                            rng=np.random.default_rng(0))
        pgan = MaskGenerator(gan_cfg.generator_channels,
                             rng=np.random.default_rng(0))
        nn.load_state(gan, gan_ckpt)
        nn.load_state(pgan, pgan_ckpt)
        with np.load(hist_path) as h:
            gan_history = TrainingHistory(
                generator_loss=list(h["gan_g"]),
                discriminator_loss=list(h["gan_d"]),
                l2_to_reference=list(h["gan_l2"]),
                runtime_seconds=float(h["gan_rt"]))
            pgan_history = TrainingHistory(
                generator_loss=list(h["pgan_g"]),
                discriminator_loss=list(h["pgan_d"]),
                l2_to_reference=list(h["pgan_l2"]),
                runtime_seconds=float(h["pgan_rt"]))
            pretrain_history = PretrainHistory(
                litho_error=list(h["pre_e"]),
                runtime_seconds=float(h["pre_rt"]))
        return TrainedGenerators(gan=gan, pgan=pgan,
                                 gan_history=gan_history,
                                 pgan_history=pgan_history,
                                 pretrain_history=pretrain_history)

    trained = _train(pipeline)
    os.makedirs(cache, exist_ok=True)
    nn.save_state(trained.gan, gan_ckpt)
    nn.save_state(trained.pgan, pgan_ckpt)
    np.savez(hist_path,
             gan_g=trained.gan_history.generator_loss,
             gan_d=trained.gan_history.discriminator_loss,
             gan_l2=trained.gan_history.l2_to_reference,
             gan_rt=trained.gan_history.runtime_seconds,
             pgan_g=trained.pgan_history.generator_loss,
             pgan_d=trained.pgan_history.discriminator_loss,
             pgan_l2=trained.pgan_history.l2_to_reference,
             pgan_rt=trained.pgan_history.runtime_seconds,
             pre_e=trained.pretrain_history.litho_error,
             pre_rt=trained.pretrain_history.runtime_seconds)
    return trained


@pytest.fixture(scope="session")
def output_dir() -> str:
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def table2_result(pipeline, generators):
    """The Table 2 experiment, run once and shared by the Table 2,
    Figure 8 and Figure 9 benchmarks (they are different views of the
    same optimization runs, as in the paper)."""
    from repro.bench import run_table2
    return run_table2(pipeline, generators)
