"""Table 1 exercise: design-rule-driven layout synthesis.

Table 1 lists the rules the paper's 4000-clip training library is
synthesized under (M1 CD 80nm, pitch 140nm, tip-to-tip 60nm).  This
benchmark measures the synthesizer's throughput and verifies that a
batch of generated clips is 100% design-rule clean — the property that
makes the synthetic library a valid stand-in for real M1 topologies.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import DesignRuleChecker, DesignRules
from repro.layoutgen import LayoutSynthesizer, TopologyConfig

CLIP_COUNT = 64


def test_table1_rule_clean_synthesis(benchmark):
    synthesizer = LayoutSynthesizer(TopologyConfig(extent=2048.0))

    clips = benchmark.pedantic(
        lambda: synthesizer.generate_batch(CLIP_COUNT, seed=123),
        rounds=1, iterations=1)

    rules = DesignRules.iccad32nm()
    checker = DesignRuleChecker(rules)
    violations = sum(len(checker.check(clip)) for clip in clips)
    densities = [clip.density for clip in clips]

    print("\n=== Table 1 rules ===")
    print(f"M1 critical dimension: {rules.critical_dimension:.0f} nm")
    print(f"Pitch:                 {rules.pitch:.0f} nm")
    print(f"Tip-to-tip distance:   {rules.tip_to_tip:.0f} nm")
    print(f"\nsynthesized {CLIP_COUNT} clips @ 2048nm: "
          f"{violations} rule violations, "
          f"density {np.mean(densities):.3f} +- {np.std(densities):.3f}")

    benchmark.extra_info["violations"] = violations
    benchmark.extra_info["mean_density"] = round(float(np.mean(densities)), 3)
    assert violations == 0
    assert all(len(clip) >= 1 for clip in clips)
