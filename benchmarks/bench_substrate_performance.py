"""Substrate performance benchmarks.

Not a paper table — these measure the throughput of the pieces every
experiment is built on (the numbers that determine how far above the
CPU scale a user can push):

* aerial-image simulation (Eq. 2) per grid size,
* one ILT gradient step (Eq. 14),
* the unified engine's forward and adjoint throughput, batch 1 vs 8,
* f32 vs f64 engine throughput (the precision fast path),
* the backend seam (explicit numpy backend vs the default inline path)
  and the autotuner's chosen engine tuning,
* f64 vs f32 ILT-guided pretrain steps (end-to-end f32 training),
* serial vs multiprocess per-clip ILT (the ``repro.parallel`` layer),
* one generator forward pass,
* one full Algorithm 1 training iteration.

The engine benchmarks also pin the perf-work acceptance bars: a single
batched :class:`LithoEngine` gradient call must be at least twice as
fast as looping the pre-refactor single-image implementation over the
same batch (64 px, batch 8); the f32 engine forward must be at least
1.3x the f64 forward; a full f32 pretrain step must be at least 1.5x
the f64 step (64 px, batch 8); and on machines with >= 4 cores,
parallel per-clip ILT must be at least 2x the serial loop.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.bench.record import BenchRecorder
from repro.core import (GanOpcConfig, GanOpcTrainer, MaskGenerator,
                        PairDiscriminator)
from repro.core.flow import GanOpcFlow
from repro.ilt import litho_error_and_gradient
from repro.ilt.optimizer import ILTConfig
from repro.litho import LithoConfig, LithoEngine, build_kernels, aerial_image
from repro.litho.resist import _stable_sigmoid

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _wire_mask(grid):
    mask = np.zeros((grid, grid))
    width = grid // 8
    mask[grid // 2 - width // 2: grid // 2 + width // 2,
         grid // 8: grid - grid // 8] = 1.0
    return mask


@pytest.mark.parametrize("grid", [64, 128, 256])
def test_aerial_image_throughput(grid, benchmark):
    kernels = build_kernels(LithoConfig.small(grid))
    mask = _wire_mask(grid)
    benchmark(aerial_image, mask, kernels)


@pytest.mark.parametrize("grid", [64, 128])
def test_ilt_gradient_step(grid, benchmark):
    config = LithoConfig.small(grid)
    kernels = build_kernels(config)
    target = _wire_mask(grid)
    params = 2.0 * target - 1.0
    benchmark(litho_error_and_gradient, params, target, kernels,
              config.threshold, config.resist_steepness,
              config.mask_steepness)


def _noop_task():
    """Module-level no-op for the pool-overhead benchmark entry."""
    return 0


def _mask_batch(grid, batch):
    rng = np.random.default_rng(7)
    masks = rng.random((batch, grid, grid))
    masks[:, grid // 4: 3 * grid // 4, grid // 4: 3 * grid // 4] += 0.5
    return np.clip(masks, 0.0, 1.0)


def _target_batch(grid, batch):
    rng = np.random.default_rng(11)
    return (rng.random((batch, grid, grid)) > 0.7).astype(float)


def _legacy_gradient_wrt_mask(mask, target, kernels, threshold, steepness):
    """The pre-refactor single-image path, verbatim: plain ``fft2``,
    per-call flipped-kernel recompute, per-kernel inverse transforms."""
    spectrum = np.fft.fft2(mask)
    fields = np.fft.ifft2(spectrum[None] * kernels.freq_kernels,
                          axes=(-2, -1))
    intensity = np.einsum("k,kxy->xy", kernels.weights,
                          np.abs(fields) ** 2)
    wafer = _stable_sigmoid(steepness * (intensity - threshold))
    diff = wafer - target
    grad_intensity = 2.0 * steepness * diff * wafer * (1.0 - wafer)
    flipped = np.roll(kernels.freq_kernels[:, ::-1, ::-1], 1, axis=(-2, -1))
    weighted = grad_intensity[None] * np.conj(fields)
    grad = np.fft.ifft2(np.fft.fft2(weighted, axes=(-2, -1)) * flipped,
                        axes=(-2, -1))
    grad = 2.0 * np.einsum("k,kxy->xy", kernels.weights, grad.real)
    return float(np.sum(diff * diff)), grad


@pytest.mark.parametrize("batch", [1, 8])
@pytest.mark.parametrize("grid", [64, 128])
def test_engine_forward_throughput(grid, batch, benchmark):
    engine = LithoEngine.for_kernels(build_kernels(LithoConfig.small(grid)))
    masks = _mask_batch(grid, batch)
    benchmark(engine.aerial, masks)


@pytest.mark.parametrize("batch", [1, 8])
@pytest.mark.parametrize("grid", [64, 128])
def test_engine_gradient_throughput(grid, batch, benchmark):
    engine = LithoEngine.for_kernels(build_kernels(LithoConfig.small(grid)))
    masks = _mask_batch(grid, batch)
    targets = _target_batch(grid, batch)
    benchmark(engine.error_and_gradient_wrt_mask, masks, targets)


def test_batched_gradient_at_least_2x_per_sample_loop():
    """The refactor's acceptance bar: one batched engine call beats the
    legacy per-sample loop by >= 2x at 64 px, batch 8."""
    grid, batch = 64, 8
    config = LithoConfig.small(grid)
    kernels = build_kernels(config)
    engine = LithoEngine.for_kernels(kernels)
    masks = _mask_batch(grid, batch)
    targets = _target_batch(grid, batch)

    def batched():
        return engine.error_and_gradient_wrt_mask(masks, targets)

    def legacy_loop():
        for i in range(batch):
            _legacy_gradient_wrt_mask(masks[i], targets[i], kernels,
                                      config.threshold,
                                      config.resist_steepness)

    def best_of(fn, repeats=5):
        fn()  # warm-up
        timings = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            timings.append(time.perf_counter() - start)
        return min(timings)

    t_batched = best_of(batched)
    t_loop = best_of(legacy_loop)
    speedup = t_loop / t_batched
    print(f"\nbatched {t_batched * 1e3:.1f} ms vs per-sample loop "
          f"{t_loop * 1e3:.1f} ms -> {speedup:.2f}x")
    assert speedup >= 2.0

    # And it is not a different computation: parity with the legacy path.
    errors, grads = engine.error_and_gradient_wrt_mask(masks, targets)
    for i in range(batch):
        ref_error, ref_grad = _legacy_gradient_wrt_mask(
            masks[i], targets[i], kernels, config.threshold,
            config.resist_steepness)
        np.testing.assert_allclose(errors[i], ref_error, rtol=1e-10)
        np.testing.assert_allclose(grads[i], ref_grad,
                                   rtol=1e-10, atol=1e-10)


def test_f32_forward_at_least_1p3x_f64():
    """Precision fast path acceptance bar: the f32 engine forward must
    be at least 1.3x the f64 forward (64 px, batch 8)."""
    from repro.bench.record import measure

    grid, batch = 64, 8
    kernels = build_kernels(LithoConfig.small(grid))
    engine64 = LithoEngine.for_kernels(kernels, precision="f64")
    engine32 = LithoEngine.for_kernels(kernels, precision="f32")
    masks = _mask_batch(grid, batch)

    t64 = measure(lambda: engine64.aerial(masks), repeats=7)
    t32 = measure(lambda: engine32.aerial(masks), repeats=7)
    speedup = t64 / t32
    print(f"\nf64 forward {t64 * 1e3:.1f} ms vs f32 "
          f"{t32 * 1e3:.1f} ms -> {speedup:.2f}x")
    assert speedup >= 1.3


def _pretrainer(kernels, precision, batch):
    """A warm ILT-guided pretrainer + batch at the given precision."""
    from dataclasses import replace

    from repro import nn
    from repro.core import ILTGuidedPretrainer
    from repro.layoutgen import SyntheticDataset

    grid = kernels.config.grid
    litho = LithoConfig.small(grid)
    config = replace(GanOpcConfig.small(grid), batch_size=batch)
    engine = LithoEngine.for_kernels(kernels, precision=precision)
    generator = MaskGenerator(config.generator_channels,
                              rng=np.random.default_rng(0))
    if precision == "f32":
        nn.to_dtype(generator, np.float32)
    dataset = SyntheticDataset(litho, size=batch, seed=0, kernels=kernels)
    pretrainer = ILTGuidedPretrainer(generator, litho, config, engine=engine)
    targets = dataset.targets_batch(list(range(batch)))
    pretrainer.step(targets)  # warm caches, JIT nothing — numpy only
    return pretrainer, targets


def test_f32_pretrain_step_at_least_1p5x_f64():
    """End-to-end f32 acceptance bar: a full ILT-guided pretrain step
    (generator forward + litho gradient + backward + Adam) in f32 must
    be at least 1.5x the f64 step (64 px, batch 8).  This is the
    headline win of the dtype threading — it only holds if *no* stage
    silently promotes back to double."""
    from repro.bench.record import measure

    grid, batch = 64, 8
    kernels = build_kernels(LithoConfig.small(grid))
    pre64, targets64 = _pretrainer(kernels, "f64", batch)
    pre32, targets32 = _pretrainer(kernels, "f32", batch)

    t64 = measure(lambda: pre64.step(targets64), repeats=5)
    t32 = measure(lambda: pre32.step(targets32), repeats=5)
    speedup = t64 / t32
    print(f"\nf64 pretrain step {t64 * 1e3:.1f} ms vs f32 "
          f"{t32 * 1e3:.1f} ms -> {speedup:.2f}x")
    assert speedup >= 1.5


def _corner_grid(config):
    """C=4 corner stack (2 defocus x 2 dose) and the per-defocus nominal
    engines a per-corner loop would have to use."""
    from dataclasses import replace

    from repro.litho import ConditionSet

    conditions = ConditionSet.grid(defocuses=(0.0, 40.0),
                                   doses=(0.98, 1.02))
    per_defocus = {
        defocus: LithoEngine.for_kernels(build_kernels(
            replace(config, optics=replace(config.optics, defocus=defocus))))
        for defocus in conditions.defocuses
    }
    return conditions, per_defocus


def test_condition_stack_at_least_1p3x_per_corner_loop():
    """Condition-stack acceptance bar: one stacked ``condition_aerial``
    over a C=4 (2 defocus x 2 dose) corner grid must be at least 1.3x
    looping per-corner forwards on per-defocus nominal engines
    (64 px, batch 8).  The stack shares the mask spectrum and the dose
    axis, so 4 corners cost ~2 forwards."""
    from repro.bench.record import measure

    grid, batch = 64, 8
    config = LithoConfig.small(grid)
    conditions, per_defocus = _corner_grid(config)
    stacked = LithoEngine.for_conditions(
        per_defocus[0.0].kernels, conditions)
    masks = _mask_batch(grid, batch)

    def stacked_forward():
        return stacked.condition_aerial(masks)

    def per_corner_loop():
        for corner in conditions:
            per_defocus[corner.defocus].aerial(masks) * corner.dose

    t_stacked = measure(stacked_forward, repeats=7)
    t_loop = measure(per_corner_loop, repeats=7)
    speedup = t_loop / t_stacked
    print(f"\nstacked C=4 forward {t_stacked * 1e3:.1f} ms vs per-corner "
          f"loop {t_loop * 1e3:.1f} ms -> {speedup:.2f}x")
    assert speedup >= 1.3

    # Same physics: each stacked corner slab equals the looped corner.
    corner_stack = stacked.condition_aerial(masks)
    for c, corner in enumerate(conditions):
        ref = per_defocus[corner.defocus].aerial(masks) * corner.dose
        np.testing.assert_allclose(corner_stack[:, c], ref,
                                   rtol=1e-12, atol=1e-12)


def test_parallel_ilt_at_least_2x_serial():
    """Parallel layer acceptance bar: per-clip ILT fanned across 4
    workers must be at least 2x the serial loop.  Only meaningful with
    real cores to fan across, so skipped below 4."""
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"needs >= 4 cores to assert scaling, have {cores}")
    from repro.bench.record import measure
    from repro.parallel import WorkerPool, parallel_ilt

    grid, batch, workers = 32, 8, 4
    config = LithoConfig.small(grid)
    ilt_config = ILTConfig(max_iterations=25)
    rng = np.random.default_rng(3)
    targets = (rng.random((batch, grid, grid)) > 0.75).astype(float)

    with WorkerPool(workers, litho_config=config) as pool:
        # Warm the pool outside the timed region: worker startup and
        # kernel loading are one-time costs an experiment amortizes
        # over thousands of clips.
        parallel_ilt(targets[:workers], config, ilt_config, pool=pool)
        t_parallel = measure(
            lambda: parallel_ilt(targets, config, ilt_config, pool=pool),
            repeats=3)
    t_serial = measure(
        lambda: parallel_ilt(targets, config, ilt_config, workers=1),
        repeats=3)
    speedup = t_serial / t_parallel
    print(f"\nserial ILT {t_serial:.2f} s vs {workers} workers "
          f"{t_parallel:.2f} s -> {speedup:.2f}x")
    assert speedup >= 2.0


def test_write_bench_substrate_record():
    """Persist the substrate numbers as ``BENCH_substrate.json``.

    Unlike the pytest-benchmark tables above, this record is
    machine-readable and checked in at the repo root, so later changes
    can diff their engine throughput and flow stage split against it.
    """
    from repro.litho.kernels import config_hash

    grid = 64
    recorder = BenchRecorder("substrate",
                             config_hash=config_hash(LithoConfig.small(grid)))
    kernels = build_kernels(LithoConfig.small(grid))
    engine = LithoEngine.for_kernels(kernels, precision="f64")
    engine32 = LithoEngine.for_kernels(kernels, precision="f32")
    for batch in (1, 8):
        masks = _mask_batch(grid, batch)
        targets = _target_batch(grid, batch)
        recorder.timeit(f"engine_forward/grid{grid}/batch{batch}",
                        lambda: engine.aerial(masks),
                        grid=grid, batch=batch)
        recorder.timeit(
            f"engine_gradient/grid{grid}/batch{batch}",
            lambda: engine.error_and_gradient_wrt_mask(masks, targets),
            grid=grid, batch=batch)
        recorder.timeit(f"engine_forward_f32/grid{grid}/batch{batch}",
                        lambda: engine32.aerial(masks),
                        grid=grid, batch=batch)
        recorder.timeit(
            f"engine_gradient_f32/grid{grid}/batch{batch}",
            lambda: engine32.error_and_gradient_wrt_mask(masks, targets),
            grid=grid, batch=batch)

    # Backend seam: an engine built on the explicit numpy backend must
    # cost the same as the default inline path (the seam is free), and
    # a full ILT-guided pretrain step records the end-to-end f64 vs f32
    # training throughput the 1.5x acceptance bar gates.
    from repro.backend import resolve_backend
    from repro.backend.autotune import autotune_engine, candidate_key

    batch = 8
    masks = _mask_batch(grid, batch)
    targets = _target_batch(grid, batch)
    seamed = LithoEngine.for_kernels(kernels, precision="f64",
                                     backend=resolve_backend("numpy"))
    recorder.timeit(
        f"backend_numpy_gradient/grid{grid}/batch{batch}",
        lambda: seamed.error_and_gradient_wrt_mask(masks, targets),
        grid=grid, batch=batch, backend="numpy")
    for precision in ("f64", "f32"):
        pretrainer, pre_targets = _pretrainer(kernels, precision, batch)
        recorder.timeit(
            f"backend_pretrain_step/grid{grid}/batch{batch}/{precision}",
            lambda: pretrainer.step(pre_targets),
            grid=grid, batch=batch, backend="numpy", precision=precision,
            repeats=3)

    # Autotuner: measure the candidate grid on the live engine, adopt
    # the winner, and record the tuned gradient throughput next to the
    # untuned reference above.  The chosen candidate is stored in the
    # entry metadata so regressions in the *choice* are visible, not
    # just regressions in the timing.
    result = autotune_engine(
        LithoEngine.for_kernels(kernels, precision="f64"),
        batch=batch, repeats=3)
    tuned_engine = LithoEngine(kernels=kernels, precision="f64",
                               tuning=result.tuning)
    recorder.timeit(
        f"autotune_gradient/grid{grid}/batch{batch}",
        lambda: tuned_engine.error_and_gradient_wrt_mask(masks, targets),
        grid=grid, batch=batch,
        candidate=candidate_key(result.tuning),
        gflops=result.gflops)

    # Condition-stack throughput: C=4 corners (2 defocus x 2 dose)
    # through one stacked forward/adjoint, plus the per-corner loop it
    # replaces (per-defocus nominal engines), so the stacking win stays
    # visible in the record.
    config = LithoConfig.small(grid)
    conditions, per_defocus = _corner_grid(config)
    stacked = LithoEngine.for_conditions(per_defocus[0.0].kernels,
                                         conditions)
    for batch in (1, 8):
        masks = _mask_batch(grid, batch)
        targets = _target_batch(grid, batch)
        recorder.timeit(
            f"engine_condition_forward/grid{grid}/batch{batch}/corners4",
            lambda: stacked.condition_aerial(masks),
            grid=grid, batch=batch, corners=4)
        recorder.timeit(
            f"engine_condition_gradient/grid{grid}/batch{batch}/corners4",
            lambda: stacked.condition_error_and_gradient_wrt_mask(
                masks, targets, objective="weighted"),
            grid=grid, batch=batch, corners=4)
        recorder.timeit(
            f"engine_condition_loop_forward/grid{grid}/batch{batch}"
            f"/corners4",
            lambda: [per_defocus[c.defocus].aerial(masks) * c.dose
                     for c in conditions],
            grid=grid, batch=batch, corners=4)

    # Serial vs multiprocess per-clip ILT.  The parallel entry is only
    # recorded when there are real cores to fan across, so the checked-in
    # record stays comparable across machines.
    from repro.parallel import WorkerPool, parallel_ilt

    ilt_grid, ilt_batch = 32, 4
    ilt_litho = LithoConfig.small(ilt_grid)
    ilt_config = ILTConfig(max_iterations=20)
    rng = np.random.default_rng(3)
    ilt_targets = (rng.random((ilt_batch, ilt_grid, ilt_grid))
                   > 0.75).astype(float)
    recorder.timeit(
        f"serial_ilt/grid{ilt_grid}/batch{ilt_batch}",
        lambda: parallel_ilt(ilt_targets, ilt_litho, ilt_config, workers=1),
        grid=ilt_grid, batch=ilt_batch, repeats=3)
    cores = os.cpu_count() or 1
    if cores >= 4:
        workers = 4
        with WorkerPool(workers, litho_config=ilt_litho) as pool:
            parallel_ilt(ilt_targets, ilt_litho, ilt_config, pool=pool)
            recorder.timeit(
                f"parallel_ilt/grid{ilt_grid}/batch{ilt_batch}"
                f"/workers{workers}",
                lambda: parallel_ilt(ilt_targets, ilt_litho, ilt_config,
                                     pool=pool),
                grid=ilt_grid, batch=ilt_batch, repeats=3)

    # Tiled full-chip throughput: a 2x2-cell chip (64 px at 8 nm/px)
    # through the halo-overlap tile decomposition, serial and (with
    # real cores) fanned over the worker pool.  Tiles per second is the
    # number a full-chip run divides into its tile count.
    from repro.layoutgen import ChipConfig, synthesize_chip
    from repro.geometry import binarize, rasterize
    from repro.tiling import TilingConfig, tiled_ilt

    tiling = TilingConfig(tile=32, halo=4)
    tile_litho = LithoConfig.small(tiling.tile)
    tile_ilt = ILTConfig(max_iterations=10)
    chip = synthesize_chip(
        ChipConfig(cells=2, cell_extent=256.0, fill_probability=1.0),
        seed=5)
    chip_target = binarize(rasterize(chip, 64))
    n_tiles = tiling.grid_for(chip_target.shape[0]).rows ** 2
    recorder.timeit(
        f"tiling_ilt_serial/chip64/tile{tiling.tile}/halo{tiling.halo}",
        lambda: tiled_ilt(chip_target, tiling, tile_litho, tile_ilt,
                          workers=1),
        grid=tiling.tile, batch=n_tiles, repeats=3)
    if cores >= 4:
        workers = 4
        with WorkerPool(workers, litho_config=tile_litho) as pool:
            tiled_ilt(chip_target, tiling, tile_litho, tile_ilt, pool=pool)
            recorder.timeit(
                f"tiling_ilt_parallel/chip64/tile{tiling.tile}"
                f"/halo{tiling.halo}/workers{workers}",
                lambda: tiled_ilt(chip_target, tiling, tile_litho,
                                  tile_ilt, pool=pool),
                grid=tiling.tile, batch=n_tiles, repeats=3)

    # Observability overhead (gated in CI via --require obs_overhead_):
    # (a) one disabled trace.span — what instrumentation costs hot
    # paths while tracing is off; (b) the pool's per-task round trip
    # on no-op tasks — submit, engine-snapshot bookkeeping, result and
    # telemetry absorption — tracing disabled.
    from repro.obs import trace as obs_trace
    assert not obs_trace.is_enabled()
    span_iters = 20000

    def _disabled_span_loop():
        for _ in range(span_iters):
            with obs_trace.span("bench-probe"):
                pass

    recorder.timeit(f"obs_overhead_disabled_span/iters{span_iters}",
                    _disabled_span_loop, batch=span_iters, repeats=5)
    pool_tasks = 32
    with WorkerPool(2, litho_config=ilt_litho) as pool:
        pool.map(_noop_task, [() for _ in range(8)])  # warm workers
        recorder.timeit(
            f"obs_overhead_pool_map_noop/tasks{pool_tasks}/workers2",
            lambda: pool.map(_noop_task, [() for _ in range(pool_tasks)]),
            batch=pool_tasks, repeats=3)

    # Per-stage breakdown of the end-to-end flow: generator inference
    # vs ILT refinement (the split behind Table 2's runtime column).
    flow_grid = 32
    config = LithoConfig.small(flow_grid)
    gan_cfg = GanOpcConfig.small(flow_grid)
    generator = MaskGenerator(gan_cfg.generator_channels,
                              rng=np.random.default_rng(0))
    generator.eval()
    flow = GanOpcFlow(generator, config,
                      ILTConfig(max_iterations=10, patience=4))
    result = flow.optimize(_wire_mask(flow_grid))
    recorder.add(f"flow_generation/grid{flow_grid}",
                 result.generation_seconds, grid=flow_grid)
    recorder.add(f"flow_refinement/grid{flow_grid}",
                 result.refinement_seconds, grid=flow_grid,
                 iterations=float(result.ilt_result.iterations))

    path = recorder.write(os.path.join(REPO_ROOT, "BENCH_substrate.json"))
    with open(path, "r", encoding="utf-8") as fh:
        record = json.load(fh)
    assert record["benchmark"] == "substrate"
    assert record["schema"] == 1
    entries = record["entries"]
    assert f"engine_forward/grid{grid}/batch8" in entries
    assert f"engine_gradient/grid{grid}/batch1" in entries
    assert f"engine_forward_f32/grid{grid}/batch8" in entries
    assert f"backend_numpy_gradient/grid{grid}/batch8" in entries
    assert f"backend_pretrain_step/grid{grid}/batch8/f64" in entries
    assert f"backend_pretrain_step/grid{grid}/batch8/f32" in entries
    assert f"autotune_gradient/grid{grid}/batch8" in entries
    assert "candidate" in entries[f"autotune_gradient/grid{grid}/batch8"]
    assert f"engine_condition_forward/grid{grid}/batch8/corners4" in entries
    assert f"engine_condition_gradient/grid{grid}/batch1/corners4" in entries
    assert (f"engine_condition_loop_forward/grid{grid}/batch8/corners4"
            in entries)
    assert f"serial_ilt/grid{ilt_grid}/batch{ilt_batch}" in entries
    assert (f"tiling_ilt_serial/chip64/tile{tiling.tile}/halo{tiling.halo}"
            in entries)
    assert f"flow_generation/grid{flow_grid}" in entries
    assert f"obs_overhead_disabled_span/iters{span_iters}" in entries
    assert (f"obs_overhead_pool_map_noop/tasks{pool_tasks}/workers2"
            in entries)
    for name, entry in entries.items():
        assert entry["seconds"] >= 0.0, name
    assert entries[f"engine_forward/grid{grid}/batch8"][
        "throughput_per_second"] > 0.0


def test_generator_forward(benchmark):
    config = GanOpcConfig.small(64)
    generator = MaskGenerator(config.generator_channels,
                              rng=np.random.default_rng(0))
    generator.eval()
    target = _wire_mask(64)
    benchmark(generator.generate, target)


def test_algorithm1_iteration(benchmark):
    config = GanOpcConfig.small(64)
    generator = MaskGenerator(config.generator_channels,
                              rng=np.random.default_rng(0))
    discriminator = PairDiscriminator(64, config.discriminator_channels,
                                      rng=np.random.default_rng(1))
    trainer = GanOpcTrainer(generator, discriminator, config)
    rng = np.random.default_rng(2)
    targets = (rng.random((config.batch_size, 1, 64, 64)) > 0.8).astype(float)
    masks = np.clip(targets + 0.1 * rng.random(targets.shape), 0, 1)
    benchmark(trainer.train_iteration, targets, masks)
