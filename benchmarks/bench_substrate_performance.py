"""Substrate performance benchmarks.

Not a paper table — these measure the throughput of the pieces every
experiment is built on (the numbers that determine how far above the
CPU scale a user can push):

* aerial-image simulation (Eq. 2) per grid size,
* one ILT gradient step (Eq. 14),
* one generator forward pass,
* one full Algorithm 1 training iteration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core import (GanOpcConfig, GanOpcTrainer, MaskGenerator,
                        PairDiscriminator)
from repro.ilt import litho_error_and_gradient
from repro.litho import LithoConfig, build_kernels, aerial_image


def _wire_mask(grid):
    mask = np.zeros((grid, grid))
    width = grid // 8
    mask[grid // 2 - width // 2: grid // 2 + width // 2,
         grid // 8: grid - grid // 8] = 1.0
    return mask


@pytest.mark.parametrize("grid", [64, 128, 256])
def test_aerial_image_throughput(grid, benchmark):
    kernels = build_kernels(LithoConfig.small(grid))
    mask = _wire_mask(grid)
    benchmark(aerial_image, mask, kernels)


@pytest.mark.parametrize("grid", [64, 128])
def test_ilt_gradient_step(grid, benchmark):
    config = LithoConfig.small(grid)
    kernels = build_kernels(config)
    target = _wire_mask(grid)
    params = 2.0 * target - 1.0
    benchmark(litho_error_and_gradient, params, target, kernels,
              config.threshold, config.resist_steepness,
              config.mask_steepness)


def test_generator_forward(benchmark):
    config = GanOpcConfig.small(64)
    generator = MaskGenerator(config.generator_channels,
                              rng=np.random.default_rng(0))
    generator.eval()
    target = _wire_mask(64)
    benchmark(generator.generate, target)


def test_algorithm1_iteration(benchmark):
    config = GanOpcConfig.small(64)
    generator = MaskGenerator(config.generator_channels,
                              rng=np.random.default_rng(0))
    discriminator = PairDiscriminator(64, config.discriminator_channels,
                                      rng=np.random.default_rng(1))
    trainer = GanOpcTrainer(generator, discriminator, config)
    rng = np.random.default_rng(2)
    targets = (rng.random((config.batch_size, 1, 64, 64)) > 0.8).astype(float)
    masks = np.clip(targets + 0.1 * rng.random(targets.shape), 0, 1)
    benchmark(trainer.train_iteration, targets, masks)
