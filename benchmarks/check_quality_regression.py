"""Compare a freshly measured QUALITY_*.json against the committed baseline.

The quality twin of ``check_bench_regression.py``: CI reruns the small
deterministic Table 2 subset (``repro table2 --scale quick --clips ...
--quality-out``) on the runner and calls this script to fail the build
when any gated mask-quality metric got *worse* than the committed
``BASELINE_quality.json`` beyond tolerance.

All gated metrics (L2, PVB, EPE violations, window PVB, worst-corner
L2/EPE) are lower-is-better, so only increases can fail the gate.  Two
tolerances combine, and a value fails only when it exceeds **both**:

* ``--rel-tol`` — fractional increase over the baseline value
  (default 5%); the subset is serial float64 and deterministic per
  (numpy version, litho config), so this mostly absorbs cross-version
  numeric drift, not real regressions;
* ``--abs-tol`` — absolute slack (default 1.0), which keeps
  small-count metrics (EPE violations 0 -> 1) from tripping on
  off-by-one noise while a 0 -> 5 jump still fails.

Per-clip metrics and per-method aggregates are both gated; comparisons
run only where baseline and candidate share the entry, and
``--require`` guards against a method or clip silently vanishing.

Usage::

    python benchmarks/check_quality_regression.py \
        --baseline benchmarks/BASELINE_quality.json \
        --candidate /tmp/QUALITY_ci.json --require ILT --require PGAN-OPC
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Tuple


def _load(path: str) -> dict:
    import os
    src = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       os.pardir, "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.runs.quality import QualityRecordError, load_quality_record
    try:
        return load_quality_record(path)
    except QualityRecordError as exc:
        raise SystemExit(f"error: {exc}")


def _worse(base: float, cand: float, rel_tol: float,
           abs_tol: float) -> bool:
    """True when a lower-is-better value regressed beyond tolerance."""
    return cand > base + abs_tol and cand > base * (1.0 + rel_tol)


def compare(baseline: dict, candidate: dict, rel_tol: float,
            abs_tol: float, skip: List[str]
            ) -> Tuple[List[str], List[str]]:
    """Return (report lines, regression labels) over clips + aggregates."""
    lines: List[str] = []
    regressions: List[str] = []

    def check(label: str, base_metrics: Dict[str, float],
              cand_metrics: Dict[str, float]) -> None:
        for metric in sorted(set(base_metrics) & set(cand_metrics)):
            name = f"{label}.{metric}"
            if any(token in name for token in skip):
                continue
            base = base_metrics[metric]
            cand = cand_metrics[metric]
            if not isinstance(base, (int, float)) \
                    or not isinstance(cand, (int, float)):
                continue
            status = "ok"
            if _worse(float(base), float(cand), rel_tol, abs_tol):
                status = "REGRESSION"
                regressions.append(name)
            elif float(cand) < float(base):
                status = "improved"
            lines.append(f"  {name:55s} {base:12.1f} -> {cand:12.1f}  "
                         f"{status}")

    base_clips = baseline["clips"]
    cand_clips = candidate["clips"]
    for method in sorted(set(base_clips) & set(cand_clips)):
        for clip in sorted(set(base_clips[method])
                           & set(cand_clips[method])):
            check(f"{method}/{clip}", base_clips[method][clip],
                  cand_clips[method][clip])
    base_agg = baseline.get("aggregates", {})
    cand_agg = candidate.get("aggregates", {})
    for method in sorted(set(base_agg) & set(cand_agg)):
        check(f"{method}/mean", base_agg[method], cand_agg[method])

    for method in sorted(set(base_clips) - set(cand_clips)):
        lines.append(f"  {method:55s} (baseline only, skipped)")
    return lines, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BASELINE_quality.json")
    parser.add_argument("--candidate", required=True,
                        help="freshly measured QUALITY_*.json")
    parser.add_argument("--rel-tol", type=float, default=0.05,
                        help="maximum tolerated fractional increase of a "
                             "lower-is-better metric (default 0.05)")
    parser.add_argument("--abs-tol", type=float, default=1.0,
                        help="absolute slack added to the baseline before "
                             "the relative test applies (default 1.0; "
                             "absorbs off-by-one count noise)")
    parser.add_argument("--skip", action="append", default=[],
                        help="substring of entry names to ignore "
                             "(repeatable)")
    parser.add_argument("--require", action="append", default=[],
                        help="method name that must be present in both "
                             "records (repeatable); guards against a "
                             "column silently disappearing from the gate")
    args = parser.parse_args(argv)

    baseline = _load(args.baseline)
    candidate = _load(args.candidate)
    if baseline.get("suite") != candidate.get("suite"):
        print(f"FAIL: suite mismatch: baseline "
              f"{baseline.get('suite')!r} vs candidate "
              f"{candidate.get('suite')!r} — the gate must compare the "
              f"same clip subset at the same scale")
        return 1
    missing = [
        f"{which}: method {method!r} absent"
        for method in args.require
        for which, record in (("baseline", baseline),
                              ("candidate", candidate))
        if method not in record["clips"]
    ]
    if missing:
        print("FAIL: required methods missing from the quality record:")
        for line in missing:
            print(f"  {line}")
        return 1

    lines, regressions = compare(baseline, candidate, args.rel_tol,
                                 args.abs_tol, args.skip)
    print(f"mask quality vs baseline (suite {candidate.get('suite')!r}, "
          f"tolerance: +{args.rel_tol:.0%} and +{args.abs_tol:g} abs):")
    for line in lines:
        print(line)
    if regressions:
        print(f"\nFAIL: {len(regressions)} metric"
              f"{'' if len(regressions) == 1 else 's'} regressed beyond "
              f"tolerance: {', '.join(regressions)}")
        return 1
    print("\nno quality regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
