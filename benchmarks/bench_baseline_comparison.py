"""Baseline context: model-based OPC vs ILT vs no-OPC.

The paper's introduction motivates GAN-OPC with the limits of the
conventional flow: model-based OPC is "highly restricted by [its]
solution space", ILT gets better contours at much higher runtime.  This
benchmark quantifies that backdrop on the substitute suite: printing
the raw target, MB-OPC-corrected masks, and ILT masks.

Expected shape: no-OPC >> MB-OPC > ILT on L2, with MB-OPC much faster
than ILT.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import iccad13_suite
from repro.geometry import binarize, rasterize
from repro.ilt import ILTConfig, ILTOptimizer
from repro.litho import LithoConfig, LithoSimulator, build_kernels
from repro.metrics import squared_l2
from repro.opc import MbOpcConfig, ModelBasedOPC

GRID = 64


def test_conventional_flow_baselines(benchmark):
    litho = LithoConfig.small(GRID)
    kernels = build_kernels(litho)
    simulator = LithoSimulator(litho, kernels)
    clips = iccad13_suite(litho)[:5]

    mbopc = ModelBasedOPC(litho, MbOpcConfig(iterations=8), kernels=kernels)
    ilt = ILTOptimizer(litho, ILTConfig(max_iterations=150), kernels=kernels)

    def run():
        rows = []
        for clip in clips:
            target = binarize(rasterize(clip.layout, GRID))
            no_opc = squared_l2(simulator.wafer_image(target), target)

            start = time.perf_counter()
            mb_result = mbopc.optimize(clip.layout)
            mb_time = time.perf_counter() - start

            start = time.perf_counter()
            ilt_result = ilt.optimize(target)
            ilt_time = time.perf_counter() - start

            rows.append((clip.name, no_opc, mb_result.l2, mb_time,
                         ilt_result.l2, ilt_time))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n=== Conventional-flow baselines (intro motivation) ===")
    print(f"{'clip':12s} {'no-OPC L2':>10s} {'MB-OPC L2':>10s} "
          f"{'MB RT':>7s} {'ILT L2':>8s} {'ILT RT':>7s}")
    for name, no_opc, mb_l2, mb_time, ilt_l2, ilt_time in rows:
        print(f"{name:12s} {no_opc:10.0f} {mb_l2:10.0f} {mb_time:7.2f} "
              f"{ilt_l2:8.0f} {ilt_time:7.2f}")

    no_opc_avg = np.mean([r[1] for r in rows])
    mb_avg = np.mean([r[2] for r in rows])
    ilt_avg = np.mean([r[4] for r in rows])
    benchmark.extra_info["no_opc_l2"] = round(float(no_opc_avg), 1)
    benchmark.extra_info["mbopc_l2"] = round(float(mb_avg), 1)
    benchmark.extra_info["ilt_l2"] = round(float(ilt_avg), 1)

    assert mb_avg < no_opc_avg, "MB-OPC must improve on no correction"
    assert ilt_avg <= mb_avg, "ILT must reach at least MB-OPC quality"
