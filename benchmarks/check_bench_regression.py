"""Compare a freshly measured ``BENCH_*.json`` against the committed baseline.

CI regenerates the substrate record on the runner and calls this script
to fail the build when any entry's ``throughput_per_second`` dropped by
more than ``--threshold`` (default 30%) versus the committed file.
Entries are compared only where both records have them (a new machine
may legitimately skip e.g. the multi-core parallel entry), and entries
whose name matches ``--skip`` substrings are ignored — raw wall-clock
on shared CI runners is noisy, so the threshold is deliberately loose:
it catches "this PR halved the engine", not single-digit jitter.

Usage::

    python benchmarks/check_bench_regression.py \
        --baseline BENCH_substrate.json --candidate /tmp/BENCH_substrate.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple


def load_entries(path: str) -> Dict[str, dict]:
    with open(path, "r", encoding="utf-8") as fh:
        record = json.load(fh)
    if record.get("schema") != 1:
        raise SystemExit(f"{path}: unsupported schema {record.get('schema')}")
    return record["entries"]


def compare(baseline: Dict[str, dict], candidate: Dict[str, dict],
            threshold: float, skip: List[str]
            ) -> Tuple[List[str], List[str]]:
    """Return (report lines, regression lines)."""
    lines: List[str] = []
    regressions: List[str] = []
    shared = sorted(set(baseline) & set(candidate))
    for name in shared:
        if any(token in name for token in skip):
            continue
        base = baseline[name].get("throughput_per_second")
        cand = candidate[name].get("throughput_per_second")
        if not base or not cand:
            continue
        ratio = cand / base
        status = "ok"
        if ratio < 1.0 - threshold:
            status = "REGRESSION"
            regressions.append(name)
        lines.append(f"  {name:45s} {base:10.2f} -> {cand:10.2f} /s "
                     f"({ratio:6.2f}x)  {status}")
    only_base = sorted(set(baseline) - set(candidate))
    for name in only_base:
        lines.append(f"  {name:45s} (baseline only, skipped)")
    return lines, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json")
    parser.add_argument("--candidate", required=True,
                        help="freshly measured BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="maximum tolerated fractional throughput drop "
                             "(default 0.30)")
    parser.add_argument("--skip", action="append", default=[],
                        help="substring of entry names to ignore "
                             "(repeatable)")
    parser.add_argument("--require", action="append", default=[],
                        help="entry-name prefix that must be present in "
                             "both records (repeatable); guards against a "
                             "benchmark family silently disappearing from "
                             "the gate")
    args = parser.parse_args(argv)

    baseline = load_entries(args.baseline)
    candidate = load_entries(args.candidate)
    missing = [
        f"{which}: no entry starts with {prefix!r}"
        for prefix in args.require
        for which, entries in (("baseline", baseline),
                               ("candidate", candidate))
        if not any(name.startswith(prefix) for name in entries)
    ]
    if missing:
        print("FAIL: required benchmark entries missing:")
        for line in missing:
            print(f"  {line}")
        return 1
    lines, regressions = compare(baseline, candidate, args.threshold,
                                 args.skip)
    print(f"throughput vs baseline (threshold: -{args.threshold:.0%}):")
    for line in lines:
        print(line)
    if regressions:
        print(f"\nFAIL: {len(regressions)} entr"
              f"{'y' if len(regressions) == 1 else 'ies'} regressed by more "
              f"than {args.threshold:.0%}: {', '.join(regressions)}")
        return 1
    print("\nno throughput regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
