"""Table 2 reproduction: ILT [7] vs GAN-OPC vs PGAN-OPC.

Regenerates the paper's main result table on the ICCAD-13-substitute
suite: per-clip squared L2 (nm^2), PV band (nm^2) and mask-optimization
runtime for the three methods, plus the average and ratio rows.

Paper ratios (vs ILT):     L2      PVB     RT
    GAN-OPC                0.911   0.993   0.488
    PGAN-OPC               0.908   0.981   0.471

The absolute numbers differ (CPU numpy substrate, scaled clips); the
reproduction targets the *shape*: flow L2 comparable to or below ILT's
(beating it at the default 128 px scale), comparable-or-better PVB, and
roughly halved runtime.

The heavyweight optimization runs live in the session-scoped
``table2_result`` fixture (shared with the Figure 8/9 benchmarks); the
benchmarked body here measures table assembly over those runs.
"""

from __future__ import annotations

from repro.bench import PAPER_AVERAGES
from repro.metrics import comparison_table


def test_table2_reproduction(table2_result, benchmark):
    """Regenerate Table 2 and record measured-vs-paper ratios."""
    result = table2_result

    table = benchmark.pedantic(
        lambda: comparison_table(result.columns, baseline="ILT"),
        rounds=1, iterations=1)

    print("\n=== Table 2 (reproduced) ===")
    print(table)

    print("\n=== ratio vs ILT: measured | paper ===")
    paper_ilt = PAPER_AVERAGES["ilt"]
    for method, key in (("GAN-OPC", "gan"), ("PGAN-OPC", "pgan")):
        measured = result.ratio(method)
        paper = tuple(p / b for p, b in zip(PAPER_AVERAGES[key], paper_ilt))
        print(f"{method:9s} L2 {measured[0]:.3f}|{paper[0]:.3f}  "
              f"PVB {measured[1]:.3f}|{paper[1]:.3f}  "
              f"RT {measured[2]:.3f}|{paper[2]:.3f}")
        benchmark.extra_info[f"{key}_l2_ratio"] = round(measured[0], 3)
        benchmark.extra_info[f"{key}_pvb_ratio"] = round(measured[1], 3)
        benchmark.extra_info[f"{key}_rt_ratio"] = round(measured[2], 3)

    # Shape assertions (loose; the quick CI scale is noisy).
    assert result.ratio("GAN-OPC")[2] < 0.9, \
        "flow must be substantially faster than from-scratch ILT"
    assert result.ratio("PGAN-OPC")[2] < 0.9


def test_per_clip_runtimes_recorded(table2_result):
    """Every method must report a positive per-clip runtime (the RT
    columns of Table 2)."""
    for method, evals in table2_result.columns.items():
        assert len(evals) == len(table2_result.clips)
        assert all(e.runtime_seconds > 0 for e in evals), method


def test_flow_beats_ilt_on_majority_of_pvb(table2_result):
    """Our PVB ratios run below the paper's ~0.98-0.99 (our ILT
    baseline is nominal-only); at minimum the flows must not be
    uniformly worse."""
    ilt = table2_result.columns["ILT"]
    pgan = table2_result.columns["PGAN-OPC"]
    wins = sum(1 for a, b in zip(pgan, ilt) if a.pvband_nm2 <= b.pvband_nm2)
    assert wins >= len(ilt) // 3
