"""Figure 7 reproduction: GAN-OPC vs PGAN-OPC training curves.

The paper plots the squared L2 between generator outputs and ground
truth masks against training step for both flows, observing that
ILT-guided pre-training (Algorithm 2) makes training more stable and
converge to a lower loss.

This benchmark renders both curves (ASCII) and records their smoothed
start/end levels.  The assertion mirrors the paper's claim: PGAN-OPC's
final loss is at or below GAN-OPC's.
"""

from __future__ import annotations

import numpy as np

from repro.bench import ascii_curve


def _smoothed_tail(series, fraction=0.1):
    tail = max(int(len(series) * fraction), 1)
    return float(np.mean(series[-tail:]))


def test_figure7_training_curves(pipeline, generators, benchmark):
    """Render the Figure 7 curves from the shared training run.

    Training itself happens once in the session fixture; this benchmark
    measures curve post-processing and records the Figure 7 statistics.
    """
    gan = generators.gan_history.l2_to_reference
    pgan = generators.pgan_history.l2_to_reference

    def summarize():
        return {
            "gan_start": _smoothed_tail(gan[: max(len(gan) // 10, 1)]),
            "gan_end": _smoothed_tail(gan),
            "pgan_end": _smoothed_tail(pgan),
        }

    stats = benchmark.pedantic(summarize, rounds=1, iterations=1)

    print("\n=== Figure 7 (reproduced): L2 to ground truth vs step ===")
    print(ascii_curve(gan, title="GAN-OPC (no pre-training)", label="step"))
    print(ascii_curve(pgan, title="PGAN-OPC (ILT-guided pre-training)",
                      label="step"))
    print(f"\nfinal smoothed L2: GAN-OPC {stats['gan_end']:.1f}  "
          f"PGAN-OPC {stats['pgan_end']:.1f}")

    benchmark.extra_info.update({k: round(v, 1) for k, v in stats.items()})

    # Paper shape: training reduces the mapping loss, and pre-training
    # converges at or below the non-pre-trained flow.
    assert stats["gan_end"] < stats["gan_start"] * 1.05
    assert stats["pgan_end"] <= stats["gan_end"] * 1.10


def test_pretraining_descends_litho_error(generators, benchmark):
    """Algorithm 2's own curve: the pre-training lithography error must
    trend downward (the 'step-by-step guidance' the paper describes)."""
    errors = generators.pretrain_history.litho_error

    def check():
        head = float(np.mean(errors[: max(len(errors) // 5, 1)]))
        tail = float(np.mean(errors[-max(len(errors) // 5, 1):]))
        return head, tail

    head, tail = benchmark.pedantic(check, rounds=1, iterations=1)
    print(f"\npretraining litho error: {head:.1f} -> {tail:.1f}")
    benchmark.extra_info["pretrain_start"] = round(head, 1)
    benchmark.extra_info["pretrain_end"] = round(tail, 1)
    assert tail < head
