"""Ablation: auto-encoder generator (the paper) vs U-Net extension.

The paper's generator is a plain auto-encoder; later learned-OPC work
adds encoder-decoder skip connections so fine geometry survives the
bottleneck.  Both architectures share the residual-correction output
and train under identical Algorithm 2 schedules; the comparison metric
is the lithography error of generated masks on held-out clips.
"""

from __future__ import annotations

import numpy as np

from repro.core import (GanOpcConfig, ILTGuidedPretrainer, MaskGenerator,
                        UNetMaskGenerator)
from repro.ilt.gradient import litho_error_and_gradient_wrt_mask
from repro.layoutgen import SyntheticDataset
from repro.litho import LithoConfig, build_kernels

GRID = 32
ITERATIONS = 120


def _held_out_error(generator, dataset, indices, kernels, litho):
    errors = []
    for i in indices:
        mask = generator.generate(dataset.target(i))
        error, _ = litho_error_and_gradient_wrt_mask(
            mask, dataset.target(i), kernels, litho.threshold,
            litho.resist_steepness)
        errors.append(error)
    return float(np.mean(errors))


def test_autoencoder_vs_unet(benchmark):
    litho = LithoConfig.small(GRID)
    kernels = build_kernels(litho)
    dataset = SyntheticDataset(litho, size=12, seed=66, kernels=kernels)
    config = GanOpcConfig(grid=GRID, generator_channels=(4, 8),
                          discriminator_channels=(4, 8), batch_size=4)
    held_out = list(range(8, 12))

    def run():
        results = {}
        for name, cls in (("autoencoder", MaskGenerator),
                          ("unet", UNetMaskGenerator)):
            generator = cls(config.generator_channels,
                            rng=np.random.default_rng(1))
            ILTGuidedPretrainer(generator, litho, config,
                                kernels=kernels).train(
                dataset, ITERATIONS, rng=np.random.default_rng(2))
            results[name] = (_held_out_error(generator, dataset, held_out,
                                             kernels, litho),
                             generator.num_parameters())
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n=== Ablation: generator architecture ===")
    for name, (error, params) in results.items():
        print(f"{name:12s} held-out litho error {error:10.1f}  "
              f"({params} parameters)")
        benchmark.extra_info[f"{name}_error"] = round(error, 1)

    # Both must have learned something comparable; the U-Net should not
    # be dramatically worse despite a different parameter budget.
    ae = results["autoencoder"][0]
    unet = results["unet"][0]
    assert unet <= ae * 1.5
    assert ae <= unet * 1.5
