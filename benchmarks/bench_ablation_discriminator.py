"""Ablation: pair-input discriminator vs conventional mask-only design.

Section 3.2 proves that a discriminator that sees only masks cannot
force a one-to-one target->mask mapping (Eq. 6: the generator can emit
*any* reference mask).  This ablation trains the same generator under
both discriminators with a purely adversarial generator objective
(alpha = 0, so the regression term cannot mask the effect) and compares
how well the learned mapping tracks the per-target ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.core import (GanOpcConfig, GanOpcTrainer, MaskGenerator,
                        MaskOnlyDiscriminator, PairDiscriminator)
from repro.ilt import ILTConfig
from repro.layoutgen import SyntheticDataset
from repro.litho import LithoConfig, build_kernels

GRID = 32
ITERATIONS = 120


def _mapping_error(generator, dataset):
    """Mean per-clip L2 between generated and reference masks."""
    total = 0.0
    for i in range(len(dataset)):
        mask = generator.generate(dataset.target(i))
        total += float(np.sum((mask - dataset.reference_mask(i)) ** 2))
    return total / len(dataset)


def _train(disc_cls, dataset, config):
    generator = MaskGenerator(config.generator_channels,
                              rng=np.random.default_rng(1))
    discriminator = disc_cls(GRID, config.discriminator_channels,
                             rng=np.random.default_rng(2))
    trainer = GanOpcTrainer(generator, discriminator, config)
    trainer.train(dataset, ITERATIONS, rng=np.random.default_rng(3))
    return generator


def test_pair_discriminator_enforces_mapping(benchmark):
    litho = LithoConfig.small(GRID)
    kernels = build_kernels(litho)
    dataset = SyntheticDataset(litho, size=8, seed=77, kernels=kernels,
                               ilt_config=ILTConfig(max_iterations=40))
    dataset.precompute()
    # alpha=0: only the adversarial signal teaches the mapping.  The
    # residual path is identical in both arms, so any difference comes
    # from the discriminator design alone.
    config = GanOpcConfig(grid=GRID, generator_channels=(4, 8),
                          discriminator_channels=(4, 8), batch_size=4,
                          alpha=0.0)

    def run():
        pair_gen = _train(PairDiscriminator, dataset, config)
        mask_gen = _train(MaskOnlyDiscriminator, dataset, config)
        return (_mapping_error(pair_gen, dataset),
                _mapping_error(mask_gen, dataset))

    pair_error, mask_only_error = benchmark.pedantic(run, rounds=1,
                                                     iterations=1)

    print("\n=== Ablation: discriminator input design (Section 3.2) ===")
    print(f"mapping L2 to ground truth  pair-input: {pair_error:10.1f}")
    print(f"                            mask-only:  {mask_only_error:10.1f}")
    benchmark.extra_info["pair_error"] = round(pair_error, 1)
    benchmark.extra_info["mask_only_error"] = round(mask_only_error, 1)

    # The pair design must not be worse; at most scales it is clearly
    # better because the mask-only objective is satisfied by mode
    # collapse onto any reference mask.
    assert pair_error <= mask_only_error * 1.25
