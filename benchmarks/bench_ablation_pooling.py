"""Ablation: the 8x8 average-pooling resolution bridge (Section 4).

The paper cannot train on 2048x2048 images, so layouts are average-
pooled 8x8 before the network and linearly interpolated back.  This
benchmark quantifies what the bridge costs: for pooling factors 1-8 it
round-trips rasterized clips through pool + upsample + re-binarize and
reports the pixel disagreement and the induced wafer-image error.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import (average_pool, bilinear_upsample, binarize,
                            rasterize)
from repro.layoutgen import LayoutSynthesizer, TopologyConfig
from repro.litho import LithoConfig, LithoSimulator, build_kernels
from repro.metrics import squared_l2

FINE_GRID = 128
FACTORS = (1, 2, 4, 8)


def test_pooling_bridge_fidelity(benchmark):
    litho = LithoConfig.small(FINE_GRID)
    simulator = LithoSimulator(litho, build_kernels(litho))
    synthesizer = LayoutSynthesizer(TopologyConfig(extent=litho.extent_nm,
                                                   margin=120.0))
    clips = [synthesizer.generate(np.random.default_rng(s)) for s in range(4)]
    rasters = [binarize(rasterize(clip, FINE_GRID)) for clip in clips]

    def run():
        rows = []
        for factor in FACTORS:
            pixel_err = 0.0
            wafer_err = 0.0
            for raster in rasters:
                bridged = binarize(
                    bilinear_upsample(average_pool(raster, factor), factor))
                pixel_err += float(np.abs(bridged - raster).sum())
                wafer_err += squared_l2(simulator.wafer_image(bridged),
                                        simulator.wafer_image(raster))
            rows.append((factor, pixel_err / len(rasters),
                         wafer_err / len(rasters)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n=== Ablation: resolution bridge (Section 4) ===")
    print(f"{'factor':>6s} {'pixel err':>10s} {'wafer L2 err':>13s}")
    for factor, pixel_err, wafer_err in rows:
        print(f"{factor:6d} {pixel_err:10.1f} {wafer_err:13.1f}")
        benchmark.extra_info[f"wafer_err_x{factor}"] = round(wafer_err, 1)

    # Factor 1 must be lossless; loss must grow monotonically with the
    # factor; and the paper's operating point must stay mild relative
    # to pattern area.
    assert rows[0][1] == 0.0 and rows[0][2] == 0.0
    pixel_errors = [r[1] for r in rows]
    assert all(a <= b + 1e-9 for a, b in zip(pixel_errors, pixel_errors[1:]))
    mean_area = np.mean([r.sum() for r in rasters])
    assert rows[-1][2] < 0.5 * mean_area
