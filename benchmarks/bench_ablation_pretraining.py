"""Ablation: ILT-guided pre-training vs training towards ground truth.

Section 3.4: "Compared to the training towards ground truth (i.e.,
directly back-propagate the mask error to neuron weights), ILT-guided
pre-training provides step-by-step guidance ... which reduces the
possibility of the generator being stuck at local minimum region".

Both pre-trainers initialize identical generators on the same data; the
comparison metric is the *lithography* error of the generated masks on
held-out targets — the quantity that actually matters downstream.
"""

from __future__ import annotations

import numpy as np

from repro.core import (GanOpcConfig, GroundTruthPretrainer,
                        ILTGuidedPretrainer, MaskGenerator)
from repro.ilt import ILTConfig
from repro.ilt.gradient import litho_error_and_gradient_wrt_mask
from repro.layoutgen import SyntheticDataset
from repro.litho import LithoConfig, build_kernels

GRID = 32
ITERATIONS = 120


def _held_out_litho_error(generator, dataset, indices, kernels, litho):
    errors = []
    for i in indices:
        mask = generator.generate(dataset.target(i))
        error, _ = litho_error_and_gradient_wrt_mask(
            mask, dataset.target(i), kernels, litho.threshold,
            litho.resist_steepness)
        errors.append(error)
    return float(np.mean(errors))


def test_ilt_guidance_vs_ground_truth(benchmark):
    litho = LithoConfig.small(GRID)
    kernels = build_kernels(litho)
    dataset = SyntheticDataset(litho, size=12, seed=55, kernels=kernels,
                               ilt_config=ILTConfig(max_iterations=40))
    config = GanOpcConfig(grid=GRID, generator_channels=(4, 8),
                          discriminator_channels=(4, 8), batch_size=4)
    train_idx = list(range(8))
    held_out = list(range(8, 12))

    def run():
        rng_a = np.random.default_rng(9)
        gen_ilt = MaskGenerator(config.generator_channels,
                                rng=np.random.default_rng(1))
        ILTGuidedPretrainer(gen_ilt, litho, config, kernels=kernels).train(
            dataset, ITERATIONS, rng=rng_a)

        rng_b = np.random.default_rng(9)
        gen_gt = MaskGenerator(config.generator_channels,
                               rng=np.random.default_rng(1))
        GroundTruthPretrainer(gen_gt, config).train(
            dataset, ITERATIONS, rng=rng_b)

        return (_held_out_litho_error(gen_ilt, dataset, held_out, kernels,
                                      litho),
                _held_out_litho_error(gen_gt, dataset, held_out, kernels,
                                      litho))

    ilt_error, gt_error = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n=== Ablation: pre-training signal (Section 3.4) ===")
    print(f"held-out litho error  ILT-guided:    {ilt_error:10.1f}")
    print(f"                      ground-truth:  {gt_error:10.1f}")
    benchmark.extra_info["ilt_guided_error"] = round(ilt_error, 1)
    benchmark.extra_info["ground_truth_error"] = round(gt_error, 1)

    # Shape: litho guidance optimizes the litho metric at least as well
    # as regression to reference masks does.
    assert ilt_error <= gt_error * 1.2
