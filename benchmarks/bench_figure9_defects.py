"""Figure 9 reproduction: wafer-image defect details.

The paper explains ILT's smaller PV band on some cases by defects its
masks induce: "printed images are more likely to have large wafer image
CD ... while inducing bridge or line-end pull back defects" (Figure 9).
This benchmark runs the neck/bridge detectors over the final wafers of
both methods, prints the defect census per clip, and writes overlay
images (target vs wafer) for visual inspection.
"""

from __future__ import annotations

import os

from repro.bench import run_figure9, save_gallery


def test_figure9_defect_census(pipeline, table2_result, output_dir,
                               benchmark):
    comparisons = benchmark.pedantic(
        lambda: run_figure9(pipeline, table2_result), rounds=1, iterations=1)

    print("\n=== Figure 9 (reproduced): defect census on final wafers ===")
    print(f"{'clip':12s} {'ILT bridges':>12s} {'ILT necks':>10s} "
          f"{'PGAN bridges':>13s} {'PGAN necks':>11s}")
    ilt_total = pgan_total = 0
    for comp in comparisons:
        print(f"{comp.clip:12s} {comp.ilt_bridges:12d} {comp.ilt_necks:10d} "
              f"{comp.pgan_bridges:13d} {comp.pgan_necks:11d}")
        ilt_total += comp.ilt_bridges + comp.ilt_necks
        pgan_total += comp.pgan_bridges + comp.pgan_necks
    print(f"totals: ILT {ilt_total}, PGAN-OPC {pgan_total}")

    rows = [[c.ilt_overlay for c in comparisons],
            [c.pgan_overlay for c in comparisons]]
    path = os.path.join(output_dir, "figure9_overlays.pgm")
    save_gallery(rows, path)
    print(f"overlay gallery written to {path} "
          "(row 1: ILT, row 2: PGAN-OPC; gray=missing, light=extra)")

    benchmark.extra_info["ilt_defects"] = ilt_total
    benchmark.extra_info["pgan_defects"] = pgan_total
    # Paper shape: PGAN-OPC wafers should not show more defects overall.
    # Only asserted at the full (128 px+) scale — the quick CI scale
    # runs deliberately under-trained generators.
    if pipeline.config.grid >= 128:
        assert pgan_total <= ilt_total + 2
