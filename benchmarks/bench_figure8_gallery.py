"""Figure 8 reproduction: mask / wafer-image gallery.

The paper's Figure 8 shows, for the ten benchmark clips, five rows:
ILT masks, PGAN-OPC masks, their wafer images, and the target patterns.
This benchmark regenerates those rows from the shared Table 2 runs and
writes them as a PGM montage under
``benchmarks/output/figure8_gallery.pgm``.
"""

from __future__ import annotations

import os

import numpy as np

from repro.bench import run_figure8, save_gallery


def test_figure8_gallery(pipeline, table2_result, output_dir, benchmark):
    rows = benchmark.pedantic(lambda: run_figure8(pipeline, table2_result),
                              rounds=1, iterations=1)

    path = os.path.join(output_dir, "figure8_gallery.pgm")
    save_gallery(rows, path)
    print(f"\nFigure 8 gallery written to {path}")
    print("rows: (a) ILT masks, (b) PGAN-OPC masks, (c) ILT wafers, "
          "(d) PGAN-OPC wafers, (e) targets")

    assert len(rows) == 5
    assert all(len(row) == len(table2_result.clips) for row in rows)
    targets = rows[4]
    for i, target in enumerate(targets):
        # Each wafer row must overlap its target substantially.
        for wafer_row in (rows[2], rows[3]):
            wafer = wafer_row[i]
            overlap = np.logical_and(wafer > 0.5, target > 0.5).sum()
            assert overlap > 0.5 * target.sum(), (
                f"clip {i}: wafer misses most of the target")
    benchmark.extra_info["clips"] = len(table2_result.clips)
