"""Edge placement error (EPE) measurement (Figure 2 of the paper).

EPE measures the horizontal or vertical distance from OPC control
points on target polygon edges to the printed lithography contour.  A
measurement point *violates* when the |EPE| exceeds a threshold (10 nm
by the ICCAD-2013 contest convention for 32 nm M1).

As Figure 2 illustrates, EPE alone is an incomplete printability
metric — the violation count depends on where control points are placed
and misses neck/bridge defects (handled in
:mod:`repro.metrics.defects`); the paper therefore optimizes squared
L2.  EPE is still reported because downstream users expect it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..geometry.layout import Layout
from ..geometry.shapes import Rect


@dataclass(frozen=True)
class EPESample:
    """One control-point measurement.

    Attributes
    ----------
    x, y:
        Control-point position in nm (on a target edge).
    normal:
        Outward edge normal, one of ``(+1,0), (-1,0), (0,+1), (0,-1)``.
    epe:
        Signed displacement in nm of the printed contour along the
        outward normal (positive = printed pattern extends beyond the
        target edge); ``inf`` when no contour was found in range.
    """

    x: float
    y: float
    normal: Tuple[int, int]
    epe: float

    def violates(self, threshold: float) -> bool:
        return abs(self.epe) > threshold


@dataclass(frozen=True)
class EPEReport:
    """All control-point measurements of a clip plus the violation count."""

    samples: List[EPESample]
    threshold: float

    @property
    def violations(self) -> int:
        return sum(1 for s in self.samples if s.violates(self.threshold))

    @property
    def max_abs_epe(self) -> float:
        finite = [abs(s.epe) for s in self.samples if np.isfinite(s.epe)]
        return max(finite) if finite else float("inf")

    def hotspots(self, limit: Optional[int] = None) -> List[dict]:
        """Violating control points as ``{x, y, epe}`` dicts (nm).

        Sorted worst-first by |EPE| (non-finite EPEs — no contour found
        within the search range — sort ahead of every finite one), so a
        truncated list keeps the worst sites.  This is the payload of
        ``clip_result`` telemetry records and the HTML report's
        hotspot overlay.
        """
        violating = sorted(
            (s for s in self.samples if s.violates(self.threshold)),
            key=lambda s: (1, -abs(s.epe)) if np.isfinite(s.epe)
            else (0, 0.0))
        if limit is not None:
            violating = violating[:limit]
        return [{"x": float(s.x), "y": float(s.y), "epe": float(s.epe)}
                for s in violating]


def control_points(rect: Rect, spacing: float,
                   edge_margin: float) -> List[Tuple[float, float, Tuple[int, int]]]:
    """OPC control points along a rectangle's edges.

    Points are placed every ``spacing`` nm along each edge, inset by
    ``edge_margin`` from corners (corner rounding would otherwise
    dominate the measurement); short edges get a single midpoint sample.
    """
    points: List[Tuple[float, float, Tuple[int, int]]] = []

    def _axis_samples(lo: float, hi: float) -> List[float]:
        usable = hi - lo - 2.0 * edge_margin
        if usable <= 0:
            return [0.5 * (lo + hi)]
        # Enough points that adjacent samples are at most `spacing` apart.
        count = max(int(np.ceil(usable / spacing)) + 1, 2)
        return list(np.linspace(lo + edge_margin, hi - edge_margin, count))

    for x in _axis_samples(rect.x0, rect.x1):
        points.append((x, rect.y0, (0, -1)))  # bottom edge, outward -y
        points.append((x, rect.y1, (0, +1)))  # top edge, outward +y
    for y in _axis_samples(rect.y0, rect.y1):
        points.append((rect.x0, y, (-1, 0)))  # left edge, outward -x
        points.append((rect.x1, y, (+1, 0)))  # right edge, outward +x
    return points


def measure_epe(wafer: np.ndarray, layout: Layout, threshold: float = 10.0,
                spacing: float = 40.0, edge_margin: float = 10.0,
                search_range: float = 80.0) -> EPEReport:
    """Measure EPE of a binary wafer image against a layout's edges.

    Parameters
    ----------
    wafer:
        Binary wafer image on the layout's window grid.
    layout:
        Target clip (vector geometry gives exact edge positions).
    threshold:
        Violation threshold in nm.
    spacing:
        Control-point spacing along edges in nm.
    edge_margin:
        Corner inset in nm.
    search_range:
        How far (nm) to scan along the normal for the printed contour.
    """
    wafer = np.asarray(wafer) > 0.5
    grid = wafer.shape[0]
    pixel = layout.extent / grid
    samples: List[EPESample] = []
    for rect in layout.rects:
        for x, y, normal in control_points(rect, spacing, edge_margin):
            epe = _contour_offset(wafer, x, y, normal, pixel, search_range)
            samples.append(EPESample(x=x, y=y, normal=normal, epe=epe))
    return EPEReport(samples=samples, threshold=threshold)


def _contour_offset(wafer: np.ndarray, x: float, y: float,
                    normal: Tuple[int, int], pixel: float,
                    search_range: float) -> float:
    """Signed distance from the edge point to the wafer contour along
    the outward normal (positive outward)."""
    grid = wafer.shape[0]
    steps = max(int(search_range / pixel), 1)

    def _sample(offset_nm: float) -> bool:
        sx = x + normal[0] * offset_nm
        sy = y + normal[1] * offset_nm
        col = int(sx / pixel)
        row = int(sy / pixel)
        if not (0 <= row < grid and 0 <= col < grid):
            return False
        return bool(wafer[row, col])

    # Whether the printed pattern covers the point just inside the edge.
    inside_on = _sample(-0.5 * pixel)
    if inside_on:
        # Contour lies at or outside the edge: walk outward until OFF.
        for k in range(steps + 1):
            offset = (k + 0.5) * pixel
            if not _sample(offset):
                return k * pixel
        return float("inf")
    # Pattern pulled back: walk inward until ON.
    for k in range(1, steps + 1):
        offset = -(k + 0.5) * pixel
        if _sample(offset):
            return -k * pixel
    return float("-inf")
