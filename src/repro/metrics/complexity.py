"""Mask complexity metrics.

Pixel-based ILT trades printability against *mask complexity*: wilder
masks cost more to fracture into the rectangles a VSB mask writer
shoots.  The classic raster proxies:

* :func:`edge_length` — total boundary length of the mask (nm); every
  unit of boundary must be written;
* :func:`corner_count` — number of convex+concave corners, which
  drives fracture shot count;
* :func:`shot_count_estimate` — rectangles in a greedy horizontal-slab
  fracturing of the mask, a direct stand-in for VSB shot count.

These let the examples and downstream users quantify the complexity
gap between MB-OPC masks (rectilinear, cheap) and free-form ILT / GAN
masks — the manufacturability cost the paper's flow inherits from ILT.
"""

from __future__ import annotations

import numpy as np


def edge_length(mask: np.ndarray, pixel_nm: float = 1.0) -> float:
    """Total mask boundary length.

    Counts ON/OFF transitions horizontally and vertically, including
    raster-border edges of ON pixels, times the pixel size.
    """
    mask = np.asarray(mask) > 0.5
    if mask.ndim != 2:
        raise ValueError(f"mask must be 2-D, got shape {mask.shape}")
    padded = np.pad(mask, 1, constant_values=False)
    horizontal = np.abs(np.diff(padded.astype(np.int8), axis=0)).sum()
    vertical = np.abs(np.diff(padded.astype(np.int8), axis=1)).sum()
    return float((horizontal + vertical) * pixel_nm)


def corner_count(mask: np.ndarray) -> int:
    """Number of polygon corners of the mask's boundary.

    Every 2x2 pixel neighbourhood with exactly one or exactly three ON
    pixels contributes one corner (convex / concave respectively);
    checkerboard neighbourhoods contribute two.
    """
    mask = np.asarray(mask) > 0.5
    if mask.ndim != 2:
        raise ValueError(f"mask must be 2-D, got shape {mask.shape}")
    padded = np.pad(mask, 1, constant_values=False).astype(np.int8)
    window_sum = (padded[:-1, :-1] + padded[:-1, 1:]
                  + padded[1:, :-1] + padded[1:, 1:])
    corners = int(((window_sum == 1) | (window_sum == 3)).sum())
    checkerboard = ((window_sum == 2)
                    & (padded[:-1, :-1] == padded[1:, 1:])
                    & (padded[:-1, 1:] == padded[1:, :-1])
                    & (padded[:-1, :-1] != padded[:-1, 1:]))
    return corners + 2 * int(checkerboard.sum())


def shot_count_estimate(mask: np.ndarray) -> int:
    """Rectangles produced by greedy horizontal-slab fracturing.

    Scans row by row, merging each row's runs with the previous row's
    open rectangles when their column extents match exactly — the
    simplest sliceable fracturing a mask data-prep tool would beat, so
    this upper-bounds (but tracks) real shot counts.
    """
    mask = np.asarray(mask) > 0.5
    if mask.ndim != 2:
        raise ValueError(f"mask must be 2-D, got shape {mask.shape}")
    shots = 0
    open_runs = set()
    for row in mask:
        padded = np.concatenate(([0], row.view(np.int8), [0]))
        changes = np.diff(padded)
        starts = np.nonzero(changes == 1)[0]
        ends = np.nonzero(changes == -1)[0]
        current = set(zip(starts.tolist(), ends.tolist()))
        shots += len(current - open_runs)  # runs starting a new rect
        open_runs = current
    return shots
