"""``repro.metrics`` — mask printability metrics.

Squared L2 (Definition 1), process-variation band under dose error
(Table 2), edge placement error and neck/bridge defect detectors
(Figure 2), and Table 2-style reporting.
"""

from .complexity import corner_count, edge_length, shot_count_estimate
from .defects import BridgeDefect, NeckDefect, detect_bridges, detect_necks
from .epe import EPEReport, EPESample, control_points, measure_epe
from .l2 import squared_l2, squared_l2_nm2
from .pvband import (mask_pv_band, mask_window_pv_band, pv_band, pv_band_nm2,
                     window_band, window_pv_band, window_pv_band_nm2)
from .report import MaskEvaluation, comparison_table, evaluate_mask
from .seam import SeamReport, seam_band, seam_report

__all__ = [
    "squared_l2", "squared_l2_nm2",
    "pv_band", "pv_band_nm2", "mask_pv_band",
    "window_band", "window_pv_band", "window_pv_band_nm2",
    "mask_window_pv_band",
    "EPESample", "EPEReport", "control_points", "measure_epe",
    "NeckDefect", "BridgeDefect", "detect_necks", "detect_bridges",
    "MaskEvaluation", "evaluate_mask", "comparison_table",
    "edge_length", "corner_count", "shot_count_estimate",
    "SeamReport", "seam_band", "seam_report",
]
