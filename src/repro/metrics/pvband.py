"""Process-variation band (PVB) measurement.

Table 2's "PVB" column is the contour-area variation of the wafer image
under +/-2% exposure-dose error: the area between the outermost contour
(over-dose) and the innermost contour (under-dose).  On binary corner
images that is the XOR area of the two corners.
"""

from __future__ import annotations

import numpy as np

from ..litho.simulator import LithoSimulator, ProcessCorners


def pv_band(corners: ProcessCorners) -> float:
    """PV band in pixel units from precomputed dose corners."""
    outer = np.asarray(corners.outer, dtype=bool)
    inner = np.asarray(corners.inner, dtype=bool)
    if outer.shape != inner.shape:
        raise ValueError("corner image shapes differ")
    return float(np.logical_xor(outer, inner).sum())


def pv_band_nm2(corners: ProcessCorners, pixel_nm: float) -> float:
    """PV band in nm^2 (Table 2 units)."""
    return pv_band(corners) * pixel_nm * pixel_nm


def mask_pv_band(simulator: LithoSimulator, mask: np.ndarray) -> float:
    """Convenience: simulate dose corners of ``mask`` and measure PVB
    in nm^2."""
    corners = simulator.process_corners(mask)
    return pv_band_nm2(corners, simulator.config.pixel_nm)
