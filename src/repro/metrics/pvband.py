"""Process-variation band (PVB) measurement.

Table 2's "PVB" column is the contour-area variation of the wafer image
under +/-2% exposure-dose error: the area between the outermost contour
(over-dose) and the innermost contour (under-dose).  On binary corner
images that is the XOR area of the two corners.

The *window* variants generalize the band to an arbitrary corner stack
(a :class:`~repro.litho.conditions.ConditionSet` of (defocus, dose)
corners evaluated by the engine): the band is the set of pixels that
print at *some* corner but not at *every* corner — the union of the
corner wafers XOR their intersection, which reduces to the two-corner
XOR for the dose band.
"""

from __future__ import annotations

import numpy as np

from ..litho.engine import LithoEngine
from ..litho.simulator import LithoSimulator, ProcessCorners


def pv_band(corners: ProcessCorners) -> float:
    """PV band in pixel units from precomputed dose corners."""
    outer = np.asarray(corners.outer, dtype=bool)
    inner = np.asarray(corners.inner, dtype=bool)
    if outer.shape != inner.shape:
        raise ValueError("corner image shapes differ")
    return float(np.logical_xor(outer, inner).sum())


def pv_band_nm2(corners: ProcessCorners, pixel_nm: float) -> float:
    """PV band in nm^2 (Table 2 units)."""
    return pv_band(corners) * pixel_nm * pixel_nm


def mask_pv_band(simulator: LithoSimulator, mask: np.ndarray) -> float:
    """Convenience: simulate dose corners of ``mask`` and measure PVB
    in nm^2."""
    corners = simulator.process_corners(mask)
    return pv_band_nm2(corners, simulator.config.pixel_nm)


def window_band(wafers: np.ndarray) -> np.ndarray:
    """Boolean band image over a corner wafer stack ``(C, H, W)``.

    A pixel is in the band when it prints at at least one corner but
    not at all of them (union XOR intersection).
    """
    wafers = np.asarray(wafers, dtype=bool)
    if wafers.ndim != 3:
        raise ValueError(
            f"wafer stack must be (C, H, W), got shape {wafers.shape}")
    return np.logical_xor(wafers.any(axis=0), wafers.all(axis=0))


def window_pv_band(wafers: np.ndarray) -> float:
    """Window PV band in pixel units from a corner wafer stack."""
    return float(window_band(wafers).sum())


def window_pv_band_nm2(wafers: np.ndarray, pixel_nm: float) -> float:
    """Window PV band in nm^2 (Table 2 units, generalized corners)."""
    return window_pv_band(wafers) * pixel_nm * pixel_nm


def mask_window_pv_band(engine: LithoEngine, mask: np.ndarray) -> float:
    """Convenience: simulate the engine's corner stack on ``mask`` and
    measure the window PVB in nm^2."""
    wafers = engine.condition_wafers(mask)
    return window_pv_band_nm2(wafers, engine.config.pixel_nm)
