"""Squared L2 wafer-image error (Definition 1 of the paper).

The paper's primary mask-quality metric: ``||Z_t - Z||_2^2`` over
flattened binary images.  For binary images this equals the XOR pixel
count, i.e. the mismatched printed area; Table 2 reports it in nm^2
(pixel count scaled by pixel area).
"""

from __future__ import annotations

import numpy as np


def squared_l2(wafer: np.ndarray, target: np.ndarray) -> float:
    """Squared L2 error in pixel units."""
    wafer = np.asarray(wafer, dtype=float)
    target = np.asarray(target, dtype=float)
    if wafer.shape != target.shape:
        raise ValueError(
            f"shape mismatch: wafer {wafer.shape} vs target {target.shape}")
    diff = wafer - target
    return float(np.sum(diff * diff))


def squared_l2_nm2(wafer: np.ndarray, target: np.ndarray,
                   pixel_nm: float) -> float:
    """Squared L2 error in nm^2 (Table 2 units)."""
    return squared_l2(wafer, target) * pixel_nm * pixel_nm
