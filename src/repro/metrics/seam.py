"""Seam-error metrics for tiled mask optimization.

A stitched tiled result differs from a monolithic run only where a
tile's simulation could not see far enough — near the interior core
boundaries of the :class:`~repro.tiling.grid.TileGrid`.  These metrics
quantify that: :func:`seam_band` marks the pixels within a given
distance of any interior seam, and :func:`seam_report` compares a
stitched image against a monolithic reference inside and outside that
band.  The halo-sufficiency sweep in tests/tiling asserts that the
band mismatch decays as the halo grows (DESIGN.md §12).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def seam_band(chip_grid: int, core: int, width: int) -> np.ndarray:
    """Boolean ``(chip_grid, chip_grid)`` mask of near-seam pixels.

    Interior seams are the lines where two tile cores meet — multiples
    of ``core`` strictly inside the chip.  A pixel is in the band when
    its row or column index lies within ``width`` pixels of a seam
    (``width = 0`` selects nothing).
    """
    if chip_grid < 1:
        raise ValueError(f"chip_grid must be >= 1, got {chip_grid}")
    if core < 1:
        raise ValueError(f"core must be >= 1, got {core}")
    if width < 0:
        raise ValueError(f"width must be >= 0, got {width}")
    near = np.zeros(chip_grid, dtype=bool)
    for seam in range(core, chip_grid, core):
        lo = max(seam - width, 0)
        hi = min(seam + width, chip_grid)
        near[lo:hi] = True
    band = np.zeros((chip_grid, chip_grid), dtype=bool)
    band[near, :] = True
    band[:, near] = True
    return band


@dataclass(frozen=True)
class SeamReport:
    """Stitched-vs-monolithic comparison split at the seam band.

    Attributes
    ----------
    width:
        Band half-width in pixels around each interior seam.
    band_pixels / interior_pixels:
        Pixel counts of the band and its complement.
    band_mismatch / interior_mismatch:
        Binarized disagreement counts in each region.
    total_mismatch:
        ``band_mismatch + interior_mismatch``.
    max_abs_difference:
        Largest absolute pixel difference anywhere (gray images).
    """

    width: int
    band_pixels: int
    interior_pixels: int
    band_mismatch: int
    interior_mismatch: int
    max_abs_difference: float

    @property
    def total_mismatch(self) -> int:
        return self.band_mismatch + self.interior_mismatch

    @property
    def band_mismatch_fraction(self) -> float:
        return (self.band_mismatch / self.band_pixels
                if self.band_pixels else 0.0)

    @property
    def total_mismatch_fraction(self) -> float:
        total = self.band_pixels + self.interior_pixels
        return self.total_mismatch / total if total else 0.0

    def __str__(self) -> str:
        return (f"seam band ±{self.width}px: {self.band_mismatch}/"
                f"{self.band_pixels} mismatched "
                f"({100.0 * self.band_mismatch_fraction:.2f}%), "
                f"interior: {self.interior_mismatch}/{self.interior_pixels}")


def seam_report(stitched: np.ndarray, reference: np.ndarray,
                core: int, width: int = 4) -> SeamReport:
    """Compare a stitched chip image against a monolithic reference.

    Both images are binarized at 0.5 for the mismatch counts (masks and
    wafer images are {0, 1} already; relaxed images threshold at their
    midpoint), while ``max_abs_difference`` reports the raw gray-level
    gap.
    """
    stitched = np.asarray(stitched, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if stitched.shape != reference.shape or stitched.ndim != 2:
        raise ValueError(
            f"images must be equal-shape 2-D, got {stitched.shape} vs "
            f"{reference.shape}")
    if stitched.shape[0] != stitched.shape[1]:
        raise ValueError(f"chip image must be square, got {stitched.shape}")
    chip_grid = stitched.shape[0]
    band = seam_band(chip_grid, core, width)
    mismatch = (stitched >= 0.5) != (reference >= 0.5)
    band_pixels = int(band.sum())
    return SeamReport(
        width=width,
        band_pixels=band_pixels,
        interior_pixels=int(chip_grid * chip_grid - band_pixels),
        band_mismatch=int(np.count_nonzero(mismatch & band)),
        interior_mismatch=int(np.count_nonzero(mismatch & ~band)),
        max_abs_difference=float(np.max(np.abs(stitched - reference))))
