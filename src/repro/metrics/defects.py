"""Neck and bridge defect detectors (Figure 2 of the paper).

* A **neck** is a printed wire whose local critical dimension shrinks
  below a fraction of the drawn CD — a resistance/open risk that EPE
  checking at sparse control points can miss.
* A **bridge** is printed material connecting two patterns that are
  distinct in the target — an electrical short.

Both detectors work on binary raster images: target component labeling
uses 4-connectivity via ``scipy.ndimage``; neck detection scans
run-lengths through printed pixels in both axes.  Figure 9 of the paper
uses exactly these failure modes to explain why the ILT baseline's
smaller PV band can hide bridge / line-end pull-back defects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from scipy import ndimage


@dataclass(frozen=True)
class NeckDefect:
    """A local CD violation on a printed wire.

    ``row``/``col`` locate a representative pixel (raster indices);
    ``width_px`` is the offending run length; ``axis`` is 0 when the
    narrow direction is vertical (short column run) and 1 when
    horizontal.
    """

    row: int
    col: int
    width_px: int
    axis: int


@dataclass(frozen=True)
class BridgeDefect:
    """Printed material shorting distinct target components.

    ``component_labels`` are the target component ids that the printed
    blob touches; ``pixels`` is the blob's size in raster pixels.
    """

    component_labels: Tuple[int, ...]
    pixels: int


_STRUCTURE_4 = np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]], dtype=bool)


def detect_necks(wafer: np.ndarray, target: np.ndarray,
                 min_width_px: int) -> List[NeckDefect]:
    """Find printed runs narrower than ``min_width_px`` on target wires.

    For every printed pixel that belongs to a target pattern, the
    horizontal and vertical run lengths through it are computed; a pixel
    whose *minimum* run is shorter than ``min_width_px`` marks a neck.
    Adjacent violating pixels are merged into a single defect via
    connected-component labeling.
    """
    wafer = np.asarray(wafer) > 0.5
    target = np.asarray(target) > 0.5
    if wafer.shape != target.shape:
        raise ValueError("wafer/target shape mismatch")
    if min_width_px < 1:
        raise ValueError("min_width_px must be >= 1")

    runs_h = _run_lengths(wafer, axis=1)
    runs_v = _run_lengths(wafer, axis=0)
    narrow_axis = np.where(runs_h <= runs_v, 1, 0)
    narrow = np.minimum(runs_h, runs_v)
    violating = wafer & target & (narrow < min_width_px)
    labels, count = ndimage.label(violating, structure=_STRUCTURE_4)
    defects: List[NeckDefect] = []
    for label in range(1, count + 1):
        rows, cols = np.nonzero(labels == label)
        # Representative pixel: the narrowest point of the region.
        widths = narrow[rows, cols]
        pick = int(np.argmin(widths))
        defects.append(NeckDefect(row=int(rows[pick]), col=int(cols[pick]),
                                  width_px=int(widths[pick]),
                                  axis=int(narrow_axis[rows[pick], cols[pick]])))
    return defects


def detect_bridges(wafer: np.ndarray, target: np.ndarray) -> List[BridgeDefect]:
    """Find printed blobs connecting >= 2 distinct target components."""
    wafer = np.asarray(wafer) > 0.5
    target = np.asarray(target) > 0.5
    if wafer.shape != target.shape:
        raise ValueError("wafer/target shape mismatch")

    target_labels, _ = ndimage.label(target, structure=_STRUCTURE_4)
    wafer_labels, wafer_count = ndimage.label(wafer, structure=_STRUCTURE_4)
    defects: List[BridgeDefect] = []
    for label in range(1, wafer_count + 1):
        blob = wafer_labels == label
        touched = np.unique(target_labels[blob])
        touched = tuple(int(t) for t in touched if t != 0)
        if len(touched) >= 2:
            defects.append(BridgeDefect(component_labels=touched,
                                        pixels=int(blob.sum())))
    return defects


def _run_lengths(image: np.ndarray, axis: int) -> np.ndarray:
    """Per-pixel length of the ON-run containing each pixel along
    ``axis``; 0 for OFF pixels."""
    image = image.astype(bool)
    if axis == 0:
        image = image.T
    rows, cols = image.shape
    out = np.zeros((rows, cols), dtype=int)
    for r in range(rows):
        row = image[r]
        if not row.any():
            continue
        # Boundaries of runs of ones.
        padded = np.concatenate(([0], row.view(np.int8), [0]))
        changes = np.diff(padded)
        starts = np.nonzero(changes == 1)[0]
        ends = np.nonzero(changes == -1)[0]
        for start, end in zip(starts, ends):
            out[r, start:end] = end - start
    if axis == 0:
        out = out.T
    return out
