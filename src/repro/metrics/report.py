"""Mask printability evaluation reports.

Bundles every metric the paper reports (plus the Figure 2 defect
detectors) into one :class:`MaskEvaluation` per mask, and formats
collections of evaluations into the row/column structure of Table 2
(per-clip L2 / PVB / runtime with averages and ratios).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..geometry.layout import Layout
from ..litho.engine import LithoEngine
from ..litho.simulator import LithoSimulator
from .defects import detect_bridges, detect_necks
from .epe import measure_epe
from .l2 import squared_l2, squared_l2_nm2
from .pvband import pv_band_nm2, window_pv_band_nm2


@dataclass
class MaskEvaluation:
    """Printability of one mask against one target clip.

    Distances/areas are nm-based to match the paper's units.  The
    ``window_*`` / ``worst_corner_*`` fields are populated only when
    the evaluation ran with a process-window condition engine; they
    generalize the dose-band PVB column to the full corner stack.
    """

    name: str
    l2_px: float
    l2_nm2: float
    pvband_nm2: float
    epe_violations: Optional[int] = None
    neck_defects: Optional[int] = None
    bridge_defects: Optional[int] = None
    runtime_seconds: Optional[float] = None
    window_pvband_nm2: Optional[float] = None
    worst_corner_l2_nm2: Optional[float] = None
    worst_corner_epe: Optional[int] = None
    #: violating EPE control points (``{x, y, epe}`` in nm, worst
    #: first) — the run ledger's ``clip_result`` hotspot payload; not
    #: part of :meth:`as_dict` so metric printouts stay scalar.
    epe_hotspots: Optional[List[dict]] = None

    def as_dict(self) -> Dict:
        return {
            "name": self.name,
            "l2_px": self.l2_px,
            "l2_nm2": self.l2_nm2,
            "pvband_nm2": self.pvband_nm2,
            "epe_violations": self.epe_violations,
            "neck_defects": self.neck_defects,
            "bridge_defects": self.bridge_defects,
            "runtime_seconds": self.runtime_seconds,
            "window_pvband_nm2": self.window_pvband_nm2,
            "worst_corner_l2_nm2": self.worst_corner_l2_nm2,
            "worst_corner_epe": self.worst_corner_epe,
        }

    def to_dict(self) -> Dict:
        """Lossless strict-JSON dict (non-finite floats as strings)."""
        from ..runtime.telemetry import sanitize
        data = self.as_dict()
        data["epe_hotspots"] = self.epe_hotspots
        return sanitize(data)

    @classmethod
    def from_dict(cls, data: Dict) -> "MaskEvaluation":
        """Inverse of :meth:`to_dict`."""
        def _num(value):
            if value in ("nan", "inf", "-inf"):
                return float(value)
            return value
        hotspots = data.get("epe_hotspots")
        if hotspots is not None:
            hotspots = [{"x": h["x"], "y": h["y"], "epe": _num(h["epe"])}
                        for h in hotspots]
        return cls(
            name=data["name"],
            l2_px=_num(data["l2_px"]),
            l2_nm2=_num(data["l2_nm2"]),
            pvband_nm2=_num(data["pvband_nm2"]),
            epe_violations=data.get("epe_violations"),
            neck_defects=data.get("neck_defects"),
            bridge_defects=data.get("bridge_defects"),
            runtime_seconds=_num(data.get("runtime_seconds")),
            window_pvband_nm2=_num(data.get("window_pvband_nm2")),
            worst_corner_l2_nm2=_num(data.get("worst_corner_l2_nm2")),
            worst_corner_epe=data.get("worst_corner_epe"),
            epe_hotspots=hotspots,
        )


def evaluate_mask(simulator: LithoSimulator, mask: np.ndarray,
                  target: np.ndarray, layout: Optional[Layout] = None,
                  name: str = "mask",
                  runtime_seconds: Optional[float] = None,
                  epe_threshold: float = 10.0,
                  neck_fraction: float = 0.5,
                  condition_engine: Optional[LithoEngine] = None
                  ) -> MaskEvaluation:
    """Evaluate a mask with every metric the repo reports.

    ``layout`` enables the vector-based EPE measurement; without it only
    raster metrics (L2, PVB, neck, bridge) are produced.
    ``neck_fraction`` sets the neck threshold as a fraction of the
    design-rule CD expressed in pixels (80 nm at the paper's node).
    ``condition_engine`` (an engine carrying a process-window
    :class:`~repro.litho.conditions.ConditionSet`) additionally fills
    the window-PVB and worst-corner fields from one stacked forward
    over all corners.
    """
    corners = simulator.process_corners(mask)
    wafer = corners.nominal
    pixel_nm = simulator.config.pixel_nm
    cd_px = max(int(round(80.0 / pixel_nm * neck_fraction)), 1)

    epe_violations = None
    epe_hotspots = None
    if layout is not None:
        epe_report = measure_epe(wafer, layout, threshold=epe_threshold)
        epe_violations = epe_report.violations
        epe_hotspots = epe_report.hotspots() or None

    window_pvband = worst_l2 = worst_epe = None
    if condition_engine is not None:
        corner_wafers = condition_engine.condition_wafers(mask)
        window_pvband = window_pv_band_nm2(corner_wafers, pixel_nm)
        corner_l2 = [squared_l2_nm2(w, target, pixel_nm)
                     for w in corner_wafers]
        worst_l2 = float(max(corner_l2))
        if layout is not None:
            worst_epe = max(
                measure_epe(w, layout, threshold=epe_threshold).violations
                for w in corner_wafers)

    return MaskEvaluation(
        name=name,
        l2_px=squared_l2(wafer, target),
        l2_nm2=squared_l2_nm2(wafer, target, pixel_nm),
        pvband_nm2=pv_band_nm2(corners, pixel_nm),
        epe_violations=epe_violations,
        neck_defects=len(detect_necks(wafer, target, cd_px)),
        bridge_defects=len(detect_bridges(wafer, target)),
        runtime_seconds=runtime_seconds,
        window_pvband_nm2=window_pvband,
        worst_corner_l2_nm2=worst_l2,
        worst_corner_epe=worst_epe,
        epe_hotspots=epe_hotspots,
    )


def comparison_table(columns: Dict[str, Sequence[MaskEvaluation]],
                     baseline: Optional[str] = None) -> str:
    """Format method columns into a Table 2-style text table.

    Parameters
    ----------
    columns:
        Mapping of method name to its per-clip evaluations (all methods
        must cover the same clips in the same order).
    baseline:
        Method whose averages define the ratio row (defaults to the
        first method), mirroring Table 2's "Ratio" row against ILT [7].
    """
    methods = list(columns)
    if not methods:
        raise ValueError("no methods to compare")
    count = len(columns[methods[0]])
    for method in methods:
        if len(columns[method]) != count:
            raise ValueError("methods cover different clip counts")
    baseline = baseline or methods[0]
    if baseline not in columns:
        raise ValueError(f"unknown baseline {baseline!r}")

    header_parts = ["clip".ljust(12)]
    for method in methods:
        header_parts.append(f"{method:>12}.L2 {method:>12}.PVB {method:>10}.RT")
    lines = ["  ".join(header_parts)]

    for i in range(count):
        parts = [columns[methods[0]][i].name.ljust(12)]
        for method in methods:
            ev = columns[method][i]
            rt = f"{ev.runtime_seconds:10.2f}" if ev.runtime_seconds is not None \
                else " " * 10
            parts.append(f"{ev.l2_nm2:15.0f} {ev.pvband_nm2:16.0f} {rt}")
        lines.append("  ".join(parts))

    def _avg(method: str, attr: str) -> float:
        values = [getattr(ev, attr) for ev in columns[method]]
        values = [v for v in values if v is not None]
        return float(np.mean(values)) if values else float("nan")

    avg_parts = ["average".ljust(12)]
    ratio_parts = ["ratio".ljust(12)]
    for method in methods:
        l2 = _avg(method, "l2_nm2")
        pvb = _avg(method, "pvband_nm2")
        rt = _avg(method, "runtime_seconds")
        avg_parts.append(f"{l2:15.1f} {pvb:16.1f} {rt:10.2f}")
        base_l2 = _avg(baseline, "l2_nm2")
        base_pvb = _avg(baseline, "pvband_nm2")
        base_rt = _avg(baseline, "runtime_seconds")
        ratio_parts.append(
            f"{l2 / base_l2:15.3f} {pvb / base_pvb:16.3f} {rt / base_rt:10.3f}")
    lines.append("  ".join(avg_parts))
    lines.append("  ".join(ratio_parts))
    return "\n".join(lines)
