"""Process-window condition sets for the litho engine.

The paper evaluates process variation as a ±2% dose band (the PVB
column of Table 2); production OPC judges masks over a full
(defocus, dose) window.  A :class:`Condition` is one such process
corner — a defocus offset in nanometres plus a relative exposure
dose — and a :class:`ConditionSet` is an ordered stack of corners
that :class:`~repro.litho.engine.LithoEngine` evaluates in one
batched matmul-DFT pass over the shared mask spectrum.

Two physical facts make the stack cheap:

* defocus is a pure quadratic pupil phase *inside* the pupil
  passband, so the compact mask spectrum is condition-independent
  and is computed once per forward; and
* dose is a pure intensity scale, so corners that share a defocus
  share their coherent fields and intensity — only the final
  ``intensity * dose`` differs.

The engine therefore groups corners by unique defocus: a 2-focus x
2-dose window costs roughly two nominal forwards, not four.

Corner ``weight`` values feed the *weighted* process-window
objective (normalized across the set); the *worst* objective
ignores them and follows the per-sample worst corner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Condition", "ConditionSet", "PW_OBJECTIVES"]

#: Valid values for the process-window objective knobs exposed by the
#: ILT optimizer, training loops and the CLI.  ``nominal`` means
#: "ignore the corner stack and optimize the nominal condition only".
PW_OBJECTIVES = ("nominal", "weighted", "worst")


@dataclass(frozen=True)
class Condition:
    """One process corner: a (defocus, dose) pair with a weight.

    Parameters
    ----------
    defocus:
        Focus offset in nanometres (absolute, not relative to the
        optics config).
    dose:
        Relative exposure dose; ``1.0`` is nominal.
    weight:
        Non-negative aggregation weight used by the *weighted*
        process-window objective.  Weights are normalized across the
        owning :class:`ConditionSet`.
    """

    defocus: float = 0.0
    dose: float = 1.0
    weight: float = 1.0

    def __post_init__(self):
        if not self.dose > 0:
            raise ValueError(f"dose must be positive, got {self.dose}")
        if self.weight < 0:
            raise ValueError(f"weight must be >= 0, got {self.weight}")

    def describe(self) -> str:
        """Short human-readable label, e.g. ``f+40nm d0.98``."""
        return f"f{self.defocus:+g}nm d{self.dose:g}"


@dataclass(frozen=True)
class ConditionSet:
    """Ordered, hashable stack of process corners.

    Instances are immutable and picklable, so they travel through the
    shared-memory :class:`~repro.parallel.pool.WorkerPool` unchanged
    and serve as memoization keys for per-condition engines.
    """

    corners: Tuple[Condition, ...]

    def __post_init__(self):
        if not self.corners:
            raise ValueError("ConditionSet needs at least one corner")
        if not all(isinstance(c, Condition) for c in self.corners):
            raise TypeError("corners must be Condition instances")
        if sum(c.weight for c in self.corners) <= 0:
            raise ValueError("at least one corner weight must be positive")

    # -- construction ---------------------------------------------------
    @classmethod
    def nominal(cls, defocus: float = 0.0) -> "ConditionSet":
        """The single nominal corner (dose 1.0) at ``defocus``."""
        return cls((Condition(defocus=defocus),))

    @classmethod
    def dose_corners(cls, dose_variation: float = 0.02,
                     defocus: float = 0.0) -> "ConditionSet":
        """Nominal plus the paper's ±``dose_variation`` dose band."""
        if not 0 < dose_variation < 1:
            raise ValueError(
                f"dose_variation must be in (0, 1), got {dose_variation}")
        return cls((Condition(defocus, 1.0 - dose_variation),
                    Condition(defocus, 1.0),
                    Condition(defocus, 1.0 + dose_variation)))

    @classmethod
    def grid(cls, defocuses: Sequence[float], doses: Sequence[float],
             weights: Optional[Sequence[float]] = None) -> "ConditionSet":
        """Full defocus x dose product, defocus-major.

        Corner ``fi * len(doses) + di`` is ``(defocuses[fi],
        doses[di])``, matching the ``(focus, dose)`` layout of
        :class:`~repro.litho.window.ProcessWindow` matrices.
        """
        defocuses = tuple(float(f) for f in defocuses)
        doses = tuple(float(d) for d in doses)
        if not defocuses or not doses:
            raise ValueError("defocuses and doses must be non-empty")
        count = len(defocuses) * len(doses)
        if weights is None:
            weights = (1.0,) * count
        weights = tuple(float(w) for w in weights)
        if len(weights) != count:
            raise ValueError(
                f"expected {count} weights, got {len(weights)}")
        corners = tuple(
            Condition(f, d, weights[fi * len(doses) + di])
            for fi, f in enumerate(defocuses)
            for di, d in enumerate(doses))
        return cls(corners)

    @classmethod
    def parse(cls, spec: str,
              dose_variation: float = 0.02) -> "ConditionSet":
        """Parse a CLI corner spec.

        Accepts the presets ``nominal``, ``dose`` (nominal ± dose
        band) and ``window`` (2 focus planes x 3 doses), or an
        explicit comma-separated list of ``defocus:dose[:weight]``
        corners, e.g. ``"0:1.0,40:0.98,40:1.02"``.
        """
        text = spec.strip().lower()
        if not text:
            raise ValueError("empty corner spec")
        if text == "nominal":
            return cls.nominal()
        if text == "dose":
            return cls.dose_corners(dose_variation)
        if text == "window":
            return cls.grid(defocuses=(0.0, 40.0),
                            doses=(1.0 - dose_variation, 1.0,
                                   1.0 + dose_variation))
        corners: List[Condition] = []
        for part in text.split(","):
            fields = part.strip().split(":")
            if len(fields) not in (2, 3):
                raise ValueError(
                    f"bad corner {part!r}: expected defocus:dose[:weight]")
            try:
                values = [float(f) for f in fields]
            except ValueError:
                raise ValueError(
                    f"bad corner {part!r}: non-numeric field") from None
            weight = values[2] if len(values) == 3 else 1.0
            corners.append(Condition(values[0], values[1], weight))
        return cls(tuple(corners))

    # -- introspection --------------------------------------------------
    @property
    def num_conditions(self) -> int:
        return len(self.corners)

    @property
    def doses(self) -> np.ndarray:
        return np.array([c.dose for c in self.corners])

    @property
    def defocuses(self) -> np.ndarray:
        return np.array([c.defocus for c in self.corners])

    @property
    def weights(self) -> np.ndarray:
        return np.array([c.weight for c in self.corners])

    def normalized_weights(self) -> np.ndarray:
        """Corner weights scaled to sum to 1 (for the weighted objective)."""
        weights = self.weights
        return weights / weights.sum()

    def is_single_nominal(self, defocus: float = 0.0) -> bool:
        """True when the set is exactly one dose-1.0 corner at ``defocus``.

        This is the engine's C=1 fast path: such a stack delegates to
        the untouched nominal code, so results are bit-exact with the
        single-condition engine by construction.
        """
        return (len(self.corners) == 1
                and self.corners[0].dose == 1.0
                and self.corners[0].defocus == defocus)

    def defocus_groups(self) -> Tuple[Tuple[float, Tuple[int, ...]], ...]:
        """Unique defocuses (first-appearance order) with corner indices.

        Each entry is ``(defocus, corner_indices)``; the engine builds
        one kernel stack per group and shares its coherent fields
        across the group's dose corners.
        """
        groups: Dict[float, List[int]] = {}
        for index, corner in enumerate(self.corners):
            groups.setdefault(corner.defocus, []).append(index)
        return tuple((defocus, tuple(indices))
                     for defocus, indices in groups.items())

    def describe(self) -> str:
        return ", ".join(c.describe() for c in self.corners)

    def __iter__(self) -> Iterable[Condition]:
        return iter(self.corners)

    def __len__(self) -> int:
        return len(self.corners)
