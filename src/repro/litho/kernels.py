"""Hopkins TCC construction and SVD decomposition into coherent kernels.

Hopkins' partially-coherent imaging (Eq. 1 of the paper) is approximated
by its dominant coherent systems (Eq. 2): the transmission cross
coefficient (TCC) operator is decomposed so the aerial image becomes

    I = sum_k  w_k | M (x) h_k |^2 ,   k = 1..N_h  (N_h = 24).

Rather than forming the dense TCC matrix, we exploit that the TCC of a
discretized source is ``A^H A`` where row ``s`` of ``A`` is the
source-shifted pupil ``sqrt(w_s) * P(f + f_s)`` restricted to the
passband; the right singular vectors of ``A`` are then exactly the TCC
eigenvectors (Cobb 1998), obtained by one economy SVD.

Kernels are kept in the frequency domain on the simulation raster's FFT
grid, so imaging is two FFTs per kernel with no resampling.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from dataclasses import asdict, dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from .config import LithoConfig
from .pupil import frequency_grid, pupil_function
from .source import source_points


@dataclass(frozen=True)
class KernelSet:
    """Coherent decomposition of a partially coherent imaging system.

    Attributes
    ----------
    freq_kernels:
        Complex array ``(N_h, grid, grid)`` in unshifted FFT layout; the
        k-th slice is ``H_k(f)``, the frequency response of kernel k.
    weights:
        Nonnegative weights ``w_k`` (TCC eigenvalues), normalized so a
        fully-open mask images to intensity 1.0 (clear-field dose).
    config:
        The :class:`LithoConfig` the kernels were built for.
    """

    freq_kernels: np.ndarray
    weights: np.ndarray
    config: LithoConfig

    @property
    def num_kernels(self) -> int:
        return len(self.weights)

    @property
    def grid(self) -> int:
        return self.freq_kernels.shape[-1]

    def spatial_kernels(self, shifted: bool = True) -> np.ndarray:
        """Inverse-transform kernels to the spatial domain.

        Parameters
        ----------
        shifted:
            If true, apply ``fftshift`` so each kernel is centered —
            convenient for visualization.
        """
        spatial = np.fft.ifft2(self.freq_kernels, axes=(-2, -1))
        if shifted:
            spatial = np.fft.fftshift(spatial, axes=(-2, -1))
        return spatial

    def flipped(self) -> np.ndarray:
        """Frequency kernels evaluated at ``-f`` (adjoint of the forward
        convolution; used by the ILT gradient, Eq. 14).

        Memoized on the instance: the roll + copy is ``O(K * H * W)``
        and the adjoint kernels never change, so gradient callers pay
        for the tensor once instead of on every step.
        """
        cached = self.__dict__.get("_flipped")
        if cached is None:
            flipped = self.freq_kernels[:, ::-1, ::-1]
            cached = np.roll(flipped, 1, axis=(-2, -1))
            object.__setattr__(self, "_flipped", cached)
        return cached


_CACHE: Dict[Tuple, KernelSet] = {}

# Bump when the decomposition math changes so stale on-disk archives are
# never reused across incompatible builds.
_DISK_FORMAT_VERSION = 1


def config_hash(config: LithoConfig) -> str:
    """Stable content hash of a :class:`LithoConfig`.

    Hashes the canonical JSON of every field (optics included), so two
    equal configs always map to the same on-disk kernel archive and any
    parameter change invalidates it.
    """
    payload = json.dumps(
        {"version": _DISK_FORMAT_VERSION, "config": asdict(config)},
        sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def _disk_cache_dir(disk_cache: Union[bool, str, None]) -> Optional[str]:
    """Resolve the on-disk cache directory (None disables caching).

    ``disk_cache`` may be an explicit directory, ``False`` to disable,
    or ``None`` to consult ``REPRO_KERNEL_CACHE`` (a path, or one of
    ``0/off/none`` to disable) and fall back to
    ``~/.cache/repro/kernels``.
    """
    if disk_cache is False:
        return None
    if isinstance(disk_cache, str):
        return disk_cache
    env = os.environ.get("REPRO_KERNEL_CACHE")
    if env is not None:
        if env.strip().lower() in ("", "0", "off", "none", "false"):
            return None
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "kernels")


def _disk_load(path: str, config: LithoConfig) -> Optional[KernelSet]:
    try:
        with np.load(path) as archive:
            freq_kernels = np.asarray(archive["freq_kernels"])
            weights = np.asarray(archive["weights"])
        if (freq_kernels.ndim != 3 or freq_kernels.shape[-1] != config.grid
                or len(weights) != len(freq_kernels)):
            return None
        return KernelSet(freq_kernels=freq_kernels, weights=weights,
                         config=config)
    except (OSError, ValueError, KeyError, zipfile.BadZipFile):
        return None  # corrupt or partial archive: rebuild


def _disk_store(path: str, kernel_set: KernelSet) -> None:
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(suffix=".npz",
                                   dir=os.path.dirname(path))
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, freq_kernels=kernel_set.freq_kernels,
                         weights=kernel_set.weights)
            os.replace(tmp, path)  # atomic: concurrent runs never see partials
        except BaseException:
            os.unlink(tmp)
            raise
    except OSError:
        pass  # read-only filesystem etc.: caching is best-effort


def build_kernels(config: LithoConfig, cache: bool = True,
                  disk_cache: Union[bool, str, None] = None) -> KernelSet:
    """Build the coherent kernel set for a lithography configuration.

    The decomposition is deterministic for a given config and cached at
    two levels by default — in-process (kernel construction costs an SVD
    whose size scales with the passband area, so reusing it across
    simulator instances matters for the benchmark harness) and on disk
    under a stable :func:`config_hash` key (cold starts of benches,
    examples and CLI runs rebuild identical kernels repeatedly; the
    eigendecomposition is the slowest cold-start step).  Set
    ``disk_cache=False`` or ``REPRO_KERNEL_CACHE=off`` to disable the
    disk layer, or pass/point either at a directory to relocate it.
    """
    key = (config.optics, config.grid, config.pixel_nm)
    if cache and key in _CACHE:
        return _CACHE[key]

    cache_dir = _disk_cache_dir(disk_cache) if cache else None
    disk_path = (os.path.join(cache_dir, config_hash(config) + ".npz")
                 if cache_dir else None)
    if disk_path and os.path.exists(disk_path):
        loaded = _disk_load(disk_path, config)
        if loaded is not None:
            _CACHE[key] = loaded
            return loaded

    optics = config.optics
    fx, fy = frequency_grid(config.grid, config.pixel_nm)
    cutoff = optics.cutoff_frequency
    passband = (fx ** 2 + fy ** 2) <= cutoff ** 2 * (1.0 + 1e-9)
    n_pass = int(passband.sum())

    points, weights = source_points(optics)
    rows = np.empty((len(points), n_pass), dtype=complex)
    for s, (sx, sy) in enumerate(points):
        pupil = pupil_function(optics, fx, fy, shift=(sx, sy))
        rows[s] = np.sqrt(weights[s]) * pupil[passband]

    # Economy SVD: right singular vectors are TCC eigenvectors, squared
    # singular values are the eigenvalues.
    _, singular, vh = np.linalg.svd(rows, full_matrices=False)
    rank = min(config.optics.num_kernels, len(singular))
    eigenvalues = singular[:rank] ** 2
    vectors = vh[:rank].conj()  # eigenvectors of A^H A

    freq_kernels = np.zeros((rank, config.grid, config.grid), dtype=complex)
    for k in range(rank):
        kernel = np.zeros((config.grid, config.grid), dtype=complex)
        kernel[passband] = vectors[k]
        freq_kernels[k] = kernel

    # Normalize clear-field intensity to 1: a fully open mask has
    # FFT = N^2 * delta(0), imaging to sum_k w_k |H_k(0)|^2.
    dc_gain = float(np.sum(eigenvalues * np.abs(freq_kernels[:, 0, 0]) ** 2))
    if dc_gain <= 0:
        raise RuntimeError("degenerate kernel set: zero clear-field intensity")
    eigenvalues = eigenvalues / dc_gain

    kernel_set = KernelSet(freq_kernels=freq_kernels, weights=eigenvalues,
                           config=config)
    if cache:
        _CACHE[key] = kernel_set
    if disk_path:
        _disk_store(disk_path, kernel_set)
    return kernel_set


def clear_cache() -> None:
    """Drop all cached kernel sets (used by tests)."""
    _CACHE.clear()


def save_kernels(kernel_set: KernelSet, path: str) -> None:
    """Persist a kernel set as an ``.npz`` archive.

    Building kernels costs an SVD (sub-second at 64 px, ~1 s at 256 px,
    growing with the passband area); persisting them lets repeated
    command-line runs and paper-scale sweeps skip the rebuild.  Only
    the decomposition is stored — the config is revalidated on load.
    """
    import numpy as _np
    _np.savez(path,
              freq_kernels=kernel_set.freq_kernels,
              weights=kernel_set.weights,
              grid=kernel_set.config.grid,
              pixel_nm=kernel_set.config.pixel_nm)


def load_kernels(path: str, config: LithoConfig) -> KernelSet:
    """Load a kernel set saved by :func:`save_kernels`.

    The archive's grid/pixel metadata must match ``config``; a mismatch
    raises rather than silently simulating the wrong optics.
    """
    import os as _os
    import numpy as _np
    if not _os.path.exists(path) and _os.path.exists(path + ".npz"):
        path = path + ".npz"
    with _np.load(path) as archive:
        grid = int(archive["grid"])
        pixel_nm = float(archive["pixel_nm"])
        if grid != config.grid or pixel_nm != config.pixel_nm:
            raise ValueError(
                f"kernel archive is {grid}px @ {pixel_nm}nm but config is "
                f"{config.grid}px @ {config.pixel_nm}nm")
        return KernelSet(freq_kernels=archive["freq_kernels"],
                         weights=archive["weights"], config=config)
