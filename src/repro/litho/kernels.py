"""Hopkins TCC construction and SVD decomposition into coherent kernels.

Hopkins' partially-coherent imaging (Eq. 1 of the paper) is approximated
by its dominant coherent systems (Eq. 2): the transmission cross
coefficient (TCC) operator is decomposed so the aerial image becomes

    I = sum_k  w_k | M (x) h_k |^2 ,   k = 1..N_h  (N_h = 24).

Rather than forming the dense TCC matrix, we exploit that the TCC of a
discretized source is ``A^H A`` where row ``s`` of ``A`` is the
source-shifted pupil ``sqrt(w_s) * P(f + f_s)`` restricted to the
passband; the right singular vectors of ``A`` are then exactly the TCC
eigenvectors (Cobb 1998), obtained by one economy SVD.

Kernels are kept in the frequency domain on the simulation raster's FFT
grid, so imaging is two FFTs per kernel with no resampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .config import LithoConfig, OpticsConfig
from .pupil import frequency_grid, pupil_function
from .source import source_points


@dataclass(frozen=True)
class KernelSet:
    """Coherent decomposition of a partially coherent imaging system.

    Attributes
    ----------
    freq_kernels:
        Complex array ``(N_h, grid, grid)`` in unshifted FFT layout; the
        k-th slice is ``H_k(f)``, the frequency response of kernel k.
    weights:
        Nonnegative weights ``w_k`` (TCC eigenvalues), normalized so a
        fully-open mask images to intensity 1.0 (clear-field dose).
    config:
        The :class:`LithoConfig` the kernels were built for.
    """

    freq_kernels: np.ndarray
    weights: np.ndarray
    config: LithoConfig

    @property
    def num_kernels(self) -> int:
        return len(self.weights)

    @property
    def grid(self) -> int:
        return self.freq_kernels.shape[-1]

    def spatial_kernels(self, shifted: bool = True) -> np.ndarray:
        """Inverse-transform kernels to the spatial domain.

        Parameters
        ----------
        shifted:
            If true, apply ``fftshift`` so each kernel is centered —
            convenient for visualization.
        """
        spatial = np.fft.ifft2(self.freq_kernels, axes=(-2, -1))
        if shifted:
            spatial = np.fft.fftshift(spatial, axes=(-2, -1))
        return spatial

    def flipped(self) -> np.ndarray:
        """Frequency kernels evaluated at ``-f`` (adjoint of the forward
        convolution; used by the ILT gradient, Eq. 14)."""
        flipped = self.freq_kernels[:, ::-1, ::-1]
        return np.roll(flipped, 1, axis=(-2, -1))


_CACHE: Dict[Tuple, KernelSet] = {}


def build_kernels(config: LithoConfig, cache: bool = True) -> KernelSet:
    """Build the coherent kernel set for a lithography configuration.

    The decomposition is deterministic for a given config and cached by
    default — kernel construction costs an SVD whose size scales with the
    passband area, so reusing it across simulator instances matters for
    the benchmark harness.
    """
    key = (config.optics, config.grid, config.pixel_nm)
    if cache and key in _CACHE:
        return _CACHE[key]

    optics = config.optics
    fx, fy = frequency_grid(config.grid, config.pixel_nm)
    cutoff = optics.cutoff_frequency
    passband = (fx ** 2 + fy ** 2) <= cutoff ** 2 * (1.0 + 1e-9)
    n_pass = int(passband.sum())

    points, weights = source_points(optics)
    rows = np.empty((len(points), n_pass), dtype=complex)
    for s, (sx, sy) in enumerate(points):
        pupil = pupil_function(optics, fx, fy, shift=(sx, sy))
        rows[s] = np.sqrt(weights[s]) * pupil[passband]

    # Economy SVD: right singular vectors are TCC eigenvectors, squared
    # singular values are the eigenvalues.
    _, singular, vh = np.linalg.svd(rows, full_matrices=False)
    rank = min(config.optics.num_kernels, len(singular))
    eigenvalues = singular[:rank] ** 2
    vectors = vh[:rank].conj()  # eigenvectors of A^H A

    freq_kernels = np.zeros((rank, config.grid, config.grid), dtype=complex)
    for k in range(rank):
        kernel = np.zeros((config.grid, config.grid), dtype=complex)
        kernel[passband] = vectors[k]
        freq_kernels[k] = kernel

    # Normalize clear-field intensity to 1: a fully open mask has
    # FFT = N^2 * delta(0), imaging to sum_k w_k |H_k(0)|^2.
    dc_gain = float(np.sum(eigenvalues * np.abs(freq_kernels[:, 0, 0]) ** 2))
    if dc_gain <= 0:
        raise RuntimeError("degenerate kernel set: zero clear-field intensity")
    eigenvalues = eigenvalues / dc_gain

    kernel_set = KernelSet(freq_kernels=freq_kernels, weights=eigenvalues,
                           config=config)
    if cache:
        _CACHE[key] = kernel_set
    return kernel_set


def clear_cache() -> None:
    """Drop all cached kernel sets (used by tests)."""
    _CACHE.clear()


def save_kernels(kernel_set: KernelSet, path: str) -> None:
    """Persist a kernel set as an ``.npz`` archive.

    Building kernels costs an SVD (sub-second at 64 px, ~1 s at 256 px,
    growing with the passband area); persisting them lets repeated
    command-line runs and paper-scale sweeps skip the rebuild.  Only
    the decomposition is stored — the config is revalidated on load.
    """
    import numpy as _np
    _np.savez(path,
              freq_kernels=kernel_set.freq_kernels,
              weights=kernel_set.weights,
              grid=kernel_set.config.grid,
              pixel_nm=kernel_set.config.pixel_nm)


def load_kernels(path: str, config: LithoConfig) -> KernelSet:
    """Load a kernel set saved by :func:`save_kernels`.

    The archive's grid/pixel metadata must match ``config``; a mismatch
    raises rather than silently simulating the wrong optics.
    """
    import os as _os
    import numpy as _np
    if not _os.path.exists(path) and _os.path.exists(path + ".npz"):
        path = path + ".npz"
    with _np.load(path) as archive:
        grid = int(archive["grid"])
        pixel_nm = float(archive["pixel_nm"])
        if grid != config.grid or pixel_nm != config.pixel_nm:
            raise ValueError(
                f"kernel archive is {grid}px @ {pixel_nm}nm but config is "
                f"{config.grid}px @ {config.pixel_nm}nm")
        return KernelSet(freq_kernels=archive["freq_kernels"],
                         weights=archive["weights"], config=config)
