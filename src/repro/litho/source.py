"""Illumination source models for Hopkins imaging.

The partially coherent source is discretized into point sources on a
Cartesian grid inside the pupil-normalized sigma annulus.  Each point
contributes one coherent system ``P(f + f_s)``; the Hopkins transmission
cross coefficients are the (weighted) sum of their outer products, which
is what :mod:`repro.litho.kernels` eigendecomposes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .config import OpticsConfig


def source_points(optics: OpticsConfig) -> Tuple[np.ndarray, np.ndarray]:
    """Discretize the annular source into point sources.

    Returns
    -------
    (points, weights):
        ``points`` has shape ``(S, 2)`` holding source coordinates in
        pupil-normalized units (fractions of NA/wavelength); ``weights``
        has shape ``(S,)`` and sums to 1.
    """
    n = optics.source_points
    axis = np.linspace(-optics.sigma_outer, optics.sigma_outer, n)
    sx, sy = np.meshgrid(axis, axis, indexing="ij")
    radius = np.hypot(sx, sy)
    inside = (radius <= optics.sigma_outer + 1e-12) & (radius >= optics.sigma_inner - 1e-12)
    points = np.stack([sx[inside], sy[inside]], axis=1)
    if len(points) == 0:
        raise ValueError("source discretization produced no points; "
                         "increase source_points")
    weights = np.full(len(points), 1.0 / len(points))
    return points, weights


def source_map(optics: OpticsConfig, resolution: int = 64) -> np.ndarray:
    """Render the source intensity distribution on a square grid.

    Purely diagnostic — useful to visualize the annular illumination in
    examples and docs.
    """
    axis = np.linspace(-1.0, 1.0, resolution)
    sx, sy = np.meshgrid(axis, axis, indexing="ij")
    radius = np.hypot(sx, sy)
    inside = (radius <= optics.sigma_outer) & (radius >= optics.sigma_inner)
    return inside.astype(float)
