"""Unified Hopkins forward/adjoint engine (Eqs. 1-3, 11-14).

Every workload in the repo — forward simulation, the ILT baseline,
Algorithm 2 pre-training, the Fig. 6 refinement stage and the Table 2
benchmarks — bottoms out in the same two FFT pipelines:

* **forward** (Eq. 2): ``I = sum_k w_k |IFFT(FFT(M) * H_k)|^2`` followed
  by a hard or sigmoid resist (Eqs. 3, 12);
* **adjoint** (Eq. 14): the chain-rule gradient of the relaxed litho
  error ``E = ||Z_t - Z||^2`` back through the resist and the coherent
  systems onto the mask.

:class:`LithoEngine` is the one implementation of both.  It accepts
single ``(H, W)`` masks and batched ``(N, H, W)`` stacks through a
single code path and caches derived kernel tensors at construction.

The kernels are bandlimited by the pupil cutoff: at grid 64 each
``H_k`` is exactly zero outside a ~13x13 block of frequency rows and
columns.  The engine exploits this at construction by slicing every
kernel (and its adjoint/flipped counterpart) down to that passband and
precomputing small DFT factor matrices restricted to it.  The mask
spectrum is evaluated *only on the passband* with two thin matmuls
(``E_row @ M @ E_col``), forward fields then cost two thin matmuls per
kernel instead of a full 2-D FFT, and the adjoint transform only ever
evaluates the frequency bins the flipped kernels can touch.  Work is
looped over kernels on ``(N, H, W)`` chunks — on one core this
cache-friendly shape beats materializing ``(N, K, H, W)`` intermediates
by a wide margin.  The discarded bins are identically zero, so results
match the plain ``fft2`` reference to machine precision.

Two single-process fast paths are built in:

* **precision mode** — ``precision="f32"`` runs the whole pipeline in
  ``float32``/``complex64`` (kernels, DFT factors, fields, resist),
  roughly halving memory traffic; ``"f64"`` (the default, also
  selectable via ``REPRO_PRECISION``) remains the bit-parity
  reference.  Documented f32 tolerance: relaxed litho error within
  1e-3 of the f64 value on normalized masks (see DESIGN.md §10).
* **workspace arena** — per-engine scratch buffers
  (:class:`repro.workspace.Workspace`) are reused across iterations
  for every intermediate that does not escape the call: field
  tensors, compact spectra, adjoint accumulators.  Arrays returned to
  callers are always freshly allocated.

Engines are cheap but not free (the adjoint kernel tensor is an
``O(K * H * W)`` copy), so :meth:`LithoEngine.for_kernels` memoizes one
engine per (:class:`~repro.litho.kernels.KernelSet`, precision) pair —
the facades in :mod:`repro.litho.aerial`, :mod:`repro.litho.simulator`
and :mod:`repro.ilt` all share it automatically.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.obs import trace
from repro.obs.registry import MetricsRegistry
from repro.workspace import Workspace

from .config import LithoConfig
from .kernels import KernelSet, build_kernels
from .resist import binarize_mask, hard_resist, sigmoid_mask, _stable_sigmoid

ArrayOrScalar = Union[float, np.ndarray]

#: precision name -> (real dtype, complex dtype)
PRECISION_DTYPES: Dict[str, Tuple[np.dtype, np.dtype]] = {
    "f64": (np.dtype(np.float64), np.dtype(np.complex128)),
    "f32": (np.dtype(np.float32), np.dtype(np.complex64)),
}

_PRECISION_ALIASES = {
    "f64": "f64", "float64": "f64", "double": "f64",
    "f32": "f32", "float32": "f32", "single": "f32",
}


def resolve_precision(precision: Optional[str]) -> str:
    """Normalize a precision name; ``None`` consults ``REPRO_PRECISION``
    and falls back to ``"f64"``."""
    if precision is None:
        precision = os.environ.get("REPRO_PRECISION") or "f64"
    key = str(precision).strip().lower()
    if key not in _PRECISION_ALIASES:
        raise ValueError(
            f"unknown precision {precision!r}; expected one of "
            f"{sorted(set(_PRECISION_ALIASES))}")
    return _PRECISION_ALIASES[key]


class EngineStats:
    """Cumulative call counters and wall-clock for one engine instance.

    A facade over the engine's :class:`~repro.obs.MetricsRegistry` —
    the counters live in the registry (under ``litho.*`` names) and
    this class preserves the historic attribute / ``snapshot()`` /
    ``delta()`` API on top of them.

    ``forward_*`` counts executions of the *public* aerial-intensity
    pipeline only; the forward pass nested inside each adjoint
    evaluation is attributed to ``gradient_*`` instead, so
    ``forward_seconds`` and ``gradient_seconds`` partition engine
    compute time with no double-counting, and the call counters
    reconcile 1:1 with the ``litho.forward`` / ``litho.adjoint`` span
    counts of an active tracer.  ``*_masks`` accumulate batch sizes,
    so throughput is ``masks / seconds``.  The run telemetry records
    per-iteration deltas of :meth:`snapshot`.
    """

    _INT_FIELDS = ("forward_calls", "forward_masks",
                   "gradient_calls", "gradient_masks")
    _FLOAT_FIELDS = ("forward_seconds", "gradient_seconds")
    _FIELDS = _INT_FIELDS + _FLOAT_FIELDS

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {name: self.registry.counter(f"litho.{name}")
                          for name in self._FIELDS}

    def __getattr__(self, name: str):
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            value = counters[name].value
            return int(value) if name in self._INT_FIELDS else value
        raise AttributeError(name)

    def record_forward(self, masks: int, seconds: float) -> None:
        self._counters["forward_calls"].inc()
        self._counters["forward_masks"].inc(masks)
        self._counters["forward_seconds"].inc(seconds)

    def record_gradient(self, masks: int, seconds: float) -> None:
        self._counters["gradient_calls"].inc()
        self._counters["gradient_masks"].inc(masks)
        self._counters["gradient_seconds"].inc(seconds)

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict copy (for telemetry deltas and assertions)."""
        return {name: getattr(self, name) for name in self._FIELDS}

    def delta(self, previous: Dict[str, float]) -> Dict[str, float]:
        """Per-field difference against an earlier :meth:`snapshot`."""
        now = self.snapshot()
        return {key: now[key] - previous.get(key, 0) for key in now}

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()


def real_spectrum(masks: np.ndarray) -> np.ndarray:
    """Full complex FFT of a real mask (stack) via ``rfft2``.

    Computes the half-spectrum with a real-input transform and expands
    it to the full FFT grid using Hermitian symmetry
    ``F[-u, -v] = conj(F[u, v])`` — the full grid is needed because the
    coherent kernels ``H_k`` are not Hermitian, so the field spectra
    ``FFT(M) * H_k`` cannot stay in half-spectrum form.
    """
    masks = np.asarray(masks, dtype=float)
    grid = masks.shape[-1]
    half = np.fft.rfft2(masks, axes=(-2, -1))
    n_half = half.shape[-1]
    full = np.empty(masks.shape[:-2] + (grid, grid), dtype=complex)
    full[..., :n_half] = half
    rows = (-np.arange(grid)) % grid
    cols = grid - np.arange(n_half, grid)
    full[..., n_half:] = np.conj(half[..., rows, :][..., cols])
    return full


class LithoEngine:
    """Batched, cached Hopkins forward/adjoint lithography engine.

    Parameters
    ----------
    config:
        Lithography configuration; defaults to :meth:`LithoConfig.paper`
        when no kernel set is injected.
    kernels:
        Optional prebuilt :class:`KernelSet`; its config becomes the
        engine's config (and must match ``config`` when both are given).
    precision:
        ``"f64"`` (default) or ``"f32"``; ``None`` consults the
        ``REPRO_PRECISION`` environment variable.  f32 engines compute
        spectra, fields and the resist in single precision.

    All mask-consuming methods accept either a single ``(H, W)`` array
    or a batch ``(N, H, W)`` and return results of matching rank; error
    terms come back as a ``float`` for single masks and an ``(N,)``
    array for batches.
    """

    def __init__(self, config: Optional[LithoConfig] = None,
                 kernels: Optional[KernelSet] = None,
                 precision: Optional[str] = None):
        if kernels is None:
            config = config or LithoConfig.paper()
            kernels = build_kernels(config)
        elif config is not None and kernels.config != config:
            raise ValueError("injected kernels were built for a different config")
        self.config = kernels.config
        self.kernels = kernels
        self.precision = resolve_precision(precision)
        rdtype, cdtype = PRECISION_DTYPES[self.precision]
        self._rdtype, self._cdtype = rdtype, cdtype

        freq = kernels.freq_kernels
        adjoint = kernels.flipped()
        self._weights = kernels.weights.astype(rdtype)

        # Passband support: the frequency rows/columns where any kernel
        # is nonzero.  Everything outside is identically zero (pupil
        # cutoff), so transforms restricted to this block are exact.
        grid = kernels.grid
        rows = np.where(np.any(freq != 0, axis=(0, 2)))[0]
        cols = np.where(np.any(freq != 0, axis=(0, 1)))[0]
        arows = np.where(np.any(adjoint != 0, axis=(0, 2)))[0]
        acols = np.where(np.any(adjoint != 0, axis=(0, 1)))[0]
        self._rows, self._cols = rows, cols
        self._freq_cc = np.ascontiguousarray(
            freq[:, rows[:, None], cols[None, :]], dtype=cdtype)
        # Adjoint kernels with the Eq. 14 factor ``2 w_k`` folded in, so
        # the backward loop is a single complex multiply per kernel.
        self._adj_cc = np.ascontiguousarray(
            (2.0 * kernels.weights)[:, None, None]
            * adjoint[:, arows[:, None], acols[None, :]], dtype=cdtype)

        # DFT factor matrices restricted to the passband.  ``spec_row @
        # M @ spec_col`` evaluates the forward 2-D DFT of a real mask
        # only at the (rows x cols) kernel support; ``fields = ifft_row
        # @ (P @ ifft_col)`` is the inverse 2-D DFT of a spectrum P
        # supported there; the ``fft_*`` pair evaluates a forward DFT
        # only at the adjoint support, and ``grad_*`` inverts from that
        # support back to the full grid.
        x = np.arange(grid)
        omega = 2j * np.pi / grid

        def _dft(a, b, sign, scale):
            return (np.exp(sign * omega * np.outer(a, b)) * scale
                    ).astype(cdtype)

        self._spec_row = _dft(rows, x, -1, 1.0)
        self._spec_col = _dft(x, cols, -1, 1.0)
        self._ifft_row = _dft(x, rows, +1, 1.0 / grid)
        self._ifft_col = _dft(cols, x, +1, 1.0 / grid)
        self._fft_row = _dft(arows, x, -1, 1.0)
        self._fft_col = _dft(x, acols, -1, 1.0)
        self._grad_row = _dft(x, arows, +1, 1.0 / grid)
        self._grad_col = _dft(acols, x, +1, 1.0 / grid)

        # Batched-gradient chunk size: cap the per-chunk field tensor
        # at ~8 MB so it stays cache-resident (see _forward).
        bytes_per_sample = len(self._weights) * grid * grid * cdtype.itemsize
        self._gradient_chunk = max(1, (8 << 20) // bytes_per_sample)

        self.workspace = Workspace()
        self.metrics = MetricsRegistry()
        self.stats = EngineStats(self.metrics)

    # ------------------------------------------------------------------
    @classmethod
    def for_kernels(cls, kernels: KernelSet,
                    precision: Optional[str] = None) -> "LithoEngine":
        """Shared engine for a kernel set (memoized per precision on the
        instance)."""
        precision = resolve_precision(precision)
        engines = kernels.__dict__.get("_engines")
        if engines is None:
            engines = {}
            object.__setattr__(kernels, "_engines", engines)
        engine = engines.get(precision)
        if engine is None:
            engine = cls(kernels=kernels, precision=precision)
            engines[precision] = engine
        return engine

    @property
    def grid(self) -> int:
        return self.kernels.grid

    @property
    def threshold(self) -> float:
        return self.config.threshold

    # ------------------------------------------------------------------
    def _as_batch(self, masks: np.ndarray) -> Tuple[np.ndarray, bool]:
        """Promote a mask or mask stack to ``(N, grid, grid)``."""
        masks = np.asarray(masks)
        if masks.dtype != self._rdtype:
            masks = masks.astype(self._rdtype)
        single = masks.ndim == 2
        if single:
            masks = masks[None]
        if masks.ndim != 3 or masks.shape[-2] != masks.shape[-1]:
            raise ValueError(
                "mask must be square 2-D or a square (N, H, W) batch, got "
                f"shape {masks.shape if not single else masks.shape[1:]}")
        if masks.shape[-1] != self.grid:
            raise ValueError(
                f"mask grid {masks.shape[-1]} != kernel grid {self.grid}")
        return masks, single

    def _as_targets(self, targets: np.ndarray) -> np.ndarray:
        targets = np.asarray(targets)
        if targets.dtype != self._rdtype:
            targets = targets.astype(self._rdtype)
        if targets.shape[-2:] != (self.grid,) * 2:
            raise ValueError(
                f"target shape {targets.shape} does not match grid {self.grid}")
        return targets

    def _compact_spectrum(self, batch: np.ndarray,
                          spectrum: Optional[np.ndarray] = None) -> np.ndarray:
        """Mask spectrum evaluated on the kernel passband, ``(N, R, C)``.

        Without a precomputed full spectrum this is two thin complex
        matmuls (the DFT restricted to the support), run on workspace
        buffers — no full-grid FFT is ever materialized.
        """
        ws = self.workspace
        n, grid = batch.shape[0], self.grid
        n_rows, n_cols = len(self._rows), len(self._cols)
        if spectrum is not None:
            return np.ascontiguousarray(
                spectrum[:, self._rows[:, None], self._cols[None, :]],
                dtype=self._cdtype)
        with trace.span("litho.spectrum", masks=n):
            complex_batch = ws.get("spec.batch", (n, grid, grid),
                                   self._cdtype)
            complex_batch[...] = batch
            partial = np.matmul(
                self._spec_row, complex_batch,
                out=ws.get("spec.partial", (n, n_rows, grid), self._cdtype))
            return np.matmul(
                partial, self._spec_col,
                out=ws.get("spec.compact", (n, n_rows, n_cols),
                           self._cdtype))

    def _field_k(self, compact: np.ndarray, k: int,
                 out: Optional[np.ndarray] = None) -> np.ndarray:
        """Coherent field of kernel ``k`` via the passband inverse DFT."""
        return np.matmul(self._ifft_row,
                         (compact * self._freq_cc[k]) @ self._ifft_col,
                         out=out)

    def _forward(self, batch: np.ndarray, dose: float, keep_fields: bool,
                 spectrum: Optional[np.ndarray] = None
                 ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Public forward pipeline: ``_forward_impl`` plus accounting.

        Every execution bumps the ``forward_*`` stats and opens a
        ``litho.forward`` span; the adjoint path calls
        :meth:`_forward_impl` directly so its nested forward work is
        attributed to ``gradient_*`` instead of being double-counted.
        """
        started = time.perf_counter()
        with trace.span("litho.forward", masks=batch.shape[0]):
            intensity, fields = self._forward_impl(batch, dose, keep_fields,
                                                   spectrum)
        self.stats.record_forward(batch.shape[0],
                                  time.perf_counter() - started)
        return intensity, fields

    def _forward_impl(self, batch: np.ndarray, dose: float,
                      keep_fields: bool,
                      spectrum: Optional[np.ndarray] = None,
                      ws: Optional[Workspace] = None
                      ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Fused aerial-intensity loop over kernels (no accounting).

        Returns ``(intensity, fields)`` with fields in ``(K, N, H, W)``
        layout (contiguous per kernel) or ``None`` when not requested.
        Looping keeps the per-kernel working set cache-resident.

        ``ws`` opts the *escaping* outputs (intensity, fields) into the
        workspace arena — pass it only from call sites that consume
        both before the next engine call (the adjoint path).  Public
        paths leave it ``None`` so returned arrays are freshly owned;
        non-escaping scratch always comes from the engine workspace.
        """
        compact = self._compact_spectrum(batch, spectrum)
        n, grid = batch.shape[0], self.grid
        num_kernels = len(self._weights)
        if keep_fields:
            shape = (num_kernels, n, grid, grid)
            fields = (ws.get("fwd.fields", shape, self._cdtype)
                      if ws is not None
                      else np.empty(shape, dtype=self._cdtype))
        else:
            fields = None
        scratch = self.workspace.get("fwd.scratch", (n, grid, grid),
                                     self._cdtype)
        if ws is not None:
            intensity = ws.zeros("fwd.intensity", (n, grid, grid),
                                 self._rdtype)
        else:
            intensity = np.zeros((n, grid, grid), dtype=self._rdtype)
        for k in range(num_kernels):
            out = fields[k] if keep_fields else scratch
            field = self._field_k(compact, k, out=out)
            intensity += self._weights[k] * (field.real ** 2 +
                                             field.imag ** 2)
        if dose != 1.0:
            intensity *= dose
        return intensity, fields

    def _fields(self, batch: np.ndarray,
                spectrum: Optional[np.ndarray] = None) -> np.ndarray:
        """Coherent fields ``M (x) h_k``, shaped ``(N, K, grid, grid)``."""
        compact = self._compact_spectrum(batch, spectrum)
        num_kernels = len(self._weights)
        stacked = np.empty((num_kernels,) + batch.shape, dtype=self._cdtype)
        for k in range(num_kernels):
            self._field_k(compact, k, out=stacked[k])
        return stacked.transpose(1, 0, 2, 3)

    # ------------------------------------------------------------------
    # Forward model
    # ------------------------------------------------------------------
    def spectrum(self, mask: np.ndarray) -> np.ndarray:
        """Full FFT of a mask or mask batch (rfft2 + Hermitian expand)."""
        batch, single = self._as_batch(mask)
        full = real_spectrum(batch)
        return full[0] if single else full

    def fields(self, mask: np.ndarray,
               spectrum: Optional[np.ndarray] = None) -> np.ndarray:
        """Coherent fields per kernel: ``(K, H, W)`` or ``(N, K, H, W)``."""
        batch, single = self._as_batch(mask)
        if spectrum is not None and spectrum.ndim == 2:
            spectrum = spectrum[None]
        fields = self._fields(batch, spectrum)
        return fields[0] if single else fields

    def aerial(self, mask: np.ndarray, dose: float = 1.0) -> np.ndarray:
        """Aerial image (Eq. 2), scaled by the exposure ``dose``."""
        batch, single = self._as_batch(mask)
        intensity, _ = self._forward(batch, dose, keep_fields=False)
        return intensity[0] if single else intensity

    def aerial_and_fields(self, mask: np.ndarray, dose: float = 1.0
                          ) -> Tuple[np.ndarray, np.ndarray]:
        """``(intensity, fields)`` sharing one FFT of the mask."""
        batch, single = self._as_batch(mask)
        intensity, stacked = self._forward(batch, dose, keep_fields=True)
        fields = stacked.transpose(1, 0, 2, 3)
        if single:
            return intensity[0], fields[0]
        return intensity, fields

    def wafer(self, mask: np.ndarray, dose: float = 1.0) -> np.ndarray:
        """Binary wafer image under the hard-threshold resist (Eq. 3)."""
        return hard_resist(self.aerial(mask, dose=dose), self.threshold)

    def relaxed_wafer(self, mask: np.ndarray, dose: float = 1.0,
                      resist_steepness: Optional[float] = None) -> np.ndarray:
        """Differentiable wafer image under the sigmoid resist (Eq. 12)."""
        steepness = resist_steepness or self.config.resist_steepness
        return _stable_sigmoid(
            steepness * (self.aerial(mask, dose=dose) - self.threshold))

    def litho_error(self, mask: np.ndarray, target: np.ndarray,
                    relaxed: bool = False, dose: float = 1.0) -> ArrayOrScalar:
        """Squared L2 litho error ``||Z_t - Z||^2`` (Eq. 11) per mask."""
        batch, single = self._as_batch(mask)
        targets = self._as_targets(target)
        wafer = (self.relaxed_wafer(batch, dose=dose) if relaxed
                 else self.wafer(batch, dose=dose))
        diff = wafer - targets
        errors = np.sum(diff * diff, axis=(-2, -1))
        return float(errors[0]) if single else errors

    def discrete_l2(self, mask: np.ndarray, target: np.ndarray,
                    dose: float = 1.0) -> ArrayOrScalar:
        """Discrete squared-L2 (Definition 1) of hard-resist wafers."""
        return self.litho_error(mask, target, relaxed=False, dose=dose)

    # ------------------------------------------------------------------
    # Adjoint model (Eq. 14)
    # ------------------------------------------------------------------
    def error_and_gradient_wrt_mask(
            self, mask_relaxed: np.ndarray, target: np.ndarray,
            threshold: Optional[float] = None,
            resist_steepness: Optional[float] = None,
            dose: float = 1.0) -> Tuple[ArrayOrScalar, np.ndarray]:
        """Relaxed litho error and gradient w.r.t. the relaxed mask.

        This is the inner term of Eq. 14 — the quantity Algorithm 2
        back-propagates into the generator — computed for the whole
        batch in one pipeline.  The adjoint sum over kernels is
        accumulated on the flipped kernels' passband support, so the
        backward pass never evaluates a frequency bin the kernels
        cannot touch; one small inverse DFT expands the accumulated
        spectrum back to the mask grid.
        """
        started = time.perf_counter()
        threshold = self.threshold if threshold is None else threshold
        steepness = (self.config.resist_steepness if resist_steepness is None
                     else resist_steepness)
        batch, single = self._as_batch(mask_relaxed)
        targets = self._as_targets(target)
        if targets.ndim == 2:
            targets = np.broadcast_to(targets, batch.shape)

        # Samples are independent, so large batches are processed in
        # chunks sized to keep the per-chunk field tensor cache-resident
        # (~8 MB); past that point batching degrades on one core.
        with trace.span("litho.adjoint", masks=batch.shape[0]):
            chunk = self._gradient_chunk
            if batch.shape[0] > chunk:
                errors = np.empty(batch.shape[0], dtype=self._rdtype)
                grads = np.empty(batch.shape, dtype=self._rdtype)
                for i in range(0, batch.shape[0], chunk):
                    errors[i:i + chunk], grads[i:i + chunk] = \
                        self._gradient_chunk_wrt_mask(
                            batch[i:i + chunk], targets[i:i + chunk],
                            threshold, steepness, dose)
                self.stats.record_gradient(batch.shape[0],
                                           time.perf_counter() - started)
                return errors, grads
            errors, grads = self._gradient_chunk_wrt_mask(
                batch, targets, threshold, steepness, dose)
        self.stats.record_gradient(batch.shape[0],
                                   time.perf_counter() - started)
        if single:
            return float(errors[0]), grads[0]
        return errors, grads

    def _gradient_chunk_wrt_mask(
            self, batch: np.ndarray, targets: np.ndarray, threshold: float,
            steepness: float, dose: float) -> Tuple[np.ndarray, np.ndarray]:
        ws = self.workspace
        intensity, fields = self._forward_impl(batch, dose, keep_fields=True,
                                               ws=ws)
        wafer = _stable_sigmoid(steepness * (intensity - threshold))
        diff = wafer - targets
        errors = np.sum(diff * diff, axis=(-2, -1))

        # dE/dI, including the resist sigmoid slope and dose scaling.
        grad_intensity = 2.0 * steepness * diff * wafer * (1.0 - wafer)
        if dose != 1.0:
            grad_intensity = grad_intensity * dose

        # Adjoint push through every coherent system: transform
        # ``dE/dI * conj(field_k)`` only onto the flipped kernel's
        # passband, multiply there (``_adj_cc`` carries the ``2 w_k``
        # factor), and accumulate over k.  All intermediates live in
        # the workspace arena; only ``errors``/``grad`` escape.
        n, grid = batch.shape[0], self.grid
        n_arows, n_acols = self._adj_cc.shape[1:]
        accumulated = ws.zeros("adj.acc", (n, n_arows, n_acols),
                               self._cdtype)
        weighted = ws.get("adj.weighted", (n, grid, grid), self._cdtype)
        partial = ws.get("adj.partial", (n, n_arows, grid), self._cdtype)
        spectrum_k = ws.get("adj.spectrum", (n, n_arows, n_acols),
                            self._cdtype)
        for k in range(len(self._weights)):
            np.conjugate(fields[k], out=weighted)
            weighted *= grad_intensity
            np.matmul(self._fft_row, weighted, out=partial)
            np.matmul(partial, self._fft_col, out=spectrum_k)
            spectrum_k *= self._adj_cc[k]
            accumulated += spectrum_k
        expanded = np.matmul(
            self._grad_row,
            np.matmul(accumulated, self._grad_col,
                      out=ws.get("adj.expand", (n, n_arows, grid),
                                 self._cdtype)),
            out=ws.get("adj.grad", (n, grid, grid), self._cdtype))
        # ``.real`` is a view into the workspace buffer — copy so the
        # returned gradient owns its memory.
        grad = np.array(expanded.real, dtype=self._rdtype)
        return errors, grad

    def error_and_gradient(
            self, mask_params: np.ndarray, target: np.ndarray,
            threshold: Optional[float] = None,
            resist_steepness: Optional[float] = None,
            mask_steepness: Optional[float] = None,
            dose: float = 1.0) -> Tuple[ArrayOrScalar, np.ndarray]:
        """Relaxed litho error and gradient w.r.t. unconstrained ILT
        parameters ``M`` (Eq. 14 in full, including the mask sigmoid)."""
        beta = (self.config.mask_steepness if mask_steepness is None
                else mask_steepness)
        params = np.asarray(mask_params)
        if params.dtype != self._rdtype:
            params = params.astype(self._rdtype)
        relaxed = sigmoid_mask(params, beta)
        error, grad_mb = self.error_and_gradient_wrt_mask(
            relaxed, target, threshold=threshold,
            resist_steepness=resist_steepness, dose=dose)
        grad = beta * relaxed * (1.0 - relaxed) * grad_mb
        return error, grad

    # ------------------------------------------------------------------
    def binarized_score(self, mask_params: np.ndarray, target: np.ndarray,
                        mask_steepness: Optional[float] = None
                        ) -> Tuple[np.ndarray, ArrayOrScalar]:
        """Binarize relaxed parameters and score the hard-resist wafer.

        Returns ``(masks, discrete_l2)`` — the evaluate step both ILT
        optimizers run every few iterations to track the best discrete
        mask (Definition 1).
        """
        beta = (self.config.mask_steepness if mask_steepness is None
                else mask_steepness)
        masks = binarize_mask(sigmoid_mask(
            np.asarray(mask_params, dtype=float), beta))
        return masks, self.discrete_l2(masks, target)
