"""Unified Hopkins forward/adjoint engine (Eqs. 1-3, 11-14).

Every workload in the repo — forward simulation, the ILT baseline,
Algorithm 2 pre-training, the Fig. 6 refinement stage and the Table 2
benchmarks — bottoms out in the same two FFT pipelines:

* **forward** (Eq. 2): ``I = sum_k w_k |IFFT(FFT(M) * H_k)|^2`` followed
  by a hard or sigmoid resist (Eqs. 3, 12);
* **adjoint** (Eq. 14): the chain-rule gradient of the relaxed litho
  error ``E = ||Z_t - Z||^2`` back through the resist and the coherent
  systems onto the mask.

:class:`LithoEngine` is the one implementation of both.  It accepts
single ``(H, W)`` masks and batched ``(N, H, W)`` stacks through a
single code path and caches derived kernel tensors at construction.

The kernels are bandlimited by the pupil cutoff: at grid 64 each
``H_k`` is exactly zero outside a ~13x13 block of frequency rows and
columns.  The engine exploits this at construction by slicing every
kernel (and its adjoint/flipped counterpart) down to that passband and
precomputing small DFT factor matrices restricted to it.  The mask
spectrum is evaluated *only on the passband* with two thin matmuls
(``E_row @ M @ E_col``), forward fields then cost two thin matmuls per
kernel instead of a full 2-D FFT, and the adjoint transform only ever
evaluates the frequency bins the flipped kernels can touch.  Work is
looped over kernels on ``(N, H, W)`` chunks — on one core this
cache-friendly shape beats materializing ``(N, K, H, W)`` intermediates
by a wide margin.  The discarded bins are identically zero, so results
match the plain ``fft2`` reference to machine precision.

Two single-process fast paths are built in:

* **precision mode** — ``precision="f32"`` runs the whole pipeline in
  ``float32``/``complex64`` (kernels, DFT factors, fields, resist),
  roughly halving memory traffic; ``"f64"`` (the default, also
  selectable via ``REPRO_PRECISION``) remains the bit-parity
  reference.  Documented f32 tolerance: relaxed litho error within
  1e-3 of the f64 value on normalized masks (see DESIGN.md §10).
* **workspace arena** — per-engine scratch buffers
  (:class:`repro.workspace.Workspace`) are reused across iterations
  for every intermediate that does not escape the call: field
  tensors, compact spectra, adjoint accumulators.  Arrays returned to
  callers are always freshly allocated.

Engines are cheap but not free (the adjoint kernel tensor is an
``O(K * H * W)`` copy), so :meth:`LithoEngine.for_kernels` memoizes one
engine per (:class:`~repro.litho.kernels.KernelSet`, precision) pair —
the facades in :mod:`repro.litho.aerial`, :mod:`repro.litho.simulator`
and :mod:`repro.ilt` all share it automatically.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.backend.autotune import EngineTuning, env_tuning
from repro.obs import trace
from repro.obs.registry import MetricsRegistry
from repro.workspace import Workspace

from .conditions import ConditionSet
from .config import LithoConfig
from .kernels import KernelSet, build_kernels
from .resist import binarize_mask, hard_resist, sigmoid_mask, _stable_sigmoid

ArrayOrScalar = Union[float, np.ndarray]

#: precision name -> (real dtype, complex dtype)
PRECISION_DTYPES: Dict[str, Tuple[np.dtype, np.dtype]] = {
    "f64": (np.dtype(np.float64), np.dtype(np.complex128)),
    "f32": (np.dtype(np.float32), np.dtype(np.complex64)),
}

_PRECISION_ALIASES = {
    "f64": "f64", "float64": "f64", "double": "f64",
    "f32": "f32", "float32": "f32", "single": "f32",
}


def resolve_precision(precision: Optional[str]) -> str:
    """Normalize a precision name; ``None`` consults ``REPRO_PRECISION``
    and falls back to ``"f64"``."""
    if precision is None:
        precision = os.environ.get("REPRO_PRECISION") or "f64"
    key = str(precision).strip().lower()
    if key not in _PRECISION_ALIASES:
        raise ValueError(
            f"unknown precision {precision!r}; expected one of "
            f"{sorted(set(_PRECISION_ALIASES))}")
    return _PRECISION_ALIASES[key]


class EngineStats:
    """Cumulative call counters and wall-clock for one engine instance.

    A facade over the engine's :class:`~repro.obs.MetricsRegistry` —
    the counters live in the registry (under ``litho.*`` names) and
    this class preserves the historic attribute / ``snapshot()`` /
    ``delta()`` API on top of them.

    ``forward_*`` counts executions of the *public* aerial-intensity
    pipeline only; the forward pass nested inside each adjoint
    evaluation is attributed to ``gradient_*`` instead, so
    ``forward_seconds`` and ``gradient_seconds`` partition engine
    compute time with no double-counting, and the call counters
    reconcile 1:1 with the ``litho.forward`` / ``litho.adjoint`` span
    counts of an active tracer.  ``*_masks`` accumulate batch sizes,
    so throughput is ``masks / seconds``.  The run telemetry records
    per-iteration deltas of :meth:`snapshot`.
    """

    _INT_FIELDS = ("forward_calls", "forward_masks",
                   "gradient_calls", "gradient_masks")
    _FLOAT_FIELDS = ("forward_seconds", "gradient_seconds")
    _FIELDS = _INT_FIELDS + _FLOAT_FIELDS

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {name: self.registry.counter(f"litho.{name}")
                          for name in self._FIELDS}

    def __getattr__(self, name: str):
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            value = counters[name].value
            return int(value) if name in self._INT_FIELDS else value
        raise AttributeError(name)

    def record_forward(self, masks: int, seconds: float) -> None:
        self._counters["forward_calls"].inc()
        self._counters["forward_masks"].inc(masks)
        self._counters["forward_seconds"].inc(seconds)

    def record_gradient(self, masks: int, seconds: float) -> None:
        self._counters["gradient_calls"].inc()
        self._counters["gradient_masks"].inc(masks)
        self._counters["gradient_seconds"].inc(seconds)

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict copy (for telemetry deltas and assertions)."""
        return {name: getattr(self, name) for name in self._FIELDS}

    def delta(self, previous: Dict[str, float]) -> Dict[str, float]:
        """Per-field difference against an earlier :meth:`snapshot`."""
        now = self.snapshot()
        return {key: now[key] - previous.get(key, 0) for key in now}

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()


def real_spectrum(masks: np.ndarray) -> np.ndarray:
    """Full complex FFT of a real mask (stack) via ``rfft2``.

    Computes the half-spectrum with a real-input transform and expands
    it to the full FFT grid using Hermitian symmetry
    ``F[-u, -v] = conj(F[u, v])`` — the full grid is needed because the
    coherent kernels ``H_k`` are not Hermitian, so the field spectra
    ``FFT(M) * H_k`` cannot stay in half-spectrum form.
    """
    masks = np.asarray(masks, dtype=float)
    grid = masks.shape[-1]
    half = np.fft.rfft2(masks, axes=(-2, -1))
    n_half = half.shape[-1]
    full = np.empty(masks.shape[:-2] + (grid, grid), dtype=complex)
    full[..., :n_half] = half
    rows = (-np.arange(grid)) % grid
    cols = grid - np.arange(n_half, grid)
    full[..., n_half:] = np.conj(half[..., rows, :][..., cols])
    return full


def _dft_factor(a: np.ndarray, b: np.ndarray, sign: int, scale: float,
                grid: int, cdtype: np.dtype) -> np.ndarray:
    """DFT factor matrix ``exp(sign * 2j*pi/grid * a b^T) * scale``."""
    omega = 2j * np.pi / grid
    return (np.exp(sign * omega * np.outer(a, b)) * scale).astype(cdtype)


class _ConditionStack:
    """Precomputed corner tensors for one engine's :class:`ConditionSet`.

    Internal to :class:`LithoEngine` and built lazily on the first
    condition-stack call, so nominal engines never pay for it.  Corner
    kernel stacks are concatenated along the kernel axis, grouped by
    unique defocus: ``freq_cc[group_slices[g]]`` are the compact
    kernels of defocus group ``g``, and every corner in
    ``group_of[c] == g`` shares that group's coherent fields — dose is
    applied as a pure intensity scale afterwards.  DFT factor matrices
    are restricted to the union passband of the whole stack, exactly
    like the nominal engine's single-condition factors.
    """

    __slots__ = ("freq_cc", "adj_cc", "weights", "group_slices", "group_of",
                 "doses", "lam", "num_groups", "spec_row", "spec_col",
                 "ifft_row", "ifft_col", "fft_row", "fft_col", "grad_row",
                 "grad_col", "gradient_chunk")

    def __init__(self, conditions: ConditionSet,
                 kernel_sets: List[KernelSet], group_of: np.ndarray,
                 rdtype: np.dtype, cdtype: np.dtype):
        grid = kernel_sets[0].grid
        freq = np.concatenate([ks.freq_kernels for ks in kernel_sets], axis=0)
        adjoint = np.concatenate([ks.flipped() for ks in kernel_sets], axis=0)
        self.weights = np.concatenate(
            [ks.weights for ks in kernel_sets]).astype(rdtype)
        raw_weights = np.concatenate([ks.weights for ks in kernel_sets])

        self.num_groups = len(kernel_sets)
        starts = np.cumsum([0] + [len(ks.weights) for ks in kernel_sets])
        self.group_slices = tuple(slice(int(starts[g]), int(starts[g + 1]))
                                  for g in range(self.num_groups))
        self.group_of = group_of
        self.doses = conditions.doses.astype(rdtype)
        self.lam = conditions.normalized_weights().astype(rdtype)

        # Union passband of every corner's kernels; defocus is a pure
        # pupil phase so in practice all groups share one support, but
        # the union keeps the slicing exact regardless.
        rows = np.where(np.any(freq != 0, axis=(0, 2)))[0]
        cols = np.where(np.any(freq != 0, axis=(0, 1)))[0]
        arows = np.where(np.any(adjoint != 0, axis=(0, 2)))[0]
        acols = np.where(np.any(adjoint != 0, axis=(0, 1)))[0]
        self.freq_cc = np.ascontiguousarray(
            freq[:, rows[:, None], cols[None, :]], dtype=cdtype)
        self.adj_cc = np.ascontiguousarray(
            (2.0 * raw_weights)[:, None, None]
            * adjoint[:, arows[:, None], acols[None, :]], dtype=cdtype)

        x = np.arange(grid)
        self.spec_row = _dft_factor(rows, x, -1, 1.0, grid, cdtype)
        self.spec_col = _dft_factor(x, cols, -1, 1.0, grid, cdtype)
        self.ifft_row = _dft_factor(x, rows, +1, 1.0 / grid, grid, cdtype)
        self.ifft_col = _dft_factor(cols, x, +1, 1.0 / grid, grid, cdtype)
        self.fft_row = _dft_factor(arows, x, -1, 1.0, grid, cdtype)
        self.fft_col = _dft_factor(x, acols, -1, 1.0, grid, cdtype)
        self.grad_row = _dft_factor(x, arows, +1, 1.0 / grid, grid, cdtype)
        self.grad_col = _dft_factor(acols, x, +1, 1.0 / grid, grid, cdtype)

        bytes_per_sample = len(self.weights) * grid * grid * cdtype.itemsize
        self.gradient_chunk = max(1, (8 << 20) // bytes_per_sample)


class LithoEngine:
    """Batched, cached Hopkins forward/adjoint lithography engine.

    Parameters
    ----------
    config:
        Lithography configuration; defaults to :meth:`LithoConfig.paper`
        when no kernel set is injected.
    kernels:
        Optional prebuilt :class:`KernelSet`; its config becomes the
        engine's config (and must match ``config`` when both are given).
    precision:
        ``"f64"`` (default) or ``"f32"``; ``None`` consults the
        ``REPRO_PRECISION`` environment variable.  f32 engines compute
        spectra, fields and the resist in single precision.
    conditions:
        Optional :class:`~repro.litho.conditions.ConditionSet` of
        (defocus, dose) process corners served by the ``condition_*``
        methods.  Defaults to the single nominal corner of ``config``;
        the corner kernel tensors are built lazily on first use, so
        nominal engines pay nothing.  The nominal methods (``aerial``,
        ``litho_error``, ...) always evaluate the engine's own config
        regardless of ``conditions``.

    backend:
        :class:`~repro.backend.ArrayBackend` (or backend name) the
        engine computes on; ``None`` consults ``REPRO_BACKEND`` and
        defaults to the numpy reference backend, which is bit-identical
        to the pre-seam inline numpy code.  Non-host backends (cupy)
        accept host or device masks and return device arrays
        (``engine.backend.to_numpy`` brings results back).
    tuning:
        Optional :class:`~repro.backend.autotune.EngineTuning`
        overriding the chunk/block heuristics; ``None`` consults the
        ``REPRO_AUTOTUNE`` preset file (unset keeps the built-in
        heuristics).  ``passband_block=1`` (the default) preserves the
        historic per-kernel loop bit-exactly; larger blocks stack
        kernels into batched GEMMs (~1e-12 parity, tuned per hardware).

    All mask-consuming methods accept either a single ``(H, W)`` array
    or a batch ``(N, H, W)`` and return results of matching rank; error
    terms come back as a ``float`` for single masks and an ``(N,)``
    array for batches.  The ``condition_*`` methods add a corner axis
    ``C`` directly after the batch axis (or in front, for single
    masks).
    """

    def __init__(self, config: Optional[LithoConfig] = None,
                 kernels: Optional[KernelSet] = None,
                 precision: Optional[str] = None,
                 conditions: Optional[ConditionSet] = None,
                 backend: Optional[Union[str, ArrayBackend]] = None,
                 tuning: Optional[EngineTuning] = None):
        if kernels is None:
            config = config or LithoConfig.paper()
            kernels = build_kernels(config)
        elif config is not None and kernels.config != config:
            raise ValueError("injected kernels were built for a different config")
        self.config = kernels.config
        self.kernels = kernels
        self.precision = resolve_precision(precision)
        rdtype, cdtype = PRECISION_DTYPES[self.precision]
        self._rdtype, self._cdtype = rdtype, cdtype
        self.backend = resolve_backend(backend)
        # The backend's array module: allocations and explicit array
        # constructors route through it; elementwise math on
        # backend-native arrays dispatches via NEP-18 unchanged.
        self._xp = self.backend.xp

        freq = kernels.freq_kernels
        adjoint = kernels.flipped()
        self._weights = kernels.weights.astype(rdtype)

        # Passband support: the frequency rows/columns where any kernel
        # is nonzero.  Everything outside is identically zero (pupil
        # cutoff), so transforms restricted to this block are exact.
        grid = kernels.grid
        rows = np.where(np.any(freq != 0, axis=(0, 2)))[0]
        cols = np.where(np.any(freq != 0, axis=(0, 1)))[0]
        arows = np.where(np.any(adjoint != 0, axis=(0, 2)))[0]
        acols = np.where(np.any(adjoint != 0, axis=(0, 1)))[0]
        self._rows, self._cols = rows, cols
        self._freq_cc = np.ascontiguousarray(
            freq[:, rows[:, None], cols[None, :]], dtype=cdtype)
        # Adjoint kernels with the Eq. 14 factor ``2 w_k`` folded in, so
        # the backward loop is a single complex multiply per kernel.
        self._adj_cc = np.ascontiguousarray(
            (2.0 * kernels.weights)[:, None, None]
            * adjoint[:, arows[:, None], acols[None, :]], dtype=cdtype)

        # DFT factor matrices restricted to the passband.  ``spec_row @
        # M @ spec_col`` evaluates the forward 2-D DFT of a real mask
        # only at the (rows x cols) kernel support; ``fields = ifft_row
        # @ (P @ ifft_col)`` is the inverse 2-D DFT of a spectrum P
        # supported there; the ``fft_*`` pair evaluates a forward DFT
        # only at the adjoint support, and ``grad_*`` inverts from that
        # support back to the full grid.
        x = np.arange(grid)
        self._spec_row = _dft_factor(rows, x, -1, 1.0, grid, cdtype)
        self._spec_col = _dft_factor(x, cols, -1, 1.0, grid, cdtype)
        self._ifft_row = _dft_factor(x, rows, +1, 1.0 / grid, grid, cdtype)
        self._ifft_col = _dft_factor(cols, x, +1, 1.0 / grid, grid, cdtype)
        self._fft_row = _dft_factor(arows, x, -1, 1.0, grid, cdtype)
        self._fft_col = _dft_factor(x, acols, -1, 1.0, grid, cdtype)
        self._grad_row = _dft_factor(x, arows, +1, 1.0 / grid, grid, cdtype)
        self._grad_col = _dft_factor(acols, x, +1, 1.0 / grid, grid, cdtype)

        # Kernel/DFT constants live on the backend device (identity —
        # same objects — for the numpy reference backend).
        for attr in ("_freq_cc", "_adj_cc", "_weights", "_spec_row",
                     "_spec_col", "_ifft_row", "_ifft_col", "_fft_row",
                     "_fft_col", "_grad_row", "_grad_col"):
            setattr(self, attr, self.backend.asarray(getattr(self, attr)))

        # Batched-gradient chunk size: cap the per-chunk field tensor
        # at ~8 MB so it stays cache-resident (see _forward) — unless a
        # tuning (explicit or from the REPRO_AUTOTUNE preset file)
        # overrides it for this hardware.
        if tuning is None:
            tuning = env_tuning(self.backend.name, self.precision, grid)
        self.tuning = tuning if tuning is not None else EngineTuning()
        self._passband_block = max(1, int(self.tuning.passband_block))
        bytes_per_sample = len(self._weights) * grid * grid * cdtype.itemsize
        heuristic_chunk = max(1, (8 << 20) // bytes_per_sample)
        self._gradient_chunk = (int(self.tuning.batch_chunk)
                                if self.tuning.batch_chunk
                                else heuristic_chunk)

        if conditions is None:
            conditions = ConditionSet.nominal(
                defocus=self.config.optics.defocus)
        elif not isinstance(conditions, ConditionSet):
            raise TypeError(
                f"conditions must be a ConditionSet, got {conditions!r}")
        self.conditions = conditions
        self._condition_stack: Optional[_ConditionStack] = None

        self.workspace = Workspace(backend=self.backend)
        self.metrics = MetricsRegistry()
        self.stats = EngineStats(self.metrics)

    # ------------------------------------------------------------------
    @classmethod
    def for_kernels(cls, kernels: KernelSet,
                    precision: Optional[str] = None,
                    backend: Optional[Union[str, ArrayBackend]] = None
                    ) -> "LithoEngine":
        """Shared engine for a kernel set (memoized per
        (precision, backend) on the instance)."""
        precision = resolve_precision(precision)
        be = resolve_backend(backend)
        engines = kernels.__dict__.get("_engines")
        if engines is None:
            engines = {}
            object.__setattr__(kernels, "_engines", engines)
        key = (precision, be.name)
        engine = engines.get(key)
        if engine is None:
            engine = cls(kernels=kernels, precision=precision, backend=be)
            engines[key] = engine
        return engine

    @classmethod
    def for_conditions(cls, kernels: KernelSet, conditions: ConditionSet,
                       precision: Optional[str] = None,
                       backend: Optional[Union[str, ArrayBackend]] = None
                       ) -> "LithoEngine":
        """Shared engine serving a condition stack (memoized per
        (conditions, precision) on the nominal kernel set).

        A single-nominal-corner stack *is* the plain engine: this
        returns the :meth:`for_kernels` instance, so C=1 results are
        bit-exact with the current nominal engine by construction.
        """
        if conditions.is_single_nominal(kernels.config.optics.defocus):
            return cls.for_kernels(kernels, precision, backend)
        precision = resolve_precision(precision)
        be = resolve_backend(backend)
        engines = kernels.__dict__.get("_condition_engines")
        if engines is None:
            engines = {}
            object.__setattr__(kernels, "_condition_engines", engines)
        key = (conditions, precision, be.name)
        engine = engines.get(key)
        if engine is None:
            engine = cls(kernels=kernels, precision=precision,
                         conditions=conditions, backend=be)
            engines[key] = engine
        return engine

    @property
    def grid(self) -> int:
        return self.kernels.grid

    @property
    def passband_shape(self) -> Tuple[Tuple[int, int], Tuple[int, int]]:
        """``((rows, cols), (adjoint_rows, adjoint_cols))`` passband
        support sizes — the shapes the autotuner's FLOP model scores."""
        return ((len(self._rows), len(self._cols)),
                tuple(self._adj_cc.shape[1:]))

    @property
    def threshold(self) -> float:
        return self.config.threshold

    # ------------------------------------------------------------------
    def _as_batch(self, masks: np.ndarray) -> Tuple[np.ndarray, bool]:
        """Promote a mask or mask stack to ``(N, grid, grid)``."""
        masks = self.backend.asarray(masks)
        if masks.dtype != self._rdtype:
            masks = masks.astype(self._rdtype)
        single = masks.ndim == 2
        if single:
            masks = masks[None]
        if masks.ndim != 3 or masks.shape[-2] != masks.shape[-1]:
            raise ValueError(
                "mask must be square 2-D or a square (N, H, W) batch, got "
                f"shape {masks.shape if not single else masks.shape[1:]}")
        if masks.shape[-1] != self.grid:
            raise ValueError(
                f"mask grid {masks.shape[-1]} != kernel grid {self.grid}")
        return masks, single

    def _as_targets(self, targets: np.ndarray) -> np.ndarray:
        targets = self.backend.asarray(targets)
        if targets.dtype != self._rdtype:
            targets = targets.astype(self._rdtype)
        if targets.shape[-2:] != (self.grid,) * 2:
            raise ValueError(
                f"target shape {targets.shape} does not match grid {self.grid}")
        return targets

    def _compact_spectrum(self, batch: np.ndarray,
                          spectrum: Optional[np.ndarray] = None) -> np.ndarray:
        """Mask spectrum evaluated on the kernel passband, ``(N, R, C)``.

        Without a precomputed full spectrum this is two thin complex
        matmuls (the DFT restricted to the support), run on workspace
        buffers — no full-grid FFT is ever materialized.
        """
        ws = self.workspace
        n, grid = batch.shape[0], self.grid
        n_rows, n_cols = len(self._rows), len(self._cols)
        if spectrum is not None:
            return self.backend.ascontiguousarray(
                spectrum[:, self._rows[:, None], self._cols[None, :]],
                dtype=self._cdtype)
        with trace.span("litho.spectrum", masks=n):
            complex_batch = ws.get("spec.batch", (n, grid, grid),
                                   self._cdtype)
            complex_batch[...] = batch
            partial = self.backend.matmul(
                self._spec_row, complex_batch,
                out=ws.get("spec.partial", (n, n_rows, grid), self._cdtype))
            return self.backend.matmul(
                partial, self._spec_col,
                out=ws.get("spec.compact", (n, n_rows, n_cols),
                           self._cdtype))

    def _field_k(self, compact: np.ndarray, k: int,
                 out: Optional[np.ndarray] = None) -> np.ndarray:
        """Coherent field of kernel ``k`` via the passband inverse DFT."""
        return self.backend.matmul(
            self._ifft_row,
            (compact * self._freq_cc[k]) @ self._ifft_col,
            out=out)

    def _forward(self, batch: np.ndarray, dose: float, keep_fields: bool,
                 spectrum: Optional[np.ndarray] = None
                 ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Public forward pipeline: ``_forward_impl`` plus accounting.

        Every execution bumps the ``forward_*`` stats and opens a
        ``litho.forward`` span; the adjoint path calls
        :meth:`_forward_impl` directly so its nested forward work is
        attributed to ``gradient_*`` instead of being double-counted.
        """
        started = time.perf_counter()
        with trace.span("litho.forward", masks=batch.shape[0]):
            intensity, fields = self._forward_impl(batch, dose, keep_fields,
                                                   spectrum)
        self.stats.record_forward(batch.shape[0],
                                  time.perf_counter() - started)
        return intensity, fields

    def _forward_impl(self, batch: np.ndarray, dose: float,
                      keep_fields: bool,
                      spectrum: Optional[np.ndarray] = None,
                      ws: Optional[Workspace] = None
                      ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Fused aerial-intensity loop over kernels (no accounting).

        Returns ``(intensity, fields)`` with fields in ``(K, N, H, W)``
        layout (contiguous per kernel) or ``None`` when not requested.
        Looping keeps the per-kernel working set cache-resident.

        ``ws`` opts the *escaping* outputs (intensity, fields) into the
        workspace arena — pass it only from call sites that consume
        both before the next engine call (the adjoint path).  Public
        paths leave it ``None`` so returned arrays are freshly owned;
        non-escaping scratch always comes from the engine workspace.
        """
        compact = self._compact_spectrum(batch, spectrum)
        n, grid = batch.shape[0], self.grid
        num_kernels = len(self._weights)
        if keep_fields:
            shape = (num_kernels, n, grid, grid)
            fields = (ws.get("fwd.fields", shape, self._cdtype)
                      if ws is not None
                      else self._xp.empty(shape, dtype=self._cdtype))
        else:
            fields = None
        if ws is not None:
            intensity = ws.zeros("fwd.intensity", (n, grid, grid),
                                 self._rdtype)
        else:
            intensity = self._xp.zeros((n, grid, grid), dtype=self._rdtype)
        block = self._passband_block
        if block <= 1:
            scratch = self.workspace.get("fwd.scratch", (n, grid, grid),
                                         self._cdtype)
            for k in range(num_kernels):
                out = fields[k] if keep_fields else scratch
                field = self._field_k(compact, k, out=out)
                intensity += self._weights[k] * (field.real ** 2 +
                                                 field.imag ** 2)
        else:
            # Tuned passband blocking: stack ``block`` kernels into one
            # batched matmul pair — fewer, bigger GEMMs for threaded
            # BLAS / device backends.  The intensity accumulation keeps
            # the exact per-kernel order; only the GEMM granularity
            # changes (parity ~1e-12 vs the block=1 reference).
            arena = self.workspace
            n_rows, n_cols = self._freq_cc.shape[1:]
            for k0 in range(0, num_kernels, block):
                k1 = min(k0 + block, num_kernels)
                b = k1 - k0
                prod = arena.get(("fwd.block.prod", b),
                                 (b, n, n_rows, n_cols), self._cdtype)
                np.multiply(self._freq_cc[k0:k1, None], compact[None],
                            out=prod)
                partial = self.backend.matmul(
                    self._ifft_row, prod,
                    out=arena.get(("fwd.block.partial", b),
                                  (b, n, grid, n_cols), self._cdtype))
                if keep_fields:
                    block_fields = fields[k0:k1]
                else:
                    block_fields = arena.get(("fwd.block.fields", b),
                                             (b, n, grid, grid),
                                             self._cdtype)
                self.backend.matmul(partial, self._ifft_col,
                                    out=block_fields)
                for j in range(b):
                    field = block_fields[j]
                    intensity += self._weights[k0 + j] * (
                        field.real ** 2 + field.imag ** 2)
        if dose != 1.0:
            intensity *= dose
        return intensity, fields

    def _fields(self, batch: np.ndarray,
                spectrum: Optional[np.ndarray] = None) -> np.ndarray:
        """Coherent fields ``M (x) h_k``, shaped ``(N, K, grid, grid)``."""
        compact = self._compact_spectrum(batch, spectrum)
        num_kernels = len(self._weights)
        stacked = self._xp.empty((num_kernels,) + batch.shape,
                                 dtype=self._cdtype)
        for k in range(num_kernels):
            self._field_k(compact, k, out=stacked[k])
        return stacked.transpose(1, 0, 2, 3)

    # ------------------------------------------------------------------
    # Forward model
    # ------------------------------------------------------------------
    def spectrum(self, mask: np.ndarray) -> np.ndarray:
        """Full FFT of a mask or mask batch (rfft2 + Hermitian expand).

        A host-side reference path: the full-grid spectrum is computed
        with numpy regardless of backend (the hot paths never call it —
        they evaluate the passband directly via matmul-DFTs).
        """
        batch, single = self._as_batch(mask)
        full = real_spectrum(self.backend.to_numpy(batch))
        return full[0] if single else full

    def fields(self, mask: np.ndarray,
               spectrum: Optional[np.ndarray] = None) -> np.ndarray:
        """Coherent fields per kernel: ``(K, H, W)`` or ``(N, K, H, W)``."""
        batch, single = self._as_batch(mask)
        if spectrum is not None and spectrum.ndim == 2:
            spectrum = spectrum[None]
        fields = self._fields(batch, spectrum)
        return fields[0] if single else fields

    def aerial(self, mask: np.ndarray, dose: float = 1.0) -> np.ndarray:
        """Aerial image (Eq. 2), scaled by the exposure ``dose``."""
        batch, single = self._as_batch(mask)
        intensity, _ = self._forward(batch, dose, keep_fields=False)
        return intensity[0] if single else intensity

    def aerial_and_fields(self, mask: np.ndarray, dose: float = 1.0
                          ) -> Tuple[np.ndarray, np.ndarray]:
        """``(intensity, fields)`` sharing one FFT of the mask."""
        batch, single = self._as_batch(mask)
        intensity, stacked = self._forward(batch, dose, keep_fields=True)
        fields = stacked.transpose(1, 0, 2, 3)
        if single:
            return intensity[0], fields[0]
        return intensity, fields

    def wafer(self, mask: np.ndarray, dose: float = 1.0) -> np.ndarray:
        """Binary wafer image under the hard-threshold resist (Eq. 3)."""
        return hard_resist(self.aerial(mask, dose=dose), self.threshold)

    def relaxed_wafer(self, mask: np.ndarray, dose: float = 1.0,
                      resist_steepness: Optional[float] = None) -> np.ndarray:
        """Differentiable wafer image under the sigmoid resist (Eq. 12)."""
        steepness = resist_steepness or self.config.resist_steepness
        return _stable_sigmoid(
            steepness * (self.aerial(mask, dose=dose) - self.threshold))

    def litho_error(self, mask: np.ndarray, target: np.ndarray,
                    relaxed: bool = False, dose: float = 1.0) -> ArrayOrScalar:
        """Squared L2 litho error ``||Z_t - Z||^2`` (Eq. 11) per mask."""
        batch, single = self._as_batch(mask)
        targets = self._as_targets(target)
        wafer = (self.relaxed_wafer(batch, dose=dose) if relaxed
                 else self.wafer(batch, dose=dose))
        diff = wafer - targets
        errors = np.sum(diff * diff, axis=(-2, -1))
        return float(errors[0]) if single else errors

    def discrete_l2(self, mask: np.ndarray, target: np.ndarray,
                    dose: float = 1.0) -> ArrayOrScalar:
        """Discrete squared-L2 (Definition 1) of hard-resist wafers."""
        return self.litho_error(mask, target, relaxed=False, dose=dose)

    # ------------------------------------------------------------------
    # Adjoint model (Eq. 14)
    # ------------------------------------------------------------------
    def error_and_gradient_wrt_mask(
            self, mask_relaxed: np.ndarray, target: np.ndarray,
            threshold: Optional[float] = None,
            resist_steepness: Optional[float] = None,
            dose: float = 1.0) -> Tuple[ArrayOrScalar, np.ndarray]:
        """Relaxed litho error and gradient w.r.t. the relaxed mask.

        This is the inner term of Eq. 14 — the quantity Algorithm 2
        back-propagates into the generator — computed for the whole
        batch in one pipeline.  The adjoint sum over kernels is
        accumulated on the flipped kernels' passband support, so the
        backward pass never evaluates a frequency bin the kernels
        cannot touch; one small inverse DFT expands the accumulated
        spectrum back to the mask grid.
        """
        started = time.perf_counter()
        threshold = self.threshold if threshold is None else threshold
        steepness = (self.config.resist_steepness if resist_steepness is None
                     else resist_steepness)
        batch, single = self._as_batch(mask_relaxed)
        targets = self._as_targets(target)
        if targets.ndim == 2:
            targets = np.broadcast_to(targets, batch.shape)

        # Samples are independent, so large batches are processed in
        # chunks sized to keep the per-chunk field tensor cache-resident
        # (~8 MB); past that point batching degrades on one core.
        with trace.span("litho.adjoint", masks=batch.shape[0]):
            chunk = self._gradient_chunk
            if batch.shape[0] > chunk:
                errors = self._xp.empty(batch.shape[0], dtype=self._rdtype)
                grads = self._xp.empty(batch.shape, dtype=self._rdtype)
                for i in range(0, batch.shape[0], chunk):
                    errors[i:i + chunk], grads[i:i + chunk] = \
                        self._gradient_chunk_wrt_mask(
                            batch[i:i + chunk], targets[i:i + chunk],
                            threshold, steepness, dose)
                self.stats.record_gradient(batch.shape[0],
                                           time.perf_counter() - started)
                return errors, grads
            errors, grads = self._gradient_chunk_wrt_mask(
                batch, targets, threshold, steepness, dose)
        self.stats.record_gradient(batch.shape[0],
                                   time.perf_counter() - started)
        if single:
            return float(errors[0]), grads[0]
        return errors, grads

    def _gradient_chunk_wrt_mask(
            self, batch: np.ndarray, targets: np.ndarray, threshold: float,
            steepness: float, dose: float) -> Tuple[np.ndarray, np.ndarray]:
        ws = self.workspace
        intensity, fields = self._forward_impl(batch, dose, keep_fields=True,
                                               ws=ws)
        wafer = _stable_sigmoid(steepness * (intensity - threshold))
        diff = wafer - targets
        errors = np.sum(diff * diff, axis=(-2, -1))

        # dE/dI, including the resist sigmoid slope and dose scaling.
        grad_intensity = 2.0 * steepness * diff * wafer * (1.0 - wafer)
        if dose != 1.0:
            grad_intensity = grad_intensity * dose

        # Adjoint push through every coherent system: transform
        # ``dE/dI * conj(field_k)`` only onto the flipped kernel's
        # passband, multiply there (``_adj_cc`` carries the ``2 w_k``
        # factor), and accumulate over k.  All intermediates live in
        # the workspace arena; only ``errors``/``grad`` escape.
        n, grid = batch.shape[0], self.grid
        n_arows, n_acols = self._adj_cc.shape[1:]
        accumulated = ws.zeros("adj.acc", (n, n_arows, n_acols),
                               self._cdtype)
        block = self._passband_block
        if block <= 1:
            weighted = ws.get("adj.weighted", (n, grid, grid), self._cdtype)
            partial = ws.get("adj.partial", (n, n_arows, grid), self._cdtype)
            spectrum_k = ws.get("adj.spectrum", (n, n_arows, n_acols),
                                self._cdtype)
            for k in range(len(self._weights)):
                self.backend.conjugate(fields[k], out=weighted)
                weighted *= grad_intensity
                self.backend.matmul(self._fft_row, weighted, out=partial)
                self.backend.matmul(partial, self._fft_col, out=spectrum_k)
                spectrum_k *= self._adj_cc[k]
                accumulated += spectrum_k
        else:
            # Tuned passband blocking (see _forward_impl): the kernel
            # sum keeps its exact sequential order per block, only the
            # DFT matmuls are batched.
            num_kernels = len(self._weights)
            for k0 in range(0, num_kernels, block):
                k1 = min(k0 + block, num_kernels)
                b = k1 - k0
                weighted = ws.get(("adj.block.weighted", b),
                                  (b, n, grid, grid), self._cdtype)
                self.backend.conjugate(fields[k0:k1], out=weighted)
                weighted *= grad_intensity
                partial = self.backend.matmul(
                    self._fft_row, weighted,
                    out=ws.get(("adj.block.partial", b),
                               (b, n, n_arows, grid), self._cdtype))
                spectrum_b = self.backend.matmul(
                    partial, self._fft_col,
                    out=ws.get(("adj.block.spectrum", b),
                               (b, n, n_arows, n_acols), self._cdtype))
                spectrum_b *= self._adj_cc[k0:k1, None]
                for j in range(b):
                    accumulated += spectrum_b[j]
        expanded = self.backend.matmul(
            self._grad_row,
            self.backend.matmul(
                accumulated, self._grad_col,
                out=ws.get("adj.expand", (n, n_arows, grid),
                           self._cdtype)),
            out=ws.get("adj.grad", (n, grid, grid), self._cdtype))
        # ``.real`` is a view into the workspace buffer — copy so the
        # returned gradient owns its memory.
        grad = self._xp.array(expanded.real, dtype=self._rdtype)
        return errors, grad

    def error_and_gradient(
            self, mask_params: np.ndarray, target: np.ndarray,
            threshold: Optional[float] = None,
            resist_steepness: Optional[float] = None,
            mask_steepness: Optional[float] = None,
            dose: float = 1.0) -> Tuple[ArrayOrScalar, np.ndarray]:
        """Relaxed litho error and gradient w.r.t. unconstrained ILT
        parameters ``M`` (Eq. 14 in full, including the mask sigmoid)."""
        beta = (self.config.mask_steepness if mask_steepness is None
                else mask_steepness)
        params = self.backend.asarray(mask_params)
        if params.dtype != self._rdtype:
            params = params.astype(self._rdtype)
        relaxed = sigmoid_mask(params, beta)
        error, grad_mb = self.error_and_gradient_wrt_mask(
            relaxed, target, threshold=threshold,
            resist_steepness=resist_steepness, dose=dose)
        grad = beta * relaxed * (1.0 - relaxed) * grad_mb
        return error, grad

    # ------------------------------------------------------------------
    def binarized_score(self, mask_params: np.ndarray, target: np.ndarray,
                        mask_steepness: Optional[float] = None
                        ) -> Tuple[np.ndarray, ArrayOrScalar]:
        """Binarize relaxed parameters and score the hard-resist wafer.

        Returns ``(masks, discrete_l2)`` — the evaluate step both ILT
        optimizers run every few iterations to track the best discrete
        mask (Definition 1).
        """
        beta = (self.config.mask_steepness if mask_steepness is None
                else mask_steepness)
        masks = binarize_mask(sigmoid_mask(
            self.backend.asarray(mask_params, dtype=np.float64), beta))
        return masks, self.discrete_l2(masks, target)

    # ------------------------------------------------------------------
    # Condition stacks (process-window corners)
    # ------------------------------------------------------------------
    @property
    def num_conditions(self) -> int:
        return self.conditions.num_conditions

    @property
    def _nominal_conditions(self) -> bool:
        """True when the stack is the engine's own single nominal corner
        — the C=1 fast path that delegates to the untouched nominal
        methods (bit-exact by construction)."""
        return self.conditions.is_single_nominal(self.config.optics.defocus)

    def _kernels_for_defocus(self, defocus: float) -> KernelSet:
        """Kernel set for one defocus plane, through the build caches.

        Defocus lives in ``OpticsConfig`` so :func:`build_kernels`
        serves repeats from its in-process cache and persists new
        planes to the disk kernel cache (``config_hash`` covers
        defocus).
        """
        if defocus == self.config.optics.defocus:
            return self.kernels
        focus_config = replace(
            self.config, optics=replace(self.config.optics,
                                        defocus=float(defocus)))
        return build_kernels(focus_config)

    def _condition(self) -> _ConditionStack:
        """The lazily-built corner tensor stack."""
        if self._condition_stack is None:
            groups = self.conditions.defocus_groups()
            kernel_sets = [self._kernels_for_defocus(defocus)
                           for defocus, _ in groups]
            group_of = np.empty(self.num_conditions, dtype=int)
            for g, (_, indices) in enumerate(groups):
                group_of[list(indices)] = g
            stack = _ConditionStack(
                self.conditions, kernel_sets, group_of,
                self._rdtype, self._cdtype)
            # Corner kernel tensors and DFT factors move to the
            # backend device (identity for numpy); per-corner scalars
            # (weights, doses) and the group index stay host-side.
            for attr in ("freq_cc", "adj_cc", "lam", "spec_row",
                         "spec_col", "ifft_row", "ifft_col", "fft_row",
                         "fft_col", "grad_row", "grad_col"):
                setattr(stack, attr, self.backend.asarray(
                    getattr(stack, attr)))
            self._condition_stack = stack
        return self._condition_stack

    def _condition_compact_spectrum(self, batch: np.ndarray) -> np.ndarray:
        """Mask spectrum on the condition stack's union passband.

        Condition-independent: defocus is a pupil phase and dose an
        intensity scale, so one spectrum serves every corner.
        """
        cond = self._condition()
        ws = self.workspace
        n, grid = batch.shape[0], self.grid
        n_rows = cond.spec_row.shape[0]
        n_cols = cond.spec_col.shape[1]
        with trace.span("litho.spectrum", masks=n):
            complex_batch = ws.get("cond.spec.batch", (n, grid, grid),
                                   self._cdtype)
            complex_batch[...] = batch
            partial = self.backend.matmul(
                cond.spec_row, complex_batch,
                out=ws.get("cond.spec.partial", (n, n_rows, grid),
                           self._cdtype))
            return self.backend.matmul(
                partial, cond.spec_col,
                out=ws.get("cond.spec.compact", (n, n_rows, n_cols),
                           self._cdtype))

    def _condition_forward_impl(self, batch: np.ndarray, keep_fields: bool
                                ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Fused forward over the corner kernel stack (no accounting).

        Returns ``(group_intensity, fields)``: per-defocus-group aerial
        intensities ``(F, N, H, W)`` — corners sharing a defocus share
        fields, their doses are applied by the callers as intensity
        scales — and fields ``(J, N, H, W)`` over all stacked kernels
        when requested.  Both live in the workspace arena and must be
        consumed before the next engine call.
        """
        cond = self._condition()
        compact = self._condition_compact_spectrum(batch)
        ws = self.workspace
        n, grid = batch.shape[0], self.grid
        total_kernels = len(cond.weights)
        if keep_fields:
            fields = ws.get("cond.fields", (total_kernels, n, grid, grid),
                            self._cdtype)
        else:
            fields = None
        scratch = ws.get("cond.scratch", (n, grid, grid), self._cdtype)
        group_intensity = ws.zeros(
            "cond.intensity", (cond.num_groups, n, grid, grid), self._rdtype)
        for g, group in enumerate(cond.group_slices):
            for j in range(group.start, group.stop):
                out = fields[j] if keep_fields else scratch
                field = self.backend.matmul(
                    cond.ifft_row, (compact * cond.freq_cc[j]) @ cond.ifft_col,
                    out=out)
                group_intensity[g] += cond.weights[j] * (field.real ** 2 +
                                                         field.imag ** 2)
        return group_intensity, fields

    def condition_aerial(self, mask: np.ndarray) -> np.ndarray:
        """Aerial images at every corner: ``(C, H, W)`` or ``(N, C, H, W)``.

        Corner ordering follows ``self.conditions.corners``.
        """
        batch, single = self._as_batch(mask)
        if self._nominal_conditions:
            intensity = self.aerial(batch)[:, None]
            return intensity[0] if single else intensity
        cond = self._condition()
        n, grid = batch.shape[0], self.grid
        started = time.perf_counter()
        with trace.span("litho.forward", masks=n,
                        corners=self.num_conditions):
            group_intensity, _ = self._condition_forward_impl(
                batch, keep_fields=False)
            out = self._xp.empty((n, self.num_conditions, grid, grid),
                                 dtype=self._rdtype)
            for c in range(self.num_conditions):
                source = group_intensity[cond.group_of[c]]
                if cond.doses[c] != 1.0:
                    np.multiply(source, cond.doses[c], out=out[:, c])
                else:
                    out[:, c] = source
        self.stats.record_forward(n, time.perf_counter() - started)
        return out[0] if single else out

    def condition_wafers(self, mask: np.ndarray) -> np.ndarray:
        """Hard-resist wafers at every corner (Eq. 3 per corner)."""
        return hard_resist(self.condition_aerial(mask), self.threshold)

    def condition_relaxed_wafers(self, mask: np.ndarray,
                                 resist_steepness: Optional[float] = None
                                 ) -> np.ndarray:
        """Sigmoid-resist wafers at every corner (Eq. 12 per corner)."""
        steepness = resist_steepness or self.config.resist_steepness
        return _stable_sigmoid(
            steepness * (self.condition_aerial(mask) - self.threshold))

    def condition_litho_errors(self, mask: np.ndarray, target: np.ndarray,
                               relaxed: bool = False) -> np.ndarray:
        """Per-corner litho errors ``(C,)`` or ``(N, C)`` (Eq. 11)."""
        batch, single = self._as_batch(mask)
        targets = self._as_targets(target)
        wafers = (self.condition_relaxed_wafers(batch) if relaxed
                  else self.condition_wafers(batch))
        diff = wafers - (targets[..., None, :, :]
                         if targets.ndim == 3 else targets)
        errors = np.sum(diff * diff, axis=(-2, -1))
        return errors[0] if single else errors

    def condition_error_and_gradient_wrt_mask(
            self, mask_relaxed: np.ndarray, target: np.ndarray,
            objective: str = "weighted",
            threshold: Optional[float] = None,
            resist_steepness: Optional[float] = None
            ) -> Tuple[ArrayOrScalar, np.ndarray]:
        """Corner-aggregated litho error and mask gradient (Eq. 14).

        ``objective="weighted"`` minimizes the corner-weight average
        ``E = sum_c lam_c E_c`` (lam normalized); ``"worst"`` follows
        the per-sample worst corner (a subgradient of ``max_c E_c``).
        Both share the nominal adjoint: per-corner upstream intensity
        gradients are combined per defocus group, pushed through the
        stacked flipped kernels, and expanded once.
        """
        if objective not in ("weighted", "worst"):
            raise ValueError(
                f"objective must be 'weighted' or 'worst', got {objective!r}")
        if self._nominal_conditions:
            return self.error_and_gradient_wrt_mask(
                mask_relaxed, target, threshold=threshold,
                resist_steepness=resist_steepness)
        started = time.perf_counter()
        threshold = self.threshold if threshold is None else threshold
        steepness = (self.config.resist_steepness if resist_steepness is None
                     else resist_steepness)
        batch, single = self._as_batch(mask_relaxed)
        targets = self._as_targets(target)
        if targets.ndim == 2:
            targets = np.broadcast_to(targets, batch.shape)

        with trace.span("litho.adjoint", masks=batch.shape[0],
                        corners=self.num_conditions):
            chunk = (int(self.tuning.batch_chunk) if self.tuning.batch_chunk
                     else self._condition().gradient_chunk)
            if batch.shape[0] > chunk:
                errors = self._xp.empty(batch.shape[0], dtype=self._rdtype)
                grads = self._xp.empty(batch.shape, dtype=self._rdtype)
                for i in range(0, batch.shape[0], chunk):
                    errors[i:i + chunk], grads[i:i + chunk] = \
                        self._condition_gradient_chunk(
                            batch[i:i + chunk], targets[i:i + chunk],
                            threshold, steepness, objective)
            else:
                errors, grads = self._condition_gradient_chunk(
                    batch, targets, threshold, steepness, objective)
        self.stats.record_gradient(batch.shape[0],
                                   time.perf_counter() - started)
        if single:
            return float(errors[0]), grads[0]
        return errors, grads

    def _condition_gradient_chunk(
            self, batch: np.ndarray, targets: np.ndarray, threshold: float,
            steepness: float, objective: str
            ) -> Tuple[np.ndarray, np.ndarray]:
        cond = self._condition()
        ws = self.workspace
        group_intensity, fields = self._condition_forward_impl(
            batch, keep_fields=True)
        n, grid = batch.shape[0], self.grid
        num_corners = self.num_conditions

        # Per-corner errors and upstream dE_c/dI (resist slope and the
        # dose chain-rule factor folded in, matching the nominal path).
        errors = self._xp.empty((n, num_corners), dtype=self._rdtype)
        grad_intensity = ws.get(
            "cond.grad_i", (num_corners, n, grid, grid), self._rdtype)
        for c in range(num_corners):
            intensity = group_intensity[cond.group_of[c]]
            if cond.doses[c] != 1.0:
                intensity = intensity * cond.doses[c]
            wafer = _stable_sigmoid(steepness * (intensity - threshold))
            diff = wafer - targets
            errors[:, c] = np.sum(diff * diff, axis=(-2, -1))
            gi = 2.0 * steepness * diff * wafer * (1.0 - wafer)
            if cond.doses[c] != 1.0:
                gi *= cond.doses[c]
            grad_intensity[c] = gi

        # Aggregation coefficients per (sample, corner).
        if objective == "weighted":
            coef = np.broadcast_to(cond.lam, (n, num_corners))
            aggregated = errors @ cond.lam
        else:  # worst corner, per sample
            worst = np.argmax(errors, axis=1)
            coef = self._xp.zeros((n, num_corners), dtype=self._rdtype)
            coef[self._xp.arange(n), worst] = 1.0
            aggregated = errors[self._xp.arange(n), worst]

        # Combine corner upstreams per defocus group, then run the
        # standard adjoint over the whole stacked kernel tensor.
        combined = ws.zeros("cond.combined",
                            (cond.num_groups, n, grid, grid), self._rdtype)
        for c in range(num_corners):
            combined[cond.group_of[c]] += (coef[:, c, None, None]
                                           * grad_intensity[c])

        n_arows, n_acols = cond.adj_cc.shape[1:]
        accumulated = ws.zeros("cond.adj.acc", (n, n_arows, n_acols),
                               self._cdtype)
        weighted = ws.get("cond.adj.weighted", (n, grid, grid), self._cdtype)
        partial = ws.get("cond.adj.partial", (n, n_arows, grid), self._cdtype)
        spectrum_j = ws.get("cond.adj.spectrum", (n, n_arows, n_acols),
                            self._cdtype)
        for g, group in enumerate(cond.group_slices):
            for j in range(group.start, group.stop):
                self.backend.conjugate(fields[j], out=weighted)
                weighted *= combined[g]
                self.backend.matmul(cond.fft_row, weighted, out=partial)
                self.backend.matmul(partial, cond.fft_col, out=spectrum_j)
                spectrum_j *= cond.adj_cc[j]
                accumulated += spectrum_j
        expanded = self.backend.matmul(
            cond.grad_row,
            self.backend.matmul(
                accumulated, cond.grad_col,
                out=ws.get("cond.adj.expand", (n, n_arows, grid),
                           self._cdtype)),
            out=ws.get("cond.adj.grad", (n, grid, grid), self._cdtype))
        grad = self._xp.array(expanded.real, dtype=self._rdtype)
        return self._xp.asarray(aggregated, dtype=self._rdtype), grad

    def condition_error_and_gradient(
            self, mask_params: np.ndarray, target: np.ndarray,
            objective: str = "weighted",
            threshold: Optional[float] = None,
            resist_steepness: Optional[float] = None,
            mask_steepness: Optional[float] = None
            ) -> Tuple[ArrayOrScalar, np.ndarray]:
        """Corner-aggregated error and gradient w.r.t. ILT parameters
        (the full Eq. 14 chain through the mask sigmoid)."""
        beta = (self.config.mask_steepness if mask_steepness is None
                else mask_steepness)
        params = self.backend.asarray(mask_params)
        if params.dtype != self._rdtype:
            params = params.astype(self._rdtype)
        relaxed = sigmoid_mask(params, beta)
        error, grad_mb = self.condition_error_and_gradient_wrt_mask(
            relaxed, target, objective=objective, threshold=threshold,
            resist_steepness=resist_steepness)
        grad = beta * relaxed * (1.0 - relaxed) * grad_mb
        return error, grad
