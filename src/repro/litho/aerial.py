"""Aerial-image formation (Eq. 2 of the paper).

The aerial image of a mask under the coherent decomposition is

    I(x) = sum_k  w_k  | IFFT( FFT(M) * H_k ) (x) |^2 .

Masks are real-valued ``(grid, grid)`` arrays in [0, 1]; intensities are
real nonnegative arrays normalized to clear-field dose 1.0.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .kernels import KernelSet


def mask_spectrum(mask: np.ndarray) -> np.ndarray:
    """FFT of a mask with shape validation."""
    mask = np.asarray(mask, dtype=float)
    if mask.ndim != 2 or mask.shape[0] != mask.shape[1]:
        raise ValueError(f"mask must be square 2-D, got shape {mask.shape}")
    return np.fft.fft2(mask)


def mask_fields(mask: np.ndarray, kernels: KernelSet,
                spectrum: Optional[np.ndarray] = None) -> np.ndarray:
    """Coherent fields ``M (x) h_k`` for every kernel.

    Returns a complex array ``(N_h, grid, grid)``.  Passing a
    precomputed ``spectrum`` avoids recomputing ``FFT(M)`` when the
    caller needs both fields and the image (the ILT gradient does).
    """
    if mask.shape[-1] != kernels.grid:
        raise ValueError(
            f"mask grid {mask.shape[-1]} != kernel grid {kernels.grid}")
    if spectrum is None:
        spectrum = mask_spectrum(mask)
    return np.fft.ifft2(spectrum[None, :, :] * kernels.freq_kernels, axes=(-2, -1))


def aerial_image(mask: np.ndarray, kernels: KernelSet, dose: float = 1.0) -> np.ndarray:
    """Compute the aerial image of ``mask`` (Eq. 2), scaled by ``dose``.

    ``dose`` models exposure-dose error: the +/-2% corners used for the
    paper's PV-band metric are ``dose=1.02`` and ``dose=0.98``.
    """
    fields = mask_fields(mask, kernels)
    intensity = np.einsum("k,kxy->xy", kernels.weights, np.abs(fields) ** 2)
    if dose != 1.0:
        intensity = intensity * dose
    return intensity


def aerial_image_and_fields(mask: np.ndarray, kernels: KernelSet,
                            dose: float = 1.0):
    """Return ``(intensity, fields)`` sharing one FFT of the mask."""
    fields = mask_fields(mask, kernels)
    intensity = np.einsum("k,kxy->xy", kernels.weights, np.abs(fields) ** 2)
    if dose != 1.0:
        intensity = intensity * dose
    return intensity, fields
