"""Aerial-image formation (Eq. 2 of the paper).

The aerial image of a mask under the coherent decomposition is

    I(x) = sum_k  w_k  | IFFT( FFT(M) * H_k ) (x) |^2 .

Masks are real-valued ``(grid, grid)`` arrays in [0, 1]; intensities are
real nonnegative arrays normalized to clear-field dose 1.0.

These are thin functional facades over the shared
:class:`~repro.litho.engine.LithoEngine` (one engine is memoized per
kernel set), kept for callers that think in terms of a mask plus a
kernel set rather than an engine object.  They accept batched
``(N, grid, grid)`` stacks as well as single masks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .engine import LithoEngine, real_spectrum
from .kernels import KernelSet


def mask_spectrum(mask: np.ndarray) -> np.ndarray:
    """Full FFT of a mask with shape validation.

    Computed with a real-input ``rfft2`` expanded by Hermitian symmetry
    (see :func:`repro.litho.engine.real_spectrum`).
    """
    mask = np.asarray(mask, dtype=float)
    if mask.ndim != 2 or mask.shape[0] != mask.shape[1]:
        raise ValueError(f"mask must be square 2-D, got shape {mask.shape}")
    return real_spectrum(mask)


def mask_fields(mask: np.ndarray, kernels: KernelSet,
                spectrum: Optional[np.ndarray] = None) -> np.ndarray:
    """Coherent fields ``M (x) h_k`` for every kernel.

    Returns a complex array ``(N_h, grid, grid)`` (batched input adds a
    leading axis).  Passing a precomputed ``spectrum`` avoids
    recomputing ``FFT(M)`` when the caller needs both fields and the
    image (the ILT gradient does).
    """
    return LithoEngine.for_kernels(kernels).fields(mask, spectrum=spectrum)


def aerial_image(mask: np.ndarray, kernels: KernelSet, dose: float = 1.0) -> np.ndarray:
    """Compute the aerial image of ``mask`` (Eq. 2), scaled by ``dose``.

    ``dose`` models exposure-dose error: the +/-2% corners used for the
    paper's PV-band metric are ``dose=1.02`` and ``dose=0.98``.
    """
    return LithoEngine.for_kernels(kernels).aerial(mask, dose=dose)


def aerial_image_and_fields(mask: np.ndarray, kernels: KernelSet,
                            dose: float = 1.0):
    """Return ``(intensity, fields)`` sharing one FFT of the mask."""
    return LithoEngine.for_kernels(kernels).aerial_and_fields(mask, dose=dose)
