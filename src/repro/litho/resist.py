"""Photoresist models (Eqs. 3 and 12 of the paper).

Two views of the same threshold resist:

* :func:`hard_resist` — the binary constant-threshold model used for
  *evaluation* (wafer image ``Z`` in the metrics and Table 2);
* :func:`sigmoid_resist` — the relaxed, differentiable model used
  inside ILT and the ILT-guided pre-training (Eq. 12), whose steepness
  ``alpha`` controls how closely it approximates the hard threshold.

The mask-side relaxation (Eq. 13) also lives here as
:func:`sigmoid_mask` since it is the same construction with ``beta``.
"""

from __future__ import annotations

import numpy as np


def hard_resist(intensity: np.ndarray, threshold: float) -> np.ndarray:
    """Binary wafer image: ``Z = 1`` where ``I >= I_th`` (Eq. 3)."""
    return (np.asarray(intensity) >= threshold).astype(float)


def sigmoid_resist(intensity: np.ndarray, threshold: float,
                   steepness: float) -> np.ndarray:
    """Relaxed wafer image ``Z = sigma(alpha * (I - I_th))`` (Eq. 12)."""
    return _stable_sigmoid(steepness * (np.asarray(intensity) - threshold))


def sigmoid_mask(mask_params: np.ndarray, steepness: float) -> np.ndarray:
    """Relaxed mask binarization ``M_b = sigma(beta * M)`` (Eq. 13).

    ``mask_params`` are the unconstrained ILT optimization variables;
    the relaxation keeps pixel values in (0, 1) while remaining
    differentiable.
    """
    return _stable_sigmoid(steepness * np.asarray(mask_params))


def binarize_mask(mask: np.ndarray, level: float = 0.5) -> np.ndarray:
    """Snap a relaxed mask to {0, 1} for final manufacturing output."""
    return (np.asarray(mask) >= level).astype(float)


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Sigmoid without overflow for large-magnitude inputs.

    Preserves float32 input dtype (the engine's f32 precision mode
    flows through here); everything else computes in float64.
    """
    x = np.asarray(x)
    dtype = x.dtype if x.dtype == np.float32 else np.float64
    out = np.empty_like(x, dtype=dtype)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out
