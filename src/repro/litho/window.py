"""Process-window analysis: dose x focus printability matrices.

The paper evaluates process variation through the +/-2% dose band only
(Table 2's PVB column); production flows — and the process-window-aware
OPC of [3-5] the paper cites — characterize masks over a grid of
(dose, defocus) corners.  This module is a thin facade over the
condition-stack interface of :class:`~repro.litho.engine.LithoEngine`:
a dose x focus grid becomes a :class:`~repro.litho.conditions.ConditionSet`
and every corner is evaluated in one batched matmul-DFT pass over the
shared mask spectrum (one kernel stack per focus plane, served from the
kernel caches; dose corners are intensity scales on top).

* :func:`process_window_matrix` — L2 wafer error over a dose x focus
  grid;
* :func:`exposure_latitude` — the dose range keeping the wafer error
  under a tolerance at nominal focus;
* :func:`depth_of_focus` — the focus range keeping it under tolerance
  at nominal dose.

These power the extended process-window example and give downstream
users the standard litho figure-of-merit vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from .conditions import ConditionSet
from .config import LithoConfig
from .engine import LithoEngine
from .kernels import build_kernels


@dataclass(frozen=True)
class ProcessWindow:
    """Printability over a (focus, dose) grid.

    Attributes
    ----------
    doses / defocuses:
        Axis values: relative exposure doses and defocus in nm.
    l2_error:
        Array ``(len(defocuses), len(doses))`` of squared-L2 wafer
        errors against the target.
    """

    doses: Tuple[float, ...]
    defocuses: Tuple[float, ...]
    l2_error: np.ndarray

    def within_tolerance(self, tolerance: float) -> np.ndarray:
        """Boolean pass/fail matrix."""
        return self.l2_error <= tolerance

    def nominal_error(self) -> float:
        """Error at the corner closest to (dose 1.0, focus 0)."""
        di = int(np.argmin(np.abs(np.asarray(self.doses) - 1.0)))
        fi = int(np.argmin(np.abs(np.asarray(self.defocuses))))
        return float(self.l2_error[fi, di])


def process_window_matrix(mask: np.ndarray, target: np.ndarray,
                          config: LithoConfig,
                          doses: Sequence[float] = (0.95, 0.98, 1.0, 1.02, 1.05),
                          defocuses: Sequence[float] = (0.0, 40.0, 80.0),
                          engine: Optional[LithoEngine] = None,
                          ) -> ProcessWindow:
    """Simulate ``mask`` over every (defocus, dose) corner.

    The grid becomes a defocus-major :meth:`ConditionSet.grid` stack
    evaluated by a shared condition engine: one kernel set per focus
    plane (built through the in-process and disk kernel caches) and one
    mask spectrum for all corners.  Pass ``engine`` to reuse a
    condition engine across calls; it must have been built for the
    same corner grid.
    """
    doses = tuple(float(d) for d in doses)
    defocuses = tuple(float(f) for f in defocuses)
    if not doses or not defocuses:
        raise ValueError("need at least one dose and one defocus value")

    conditions = ConditionSet.grid(defocuses=defocuses, doses=doses)
    if engine is None:
        engine = LithoEngine.for_conditions(build_kernels(config), conditions)
    elif engine.conditions != conditions:
        raise ValueError("engine was built for a different corner grid")
    errors = engine.condition_litho_errors(mask, target)
    matrix = np.asarray(errors, dtype=float).reshape(len(defocuses),
                                                     len(doses))
    return ProcessWindow(doses=doses, defocuses=defocuses, l2_error=matrix)


def exposure_latitude(mask: np.ndarray, target: np.ndarray,
                      config: LithoConfig, tolerance: float,
                      dose_span: float = 0.15, steps: int = 31) -> float:
    """Widest contiguous dose interval around 1.0 with error <= tol.

    Returns the interval width (e.g. 0.06 for +/-3%); 0.0 when even the
    nominal dose fails.
    """
    doses = np.linspace(1.0 - dose_span, 1.0 + dose_span, steps)
    window = process_window_matrix(mask, target, config, doses=doses,
                                   defocuses=(config.optics.defocus,))
    passing = window.within_tolerance(tolerance)[0]
    return _widest_interval_around(doses, passing, center=1.0)


def depth_of_focus(mask: np.ndarray, target: np.ndarray,
                   config: LithoConfig, tolerance: float,
                   focus_span: float = 120.0, steps: int = 13) -> float:
    """Widest contiguous defocus interval around 0 with error <= tol."""
    defocuses = np.linspace(-focus_span, focus_span, steps)
    window = process_window_matrix(mask, target, config, doses=(1.0,),
                                   defocuses=defocuses)
    passing = window.within_tolerance(tolerance)[:, 0]
    return _widest_interval_around(defocuses, passing, center=0.0)


def _widest_interval_around(axis: np.ndarray, passing: np.ndarray,
                            center: float) -> float:
    """Length of the contiguous passing run containing ``center``."""
    center_index = int(np.argmin(np.abs(axis - center)))
    if not passing[center_index]:
        return 0.0
    lo = center_index
    while lo > 0 and passing[lo - 1]:
        lo -= 1
    hi = center_index
    while hi < len(axis) - 1 and passing[hi + 1]:
        hi += 1
    return float(axis[hi] - axis[lo])
