"""Configuration of the lithography imaging system.

The paper's litho engine is ``lithosim_v4`` from the ICCAD-2013 CAD
contest: a Hopkins partially-coherent imaging model approximated by its
top ``N_h = 24`` coherent kernels (Eq. 2), followed by a
constant-threshold resist (Eq. 3).  The contest package is not
redistributable, so this reproduction regenerates physically-plausible
kernels from first principles (annular/circular source, ideal circular
pupil) at matched optical settings: 193 nm immersion lithography for the
32 nm M1 node.

All spatial quantities are in nanometres.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class OpticsConfig:
    """Optical system description used to build Hopkins TCC kernels.

    Attributes
    ----------
    wavelength:
        Exposure wavelength in nm (193 nm ArF).
    na:
        Numerical aperture of the projection lens.  1.35 corresponds to
        water-immersion scanners used at the 32 nm node.
    sigma_inner / sigma_outer:
        Partial-coherence factors of the (annular) illumination source as
        fractions of the pupil radius.  ``sigma_inner=0`` gives a
        conventional circular source.
    defocus:
        Defocus in nm applied as a quadratic pupil phase; 0 at nominal
        condition (the paper evaluates at nominal focus only).
    num_kernels:
        Number of coherent kernels kept after the SVD truncation —
        the paper picks ``N_h = 24``.
    source_points:
        Number of source sample points per axis when discretizing the
        illumination; higher is more accurate but slower to build.
    """

    wavelength: float = 193.0
    na: float = 1.35
    sigma_inner: float = 0.5
    sigma_outer: float = 0.8
    defocus: float = 0.0
    num_kernels: int = 24
    source_points: int = 25

    def __post_init__(self):
        if self.wavelength <= 0:
            raise ValueError(f"wavelength must be positive, got {self.wavelength}")
        if self.na <= 0:
            raise ValueError(f"NA must be positive, got {self.na}")
        if not 0.0 <= self.sigma_inner < self.sigma_outer <= 1.0:
            raise ValueError(
                "require 0 <= sigma_inner < sigma_outer <= 1, got "
                f"{self.sigma_inner}, {self.sigma_outer}")
        if self.num_kernels < 1:
            raise ValueError(f"num_kernels must be >= 1, got {self.num_kernels}")
        if self.source_points < 3:
            raise ValueError(f"source_points must be >= 3, got {self.source_points}")

    @property
    def cutoff_frequency(self) -> float:
        """Maximum spatial frequency (1/nm) passed by the partially
        coherent system: ``NA * (1 + sigma_outer) / wavelength``."""
        return self.na * (1.0 + self.sigma_outer) / self.wavelength


@dataclass(frozen=True)
class LithoConfig:
    """Full lithography simulation configuration.

    Attributes
    ----------
    optics:
        Optical system parameters (see :class:`OpticsConfig`).
    grid:
        Simulation raster size in pixels (images are ``grid x grid``).
    pixel_nm:
        Physical size of one raster pixel in nm.  The paper works on
        2048 px clips at 1 nm and pools 8x8 to 256 px at 8 nm; smaller
        grids with coarser pixels preserve the optics as long as
        ``pixel_nm`` stays below the Nyquist limit of the imaging system.
    threshold:
        Resist threshold ``I_th`` relative to the clear-field intensity
        (the intensity of a fully open mask, normalized to 1).
    resist_steepness:
        ``alpha`` of the sigmoid resist relaxation (Eq. 12).
    mask_steepness:
        ``beta`` of the sigmoid mask binarization (Eq. 13).
    dose_variation:
        Fractional dose error for process-variation band evaluation;
        the paper reports PVB under +/-2% dose (0.02).
    """

    optics: OpticsConfig = field(default_factory=OpticsConfig)
    grid: int = 256
    pixel_nm: float = 8.0
    threshold: float = 0.225
    resist_steepness: float = 50.0
    mask_steepness: float = 4.0
    dose_variation: float = 0.02

    def __post_init__(self):
        if self.grid < 8:
            raise ValueError(f"grid must be >= 8, got {self.grid}")
        if self.pixel_nm <= 0:
            raise ValueError(f"pixel_nm must be positive, got {self.pixel_nm}")
        if not 0.0 < self.threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {self.threshold}")
        if self.resist_steepness <= 0 or self.mask_steepness <= 0:
            raise ValueError("steepness parameters must be positive")
        if not 0.0 <= self.dose_variation < 1.0:
            raise ValueError(
                f"dose_variation must be in [0, 1), got {self.dose_variation}")
        nyquist = 0.5 / self.pixel_nm
        if self.optics.cutoff_frequency > nyquist:
            raise ValueError(
                f"pixel size {self.pixel_nm} nm undersamples the optical "
                f"cutoff {self.optics.cutoff_frequency:.4f} 1/nm "
                f"(Nyquist {nyquist:.4f} 1/nm); use a finer pixel")

    @property
    def extent_nm(self) -> float:
        """Physical side length of the simulated clip."""
        return self.grid * self.pixel_nm

    @property
    def pixel_area_nm2(self) -> float:
        return self.pixel_nm * self.pixel_nm

    def with_grid(self, grid: int, pixel_nm: float = None) -> "LithoConfig":
        """Derive a config at a different raster resolution."""
        return replace(self, grid=grid,
                       pixel_nm=self.pixel_nm if pixel_nm is None else pixel_nm)

    @staticmethod
    def paper() -> "LithoConfig":
        """The paper-scale configuration: 256 px network resolution at
        8 nm pixels (2048 px layout pooled 8x8), 24 kernels."""
        return LithoConfig(grid=256, pixel_nm=8.0)

    @staticmethod
    def small(grid: int = 64) -> "LithoConfig":
        """A CPU-friendly configuration preserving the optics; used by
        tests and fast benchmarks."""
        return LithoConfig(grid=grid, pixel_nm=8.0)
