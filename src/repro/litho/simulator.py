"""High-level lithography simulator facade.

:class:`LithoSimulator` bundles the kernel set, aerial imaging and
resist models behind the interface the rest of the package consumes —
the same role ``lithosim_v4`` plays in the paper's experimental flow.

>>> from repro.litho import LithoConfig, LithoSimulator
>>> sim = LithoSimulator(LithoConfig.small(64))
>>> import numpy as np
>>> mask = np.zeros((64, 64)); mask[24:40, 16:48] = 1.0
>>> wafer = sim.wafer_image(mask)
>>> wafer.shape
(64, 64)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .config import LithoConfig
from .engine import LithoEngine
from .kernels import KernelSet, build_kernels
from .resist import hard_resist


@dataclass(frozen=True)
class ProcessCorners:
    """Wafer images at the dose corners used for PV-band evaluation.

    ``outer`` is the over-dose corner (prints larger contours) and
    ``inner`` the under-dose corner; the PV band is their XOR area.
    """

    nominal: np.ndarray
    inner: np.ndarray
    outer: np.ndarray


class LithoSimulator:
    """Forward lithography simulation: mask -> aerial image -> wafer.

    A thin facade over the shared :class:`LithoEngine` — simulators
    built on the same kernel set share one engine (and thus its cached
    adjoint kernel tensors), and every method accepts either a single
    ``(grid, grid)`` mask or a batched ``(N, grid, grid)`` stack.

    Parameters
    ----------
    config:
        Simulation configuration; defaults to the paper-scale
        :meth:`LithoConfig.paper` settings.
    kernels:
        Optionally inject a prebuilt :class:`KernelSet` (tests use this
        to share kernels across simulators).
    engine:
        Optionally inject a prebuilt :class:`LithoEngine` directly; its
        config must match ``config`` when both are given.
    """

    def __init__(self, config: Optional[LithoConfig] = None,
                 kernels: Optional[KernelSet] = None,
                 engine: Optional[LithoEngine] = None):
        if engine is not None:
            if config is not None and engine.config != config:
                raise ValueError(
                    "injected engine was built for a different config")
            if kernels is not None and kernels is not engine.kernels:
                raise ValueError(
                    "pass either kernels or an engine, not conflicting both")
            self.engine = engine
        else:
            config = config or LithoConfig.paper()
            if kernels is not None and kernels.config != config:
                raise ValueError(
                    "injected kernels were built for a different config")
            self.engine = LithoEngine.for_kernels(
                kernels or build_kernels(config))
        self.config = self.engine.config
        self.kernels = self.engine.kernels

    # ------------------------------------------------------------------
    @property
    def grid(self) -> int:
        return self.config.grid

    @property
    def threshold(self) -> float:
        return self.config.threshold

    # ------------------------------------------------------------------
    def aerial(self, mask: np.ndarray, dose: float = 1.0) -> np.ndarray:
        """Aerial image (Eq. 2) scaled by the exposure ``dose``."""
        return self.engine.aerial(mask, dose=dose)

    def aerial_and_fields(self, mask: np.ndarray, dose: float = 1.0
                          ) -> Tuple[np.ndarray, np.ndarray]:
        """Aerial image plus per-kernel coherent fields (for gradients)."""
        return self.engine.aerial_and_fields(mask, dose=dose)

    def wafer_image(self, mask: np.ndarray, dose: float = 1.0) -> np.ndarray:
        """Binary wafer image under the hard-threshold resist (Eq. 3)."""
        return self.engine.wafer(mask, dose=dose)

    def relaxed_wafer(self, mask: np.ndarray, dose: float = 1.0) -> np.ndarray:
        """Differentiable wafer image under the sigmoid resist (Eq. 12)."""
        return self.engine.relaxed_wafer(mask, dose=dose)

    def process_corners(self, mask: np.ndarray) -> ProcessCorners:
        """Wafer images at nominal and +/-dose corners (PV-band inputs).

        One aerial image is computed and rescaled per corner — dose error
        is a pure intensity scaling, so re-imaging is unnecessary.
        """
        intensity = self.aerial(mask)
        dose = self.config.dose_variation
        return ProcessCorners(
            nominal=hard_resist(intensity, self.config.threshold),
            inner=hard_resist(intensity * (1.0 - dose), self.config.threshold),
            outer=hard_resist(intensity * (1.0 + dose), self.config.threshold),
        )

    def litho_error(self, mask: np.ndarray, target: np.ndarray,
                    relaxed: bool = False) -> float:
        """Squared L2 lithography error ``||Z_t - Z||^2`` (Eq. 11).

        Returns a float for a single mask, an ``(N,)`` array per batch.
        """
        return self.engine.litho_error(mask, target, relaxed=relaxed)
