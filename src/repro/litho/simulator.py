"""High-level lithography simulator facade.

:class:`LithoSimulator` bundles the kernel set, aerial imaging and
resist models behind the interface the rest of the package consumes —
the same role ``lithosim_v4`` plays in the paper's experimental flow.

>>> from repro.litho import LithoConfig, LithoSimulator
>>> sim = LithoSimulator(LithoConfig.small(64))
>>> import numpy as np
>>> mask = np.zeros((64, 64)); mask[24:40, 16:48] = 1.0
>>> wafer = sim.wafer_image(mask)
>>> wafer.shape
(64, 64)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .aerial import aerial_image, aerial_image_and_fields
from .config import LithoConfig
from .kernels import KernelSet, build_kernels
from .resist import hard_resist, sigmoid_resist


@dataclass(frozen=True)
class ProcessCorners:
    """Wafer images at the dose corners used for PV-band evaluation.

    ``outer`` is the over-dose corner (prints larger contours) and
    ``inner`` the under-dose corner; the PV band is their XOR area.
    """

    nominal: np.ndarray
    inner: np.ndarray
    outer: np.ndarray


class LithoSimulator:
    """Forward lithography simulation: mask -> aerial image -> wafer.

    Parameters
    ----------
    config:
        Simulation configuration; defaults to the paper-scale
        :meth:`LithoConfig.paper` settings.
    kernels:
        Optionally inject a prebuilt :class:`KernelSet` (tests use this
        to share kernels across simulators).
    """

    def __init__(self, config: Optional[LithoConfig] = None,
                 kernels: Optional[KernelSet] = None):
        self.config = config or LithoConfig.paper()
        if kernels is not None and kernels.config != self.config:
            raise ValueError("injected kernels were built for a different config")
        self.kernels = kernels or build_kernels(self.config)

    # ------------------------------------------------------------------
    @property
    def grid(self) -> int:
        return self.config.grid

    @property
    def threshold(self) -> float:
        return self.config.threshold

    # ------------------------------------------------------------------
    def aerial(self, mask: np.ndarray, dose: float = 1.0) -> np.ndarray:
        """Aerial image (Eq. 2) scaled by the exposure ``dose``."""
        return aerial_image(mask, self.kernels, dose=dose)

    def aerial_and_fields(self, mask: np.ndarray, dose: float = 1.0
                          ) -> Tuple[np.ndarray, np.ndarray]:
        """Aerial image plus per-kernel coherent fields (for gradients)."""
        return aerial_image_and_fields(mask, self.kernels, dose=dose)

    def wafer_image(self, mask: np.ndarray, dose: float = 1.0) -> np.ndarray:
        """Binary wafer image under the hard-threshold resist (Eq. 3)."""
        return hard_resist(self.aerial(mask, dose=dose), self.config.threshold)

    def relaxed_wafer(self, mask: np.ndarray, dose: float = 1.0) -> np.ndarray:
        """Differentiable wafer image under the sigmoid resist (Eq. 12)."""
        return sigmoid_resist(self.aerial(mask, dose=dose),
                              self.config.threshold,
                              self.config.resist_steepness)

    def process_corners(self, mask: np.ndarray) -> ProcessCorners:
        """Wafer images at nominal and +/-dose corners (PV-band inputs).

        One aerial image is computed and rescaled per corner — dose error
        is a pure intensity scaling, so re-imaging is unnecessary.
        """
        intensity = self.aerial(mask)
        dose = self.config.dose_variation
        return ProcessCorners(
            nominal=hard_resist(intensity, self.config.threshold),
            inner=hard_resist(intensity * (1.0 - dose), self.config.threshold),
            outer=hard_resist(intensity * (1.0 + dose), self.config.threshold),
        )

    def litho_error(self, mask: np.ndarray, target: np.ndarray,
                    relaxed: bool = False) -> float:
        """Squared L2 lithography error ``||Z_t - Z||^2`` (Eq. 11)."""
        wafer = self.relaxed_wafer(mask) if relaxed else self.wafer_image(mask)
        diff = wafer - np.asarray(target, dtype=float)
        return float(np.sum(diff * diff))
