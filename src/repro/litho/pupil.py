"""Projection pupil models.

The pupil is an ideal circular low-pass filter of radius ``NA/lambda``
in spatial frequency, optionally carrying a quadratic defocus phase.
Everything is evaluated on the FFT frequency grid of the simulation
raster so kernels built from it convolve masks without resampling.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .config import OpticsConfig


def frequency_grid(grid: int, pixel_nm: float) -> Tuple[np.ndarray, np.ndarray]:
    """FFT frequency coordinates (1/nm) for a ``grid x grid`` raster.

    Returns ``(fx, fy)`` arrays of shape ``(grid, grid)`` in standard
    (unshifted) numpy FFT layout.
    """
    freqs = np.fft.fftfreq(grid, d=pixel_nm)
    return np.meshgrid(freqs, freqs, indexing="ij")


def pupil_function(optics: OpticsConfig, fx: np.ndarray, fy: np.ndarray,
                   shift: Tuple[float, float] = (0.0, 0.0)) -> np.ndarray:
    """Evaluate the (possibly shifted) pupil on a frequency grid.

    Parameters
    ----------
    optics:
        Optical system parameters.
    fx, fy:
        Spatial-frequency coordinates in 1/nm.
    shift:
        Source-point offset in pupil-normalized units; Hopkins imaging
        evaluates ``P(f + f_s)`` for each source point ``f_s``.

    Returns
    -------
    Complex pupil transmission (0 outside the NA circle; defocus phase
    inside when ``optics.defocus`` is nonzero).
    """
    f_max = optics.na / optics.wavelength
    gx = fx + shift[0] * f_max
    gy = fy + shift[1] * f_max
    rho2 = (gx ** 2 + gy ** 2) / (f_max ** 2)
    inside = rho2 <= 1.0 + 1e-12
    if optics.defocus == 0.0:
        return inside.astype(complex)
    # Quadratic defocus aberration: phase = pi * defocus * lambda * f^2
    # (paraxial approximation, adequate for small defocus).
    phase = np.pi * optics.defocus * optics.wavelength * (gx ** 2 + gy ** 2)
    pupil = np.exp(1j * phase)
    pupil[~inside] = 0.0
    return pupil
