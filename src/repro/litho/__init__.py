"""``repro.litho`` — Hopkins partially-coherent lithography simulation.

Reproduces the imaging substrate of the paper (Eqs. 1-3, 12): an SVD
coherent-kernel decomposition of the Hopkins model (24 kernels, like the
ICCAD-2013 ``lithosim_v4`` engine the paper uses), FFT aerial imaging,
and constant-threshold / sigmoid resist models, plus dose corners for
process-variation-band evaluation.
"""

from .aerial import (aerial_image, aerial_image_and_fields, mask_fields,
                     mask_spectrum)
from .conditions import PW_OBJECTIVES, Condition, ConditionSet
from .config import LithoConfig, OpticsConfig
from .engine import EngineStats, LithoEngine, real_spectrum
from .kernels import (KernelSet, build_kernels, clear_cache, config_hash,
                      load_kernels, save_kernels)
from .pupil import frequency_grid, pupil_function
from .resist import (binarize_mask, hard_resist, sigmoid_mask,
                     sigmoid_resist)
from .simulator import LithoSimulator, ProcessCorners
from .source import source_map, source_points
from .window import (ProcessWindow, depth_of_focus, exposure_latitude,
                     process_window_matrix)

__all__ = [
    "OpticsConfig", "LithoConfig",
    "Condition", "ConditionSet", "PW_OBJECTIVES",
    "EngineStats", "LithoEngine", "real_spectrum",
    "KernelSet", "build_kernels", "clear_cache", "config_hash",
    "save_kernels", "load_kernels",
    "frequency_grid", "pupil_function", "source_points", "source_map",
    "mask_spectrum", "mask_fields", "aerial_image", "aerial_image_and_fields",
    "hard_resist", "sigmoid_resist", "sigmoid_mask", "binarize_mask",
    "LithoSimulator", "ProcessCorners",
    "ProcessWindow", "process_window_matrix", "exposure_latitude",
    "depth_of_focus",
]
