"""``repro.ilt`` — inverse lithography technology engine.

Implements the pixel-based mask optimization the paper uses both as the
state-of-the-art baseline ([7], MOSAIC) and as the refinement stage of
the GAN-OPC flow: steepest descent on the relaxed lithography error
(Eqs. 11-13) with the analytic multi-kernel gradient (Eq. 14).
"""

from .batched import BatchedILTOptimizer, BatchedILTResult
from .gradient import (condition_error_and_gradient,
                       condition_error_and_gradient_wrt_mask, discrete_l2,
                       litho_error_and_gradient,
                       litho_error_and_gradient_wrt_mask)
from .optimizer import ILTConfig, ILTOptimizer, ILTResult

__all__ = [
    "discrete_l2", "litho_error_and_gradient",
    "litho_error_and_gradient_wrt_mask",
    "condition_error_and_gradient",
    "condition_error_and_gradient_wrt_mask",
    "ILTConfig", "ILTOptimizer", "ILTResult",
    "BatchedILTOptimizer", "BatchedILTResult",
]
