"""Analytic ILT gradient (Eq. 14 of the paper).

Inverse lithography minimizes the relaxed lithography error

    E = || Z_t - Z ||^2,     Z = sigma(alpha * (I(M_b) - I_th)),
    M_b = sigma(beta * M)                      (Eqs. 11-13)

by steepest descent on the unconstrained mask parameters ``M``.  The
gradient is derived with the chain rule through the coherent-kernel
imaging model (the multi-kernel generalization of Eq. 14):

    dE/dI   = 2 alpha * (Z - Z_t) . Z . (1 - Z)
    dE/dM_b = sum_k 2 w_k Re[ IFFT( FFT(dE/dI . conj(A_k)) . H_k(-f) ) ]
    dE/dM   = beta * M_b . (1 - M_b) . dE/dM_b

with ``A_k = M_b (x) h_k`` the coherent fields.  ``H_k(-f)`` is the
frequency response of the *adjoint* (correlation) operator; for the
symmetric sources used here it coincides with the paper's pairing of
``H`` and ``H*`` terms.  The implementation is verified against finite
differences in the test suite.

The FFT pipeline itself lives in
:class:`~repro.litho.engine.LithoEngine`; these functions are the
kernel-set-centric facade kept for the ILT optimizers, Algorithm 2 and
external callers.  Both accept a single ``(H, W)`` mask (returning
``(float, (H, W))``) or a batched ``(N, H, W)`` stack (returning
``((N,), (N, H, W))``).
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from ..litho.conditions import ConditionSet
from ..litho.engine import LithoEngine
from ..litho.kernels import KernelSet

ErrorT = Union[float, np.ndarray]


def litho_error_and_gradient_wrt_mask(
        mask_relaxed: np.ndarray, target: np.ndarray, kernels: KernelSet,
        threshold: float, resist_steepness: float,
        dose: float = 1.0) -> Tuple[ErrorT, np.ndarray]:
    """Relaxed litho error ``E`` and its gradient w.r.t. the (relaxed)
    mask image ``M_b``.

    This is the quantity Algorithm 2 back-propagates into the generator
    (``dE/dM`` with ``M`` the network output), and the inner term of the
    full ILT gradient.
    """
    return LithoEngine.for_kernels(kernels).error_and_gradient_wrt_mask(
        mask_relaxed, target, threshold=threshold,
        resist_steepness=resist_steepness, dose=dose)


def litho_error_and_gradient(
        mask_params: np.ndarray, target: np.ndarray, kernels: KernelSet,
        threshold: float, resist_steepness: float, mask_steepness: float,
        dose: float = 1.0) -> Tuple[ErrorT, np.ndarray]:
    """Relaxed litho error and gradient w.r.t. unconstrained ILT
    parameters ``M`` (Eq. 14 in full, including the mask sigmoid)."""
    return LithoEngine.for_kernels(kernels).error_and_gradient(
        mask_params, target, threshold=threshold,
        resist_steepness=resist_steepness, mask_steepness=mask_steepness,
        dose=dose)


def condition_error_and_gradient_wrt_mask(
        mask_relaxed: np.ndarray, target: np.ndarray, kernels: KernelSet,
        conditions: ConditionSet, threshold: float, resist_steepness: float,
        objective: str = "weighted") -> Tuple[ErrorT, np.ndarray]:
    """Process-window litho error/gradient w.r.t. the relaxed mask.

    The corner stack is evaluated by a shared condition engine
    (:meth:`LithoEngine.for_conditions`); ``objective`` selects the
    corner-weight average (``"weighted"``) or the per-sample worst
    corner (``"worst"``).  A single nominal corner reduces to
    :func:`litho_error_and_gradient_wrt_mask` bit-exactly.
    """
    engine = LithoEngine.for_conditions(kernels, conditions)
    return engine.condition_error_and_gradient_wrt_mask(
        mask_relaxed, target, objective=objective, threshold=threshold,
        resist_steepness=resist_steepness)


def condition_error_and_gradient(
        mask_params: np.ndarray, target: np.ndarray, kernels: KernelSet,
        conditions: ConditionSet, threshold: float, resist_steepness: float,
        mask_steepness: float,
        objective: str = "weighted") -> Tuple[ErrorT, np.ndarray]:
    """Process-window error/gradient w.r.t. unconstrained ILT parameters
    (the full Eq. 14 chain, aggregated over the corner stack)."""
    engine = LithoEngine.for_conditions(kernels, conditions)
    return engine.condition_error_and_gradient(
        mask_params, target, objective=objective, threshold=threshold,
        resist_steepness=resist_steepness, mask_steepness=mask_steepness)


def discrete_l2(wafer: np.ndarray, target: np.ndarray) -> float:
    """Squared L2 error between binary images (Definition 1)."""
    diff = np.asarray(wafer, dtype=float) - np.asarray(target, dtype=float)
    return float(np.sum(diff * diff))
