"""Analytic ILT gradient (Eq. 14 of the paper).

Inverse lithography minimizes the relaxed lithography error

    E = || Z_t - Z ||^2,     Z = sigma(alpha * (I(M_b) - I_th)),
    M_b = sigma(beta * M)                      (Eqs. 11-13)

by steepest descent on the unconstrained mask parameters ``M``.  The
gradient is derived with the chain rule through the coherent-kernel
imaging model (the multi-kernel generalization of Eq. 14):

    dE/dI   = 2 alpha * (Z - Z_t) . Z . (1 - Z)
    dE/dM_b = sum_k 2 w_k Re[ IFFT( FFT(dE/dI . conj(A_k)) . H_k(-f) ) ]
    dE/dM   = beta * M_b . (1 - M_b) . dE/dM_b

with ``A_k = M_b (x) h_k`` the coherent fields.  ``H_k(-f)`` is the
frequency response of the *adjoint* (correlation) operator; for the
symmetric sources used here it coincides with the paper's pairing of
``H`` and ``H*`` terms.  The implementation is verified against finite
differences in the test suite.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..litho.kernels import KernelSet
from ..litho.resist import sigmoid_mask, sigmoid_resist, _stable_sigmoid


def litho_error_and_gradient_wrt_mask(
        mask_relaxed: np.ndarray, target: np.ndarray, kernels: KernelSet,
        threshold: float, resist_steepness: float,
        dose: float = 1.0) -> Tuple[float, np.ndarray]:
    """Relaxed litho error ``E`` and its gradient w.r.t. the (relaxed)
    mask image ``M_b``.

    This is the quantity Algorithm 2 back-propagates into the generator
    (``dE/dM`` with ``M`` the network output), and the inner term of the
    full ILT gradient.
    """
    target = np.asarray(target, dtype=float)
    spectrum = np.fft.fft2(mask_relaxed)
    fields = np.fft.ifft2(spectrum[None] * kernels.freq_kernels, axes=(-2, -1))
    intensity = np.einsum("k,kxy->xy", kernels.weights, np.abs(fields) ** 2)
    if dose != 1.0:
        intensity = intensity * dose
    wafer = _stable_sigmoid(resist_steepness * (intensity - threshold))

    diff = wafer - target
    error = float(np.sum(diff * diff))

    # dE/dI, including the resist sigmoid slope.
    grad_intensity = 2.0 * resist_steepness * diff * wafer * (1.0 - wafer)
    if dose != 1.0:
        grad_intensity = grad_intensity * dose

    # Adjoint push through each coherent system.
    flipped = kernels.flipped()
    weighted = grad_intensity[None] * np.conj(fields)
    grad_mask = np.fft.ifft2(np.fft.fft2(weighted, axes=(-2, -1)) * flipped,
                             axes=(-2, -1))
    grad_mask = 2.0 * np.einsum("k,kxy->xy", kernels.weights, grad_mask.real)
    return error, grad_mask


def litho_error_and_gradient(
        mask_params: np.ndarray, target: np.ndarray, kernels: KernelSet,
        threshold: float, resist_steepness: float, mask_steepness: float,
        dose: float = 1.0) -> Tuple[float, np.ndarray]:
    """Relaxed litho error and gradient w.r.t. unconstrained ILT
    parameters ``M`` (Eq. 14 in full, including the mask sigmoid)."""
    mask_relaxed = sigmoid_mask(mask_params, mask_steepness)
    error, grad_mb = litho_error_and_gradient_wrt_mask(
        mask_relaxed, target, kernels, threshold, resist_steepness, dose=dose)
    grad_params = mask_steepness * mask_relaxed * (1.0 - mask_relaxed) * grad_mb
    return error, grad_params


def discrete_l2(wafer: np.ndarray, target: np.ndarray) -> float:
    """Squared L2 error between binary images (Definition 1)."""
    diff = np.asarray(wafer, dtype=float) - np.asarray(target, dtype=float)
    return float(np.sum(diff * diff))
