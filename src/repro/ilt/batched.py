"""Batched ILT: optimize many masks simultaneously.

Reference-mask generation for the training library (Section 4: 4000
instances) dominates the offline cost of the GAN-OPC flow.  Because the
per-clip ILT iterations are independent and FFT-bound, stacking clips
into one ``(N, grid, grid)`` array and batching every FFT gives a large
constant-factor speedup on CPU (and mirrors how a GPU implementation
would batch).

This module is a loop-free wrapper over the shared
:class:`~repro.litho.engine.LithoEngine` — the engine owns the batched
forward/adjoint physics; only the descent schedule and best-discrete
bookkeeping live here.  Semantics match running
:class:`~repro.ilt.optimizer.ILTOptimizer` per-clip with the same
step/momentum settings, except early stopping is per-batch (all clips
run the same number of iterations) and the best discrete mask is
tracked per clip.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.obs import trace

from ..litho.conditions import ConditionSet
from ..litho.config import LithoConfig
from ..litho.engine import LithoEngine
from ..litho.kernels import KernelSet, build_kernels
from .optimizer import ILTConfig


@dataclass
class BatchedILTResult:
    """Outcome of a batched ILT run."""

    masks: np.ndarray          # (N, g, g) best binary masks
    l2: np.ndarray             # (N,) best discrete L2 per clip
    relaxed_history: List[float]  # mean relaxed error per iteration
    iterations: int
    runtime_seconds: float


class BatchedILTOptimizer:
    """Steepest-descent ILT over a stack of targets at once.

    ``conditions`` / ``config.pw_objective`` select a process-window
    objective exactly as in :class:`~repro.ilt.optimizer.ILTOptimizer`;
    the best-discrete bookkeeping stays nominal.
    """

    def __init__(self, litho_config: Optional[LithoConfig] = None,
                 config: Optional[ILTConfig] = None,
                 kernels: Optional[KernelSet] = None,
                 engine: Optional[LithoEngine] = None,
                 conditions: Optional[ConditionSet] = None):
        self.litho_config = litho_config or LithoConfig.paper()
        self.config = config or ILTConfig()
        if engine is None:
            engine = LithoEngine.for_kernels(
                kernels or build_kernels(self.litho_config))
        self.engine = engine
        self.kernels = engine.kernels

        objective = self.config.pw_objective
        if conditions is not None and objective == "nominal":
            objective = "weighted"
        if objective != "nominal" and conditions is None:
            conditions = ConditionSet.dose_corners(
                self.litho_config.dose_variation)
        self.conditions = conditions
        self.pw_objective = objective
        self._condition_engine = (
            LithoEngine.for_conditions(self.kernels, conditions,
                                       self.engine.precision)
            if objective != "nominal" else None)

    # ------------------------------------------------------------------
    def _error_and_gradient(self, params: np.ndarray, targets: np.ndarray):
        cfg = self.litho_config
        if self._condition_engine is not None:
            return self._condition_engine.condition_error_and_gradient(
                params, targets, objective=self.pw_objective,
                threshold=cfg.threshold,
                resist_steepness=cfg.resist_steepness,
                mask_steepness=cfg.mask_steepness)
        return self.engine.error_and_gradient(
            params, targets, threshold=cfg.threshold,
            resist_steepness=cfg.resist_steepness,
            mask_steepness=cfg.mask_steepness)

    def _discrete_scores(self, params: np.ndarray, targets: np.ndarray):
        return self.engine.binarized_score(
            params, targets, mask_steepness=self.litho_config.mask_steepness)

    # ------------------------------------------------------------------
    def optimize(self, targets: np.ndarray,
                 max_iterations: Optional[int] = None,
                 workers: int = 1) -> BatchedILTResult:
        """Optimize a batch of binary targets ``(N, grid, grid)``.

        ``workers > 1`` shards the batch across a
        :class:`~repro.parallel.WorkerPool` (one contiguous shard per
        worker, each running this same lockstep descent); masks and
        per-clip L2 are bit-exact versus the single-process run.
        """
        if workers > 1:
            from ..parallel.ilt import parallel_batched_ilt
            return parallel_batched_ilt(
                targets, self.litho_config, self.config, workers=workers,
                precision=self.engine.precision,
                max_iterations=max_iterations, conditions=self.conditions)
        targets = np.asarray(targets, dtype=float)
        if targets.ndim != 3 or targets.shape[-1] != self.litho_config.grid:
            raise ValueError(
                f"targets must be (N, {self.litho_config.grid}, "
                f"{self.litho_config.grid}), got {targets.shape}")
        cfg = self.config
        iterations = max_iterations or cfg.max_iterations

        start = time.perf_counter()
        params = cfg.init_scale * (2.0 * targets - 1.0)
        velocity = np.zeros_like(params)
        best_masks, best_l2 = self._discrete_scores(params, targets)
        history: List[float] = []

        metrics = self.engine.metrics
        step_hist = metrics.histogram("ilt.batched_step_seconds")
        error_hist = metrics.histogram("ilt.batched_relaxed_error",
                                       keep_values=True)

        step = 0
        for step in range(1, iterations + 1):
            step_started = time.perf_counter()
            with trace.span("ilt.batched_step", iteration=step,
                            batch=targets.shape[0]):
                errors, grad = self._error_and_gradient(params, targets)
                history.append(float(errors.mean()))
                velocity = cfg.momentum * velocity - cfg.step_size * grad
                params = params + velocity
            step_hist.observe(time.perf_counter() - step_started)
            error_hist.observe(history[-1])

            if step % cfg.eval_interval == 0 or step == iterations:
                with trace.span("ilt.batched_evaluate", iteration=step):
                    masks, l2 = self._discrete_scores(params, targets)
                improved = l2 < best_l2
                best_masks[improved] = masks[improved]
                best_l2 = np.minimum(best_l2, l2)

        return BatchedILTResult(
            masks=best_masks, l2=best_l2, relaxed_history=history,
            iterations=step, runtime_seconds=time.perf_counter() - start)
