"""Steepest-descent inverse lithography (the paper's baseline [7] and
the refinement stage of the GAN-OPC flow, Fig. 6).

The optimizer walks the unconstrained mask parameters ``M`` down the
relaxed lithography error (Eqs. 11-14), periodically binarizing and
re-simulating to track the best *discrete* mask seen — the quantity
Table 2 reports.  Two modes matter to the reproduction:

* **from scratch** (``initial_mask=None``): parameters start from the
  target polygons, which is how the MOSAIC-style baseline column of
  Table 2 is produced;
* **refinement** (``initial_mask=G(Z_t)``): parameters start from the
  generator's quasi-optimal mask; the paper's headline result is that
  this warm start both converges in far fewer iterations (~0.5x runtime)
  and reaches lower L2.

Two process-window modes are available on top of the nominal
objective:

* ``pvb_weight > 0`` adds the legacy dose-corner error terms to the
  nominal objective (mirroring MOSAIC's process-window-aware
  correction);
* ``pw_objective`` in ``{"weighted", "worst"}`` replaces the nominal
  objective with a corner-stack objective over a
  :class:`~repro.litho.conditions.ConditionSet` — the weighted corner
  average or the per-sample worst corner — evaluated through the
  engine's batched condition stack.  The best-discrete-mask tracking
  stays nominal so Table 2 columns remain comparable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.obs import trace

from ..litho.conditions import PW_OBJECTIVES, ConditionSet
from ..litho.config import LithoConfig
from ..litho.engine import LithoEngine
from ..litho.kernels import KernelSet, build_kernels
from ..litho.resist import sigmoid_mask


@dataclass(frozen=True)
class ILTConfig:
    """Hyper-parameters of the steepest-descent ILT engine.

    Attributes
    ----------
    max_iterations:
        Upper bound on gradient steps.
    step_size:
        Learning rate of the parameter update.
    momentum:
        Heavy-ball momentum coefficient (0 disables).
    init_scale:
        Magnitude of the initial parameters: ``M_0 = init_scale *
        (2 Z_t - 1)`` maps target/background to +/-init_scale.
    eval_interval:
        Every this many iterations the mask is binarized, re-simulated
        with the *hard* resist and scored; the best discrete mask is
        retained (ILT progress is not monotone in the discrete metric).
    stop_l2:
        Early stop once the discrete L2 falls at or below this value
        (None disables).
    patience:
        Early stop when the best discrete L2 has not improved for this
        many evaluations (None disables).
    pvb_weight:
        Weight of the dose-corner error terms; 0 reproduces nominal-only
        optimization (what the paper's flow uses).
    pw_objective:
        ``"nominal"`` (default) optimizes the nominal condition only;
        ``"weighted"`` / ``"worst"`` optimize the corner stack of the
        optimizer's :class:`ConditionSet` instead.
    """

    max_iterations: int = 200
    step_size: float = 1.0
    momentum: float = 0.9
    init_scale: float = 1.0
    eval_interval: int = 5
    stop_l2: Optional[float] = None
    patience: Optional[int] = 10
    pvb_weight: float = 0.0
    pw_objective: str = "nominal"

    def __post_init__(self):
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if self.eval_interval < 1:
            raise ValueError("eval_interval must be >= 1")
        if self.pvb_weight < 0:
            raise ValueError("pvb_weight must be nonnegative")
        if self.pw_objective not in PW_OBJECTIVES:
            raise ValueError(
                f"pw_objective must be one of {PW_OBJECTIVES}, "
                f"got {self.pw_objective!r}")


@dataclass
class ILTResult:
    """Outcome of an ILT run.

    Attributes
    ----------
    mask:
        Best binary mask found (by discrete nominal L2).
    mask_relaxed:
        Relaxed mask image at the final iteration.
    params:
        Final unconstrained parameters (useful to resume).
    l2:
        Discrete squared-L2 error of :attr:`mask` (Definition 1),
        in pixels; multiply by ``pixel_area_nm2`` for nm^2.
    relaxed_history:
        Relaxed error ``E`` per iteration (the ILT training curve).
    l2_history:
        Discrete L2 at each evaluation point.
    iterations:
        Gradient steps actually executed.
    runtime_seconds:
        Wall-clock time of the optimization loop.
    converged:
        True when an early-stop criterion fired before the iteration cap.
    """

    mask: np.ndarray
    mask_relaxed: np.ndarray
    params: np.ndarray
    l2: float
    relaxed_history: List[float] = field(default_factory=list)
    l2_history: List[float] = field(default_factory=list)
    iterations: int = 0
    runtime_seconds: float = 0.0
    converged: bool = False


class ILTOptimizer:
    """Pixel-based mask optimizer via steepest descent on Eq. 11.

    Parameters
    ----------
    litho_config:
        Lithography model configuration.
    config:
        Optimizer hyper-parameters.
    kernels:
        Optional prebuilt kernel set (otherwise built and cached).
    engine:
        Optional shared :class:`LithoEngine`; takes precedence over
        ``kernels`` and lets flows/harnesses reuse one engine (and its
        cached adjoint spectra) across every optimizer they build.
    conditions:
        Optional process-window corner stack.  When given with a
        nominal ``config.pw_objective``, the objective is upgraded to
        ``"weighted"``; when ``pw_objective`` is non-nominal and no
        stack is given, the paper's dose corners
        (:meth:`ConditionSet.dose_corners`) are used.
    """

    def __init__(self, litho_config: Optional[LithoConfig] = None,
                 config: Optional[ILTConfig] = None,
                 kernels: Optional[KernelSet] = None,
                 engine: Optional[LithoEngine] = None,
                 conditions: Optional[ConditionSet] = None):
        self.litho_config = litho_config or LithoConfig.paper()
        self.config = config or ILTConfig()
        if engine is None:
            engine = LithoEngine.for_kernels(
                kernels or build_kernels(self.litho_config))
        self.engine = engine
        self.kernels = engine.kernels

        objective = self.config.pw_objective
        if conditions is not None and objective == "nominal":
            objective = "weighted"
        if objective != "nominal" and conditions is None:
            conditions = ConditionSet.dose_corners(
                self.litho_config.dose_variation)
        self.conditions = conditions
        self.pw_objective = objective
        self._condition_engine = (
            LithoEngine.for_conditions(self.kernels, conditions,
                                       self.engine.precision)
            if objective != "nominal" else None)
        #: optional :class:`~repro.runtime.telemetry.RunLogger`; when
        #: set, each evaluation point emits a ``quality_sample`` record
        #: tagged with :attr:`quality_context` (clip/method/stage).
        self.logger = None
        self.quality_context: dict = {}

    # ------------------------------------------------------------------
    def initial_params(self, target: np.ndarray,
                       initial_mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Build starting parameters from the target or a warm-start mask.

        A warm-start mask (the generator output in the GAN-OPC flow) is
        mapped through the logit so that ``sigmoid(beta * M_0)``
        reproduces it; values are clipped away from {0, 1} to keep the
        logit finite.
        """
        scale = self.config.init_scale
        if initial_mask is None:
            return scale * (2.0 * np.asarray(target, dtype=float) - 1.0)
        mask = np.clip(np.asarray(initial_mask, dtype=float), 1e-3, 1.0 - 1e-3)
        return np.log(mask / (1.0 - mask)) / self.litho_config.mask_steepness

    # ------------------------------------------------------------------
    def _objective_gradient(self, params: np.ndarray, target: np.ndarray):
        cfg = self.litho_config
        if self._condition_engine is not None:
            return self._condition_engine.condition_error_and_gradient(
                params, target, objective=self.pw_objective,
                threshold=cfg.threshold,
                resist_steepness=cfg.resist_steepness,
                mask_steepness=cfg.mask_steepness)
        error, grad = self.engine.error_and_gradient(
            params, target, threshold=cfg.threshold,
            resist_steepness=cfg.resist_steepness,
            mask_steepness=cfg.mask_steepness)
        if self.config.pvb_weight > 0.0:
            for dose in (1.0 - cfg.dose_variation, 1.0 + cfg.dose_variation):
                corner_error, corner_grad = self.engine.error_and_gradient(
                    params, target, threshold=cfg.threshold,
                    resist_steepness=cfg.resist_steepness,
                    mask_steepness=cfg.mask_steepness, dose=dose)
                error += self.config.pvb_weight * corner_error
                grad = grad + self.config.pvb_weight * corner_grad
        return error, grad

    def _discrete_score(self, params: np.ndarray, target: np.ndarray):
        return self.engine.binarized_score(
            params, target, mask_steepness=self.litho_config.mask_steepness)

    # ------------------------------------------------------------------
    def optimize(self, target: np.ndarray,
                 initial_mask: Optional[np.ndarray] = None,
                 max_iterations: Optional[int] = None) -> ILTResult:
        """Run ILT on ``target``; see the module docstring for modes.

        Parameters
        ----------
        target:
            Binary target image ``Z_t`` on the simulator grid.
        initial_mask:
            Optional warm-start mask in [0, 1] (GAN-OPC refinement).
        max_iterations:
            Override of ``config.max_iterations`` for this call.
        """
        target = np.asarray(target, dtype=float)
        if target.shape != (self.litho_config.grid,) * 2:
            raise ValueError(
                f"target shape {target.shape} does not match simulator grid "
                f"{self.litho_config.grid}")
        cfg = self.config
        iterations = max_iterations or cfg.max_iterations

        start = time.perf_counter()
        params = self.initial_params(target, initial_mask)
        velocity = np.zeros_like(params)

        best_mask, best_l2 = self._discrete_score(params, target)
        relaxed_history: List[float] = []
        l2_history: List[float] = [best_l2]
        stall = 0
        converged = False
        step = 0

        metrics = self.engine.metrics
        step_hist = metrics.histogram("ilt.step_seconds")
        error_hist = metrics.histogram("ilt.relaxed_error", keep_values=True)

        for step in range(1, iterations + 1):
            step_started = time.perf_counter()
            with trace.span("ilt.step", iteration=step):
                error, grad = self._objective_gradient(params, target)
                relaxed_history.append(error)
                velocity = cfg.momentum * velocity - cfg.step_size * grad
                params = params + velocity
            step_hist.observe(time.perf_counter() - step_started)
            error_hist.observe(error)

            if step % cfg.eval_interval == 0 or step == iterations:
                with trace.span("ilt.evaluate", iteration=step):
                    mask, l2 = self._discrete_score(params, target)
                l2_history.append(l2)
                if self.logger is not None:
                    self.logger.quality_sample(
                        step, error, l2=float(l2),
                        **self.quality_context)
                if l2 < best_l2:
                    best_l2 = l2
                    best_mask = mask
                    stall = 0
                else:
                    stall += 1
                if cfg.stop_l2 is not None and best_l2 <= cfg.stop_l2:
                    converged = True
                    break
                if cfg.patience is not None and stall >= cfg.patience:
                    converged = True
                    break

        runtime = time.perf_counter() - start
        return ILTResult(
            mask=best_mask,
            mask_relaxed=sigmoid_mask(params, self.litho_config.mask_steepness),
            params=params,
            l2=best_l2,
            relaxed_history=relaxed_history,
            l2_history=l2_history,
            iterations=step,
            runtime_seconds=runtime,
            converged=converged,
        )

    def refine(self, target: np.ndarray, initial_mask: np.ndarray,
               max_iterations: int = 20) -> ILTResult:
        """Few-step ILT refinement from a quasi-optimal mask (Fig. 6)."""
        return self.optimize(target, initial_mask=initial_mask,
                             max_iterations=max_iterations)
