"""Command-line interface: ``python -m repro <command>``.

Exposes the main engines as shell commands so the repo is usable
without writing Python:

* ``synthesize`` — generate design-rule-clean clips as ``.glp`` files;
* ``chip``       — synthesize a chip-scale layout (cell array plus
  seam-crossing spanning wires) for the tiled flow;
* ``simulate``   — lithography-simulate a mask and report metrics;
* ``ilt``        — optimize a clip's mask with the ILT engine;
* ``sraf``       — insert assist features into a clip;
* ``train``      — run the training loops with the robustness
  substrate (checkpoint/resume, divergence guards, JSONL telemetry);
* ``flow``       — run the GAN-OPC flow with a trained checkpoint;
  ``flow --tiled`` (and ``ilt --tiled``) scale past the engine grid by
  halo-overlap tile decomposition (``--tile-size --halo --workers``);
* ``table2``     — run the full Table 2 experiment at a chosen scale;
* ``profile``    — run a small end-to-end flow under the observability
  layer and emit a Perfetto-loadable Chrome trace plus per-op tables;
* ``monitor``    — run a tiled job under live fleet monitoring:
  per-tile progress with ETA, pool utilization, stall/straggler
  flags, and OpenMetrics exposition (``--metrics-port`` HTTP or
  ``--metrics-out`` file);
* ``runs``       — inspect the run ledger (``list``/``show``/``diff``);
* ``report``     — render a recorded run to self-contained HTML.

``ilt``, ``train``, ``flow`` and ``table2`` record every invocation in
the run ledger (``--runs-dir``, default ``.repro_runs/``; disable with
``--no-run-record``): a manifest (config hash, git rev, seed,
precision, argv, package versions) plus schema-validated quality
telemetry that ``runs diff`` and ``report`` read back (DESIGN.md §14).

``train`` and ``flow`` also accept ``--trace-dir`` to capture span
traces alongside their normal outputs; with ``--workers > 1`` the
trace merges every worker's spans into one pid-laned Chrome file
(DESIGN.md §13).  Layouts move as GLP text files, images as PGM;
metrics print on stdout.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import List, Optional

import numpy as np


@contextlib.contextmanager
def _trace_to(trace_dir: Optional[str], prefix: str):
    """Scoped tracing for a CLI command: spans stream to
    ``<trace_dir>/<prefix>-spans.jsonl`` during the run and the Chrome
    trace is written on exit.  A falsy ``trace_dir`` is a no-op."""
    if not trace_dir:
        yield None
        return
    import os

    from .obs import trace
    tracer = trace.enable(jsonl_path=os.path.join(
        trace_dir, f"{prefix}-spans.jsonl"))
    try:
        yield tracer
    finally:
        trace.disable()
        path = tracer.write_chrome_trace(
            os.path.join(trace_dir, f"{prefix}-trace.json"))
        print(f"chrome trace written to {path} "
              f"(load in https://ui.perfetto.dev)")


def _emit_fleet_telemetry(logger, pool_stats, registry=None) -> None:
    """Write per-worker telemetry records after a parallel/tiled run.

    One ``worker_span_summary`` per worker pid (span + engine-counter
    merges shipped back through the pool) and, when the pool's metrics
    ``registry`` holds /proc resource gauges, one ``resource_sample``
    per pid with its last observed RSS/CPU reading.
    """
    fleet = pool_stats.fleet
    for pid in sorted(set(pool_stats.task_counts)
                      | set(fleet.pid_span_summary)):
        logger.worker_span_summary(
            pid, fleet.pid_span_summary.get(pid, {}),
            tasks=pool_stats.task_counts.get(pid),
            busy_seconds=pool_stats.busy_seconds.get(pid),
            dropped_spans=fleet.dropped_spans or None,
            litho=fleet.pid_engine.get(pid) or None)
    if registry is None:
        return
    from .obs.export import split_labels
    per_pid: dict = {}
    for raw_name, value in registry.snapshot()["gauges"].items():
        name, labels = split_labels(raw_name)
        if "pid" in labels and name.startswith("pool.worker."):
            per_pid.setdefault(int(labels["pid"]), {})[
                name.rsplit(".", 1)[-1]] = value
    for pid, values in sorted(per_pid.items()):
        if "rss_bytes" in values and "cpu_seconds" in values:
            logger.resource_sample(
                pid, values["rss_bytes"], values["cpu_seconds"],
                num_threads=(int(values["threads"])
                             if "threads" in values else None),
                cpu_utilization=values.get("cpu_utilization"))


@contextlib.contextmanager
def _run_record(args, command: str, litho=None, conditions=None,
                seed: Optional[int] = None, params: Optional[dict] = None):
    """Open a run in the ledger for the duration of a CLI command.

    Yields the :class:`~repro.runs.RunHandle` (or ``None`` under
    ``--no-run-record``); on exit stamps the finish time and status
    (``error`` when the command raised) into the manifest.  Commands
    put final metrics into ``run.manifest.summary`` and link artifacts
    before the block ends.
    """
    if getattr(args, "no_run_record", False):
        yield None
        return
    from .runs import RunStore
    store = RunStore(getattr(args, "runs_dir", None))
    run = store.create(command, argv=sys.argv[1:], litho=litho,
                       conditions=conditions, seed=seed,
                       precision=getattr(args, "precision", None),
                       workers=getattr(args, "workers", None),
                       params=params)
    run.log_manifest_record()
    try:
        yield run
    except BaseException:
        run.finish(status="error")
        raise
    run.finish(status="complete")
    print(f"run recorded: {run.manifest.run_id} (store: {store.root})")


def _litho(args):
    from .litho import LithoConfig
    return LithoConfig.small(args.grid)


def _conditions(args, litho):
    """Parse ``--corners`` into a :class:`ConditionSet` (or ``None``).

    Accepts the presets (``nominal``/``dose``/``window``) and explicit
    ``defocus:dose[:weight]`` comma lists; the dose presets use the
    litho config's ``dose_variation``.
    """
    if not getattr(args, "corners", None):
        return None
    from .litho import ConditionSet
    try:
        return ConditionSet.parse(args.corners,
                                  dose_variation=litho.dose_variation)
    except ValueError as exc:
        print(f"error: --corners {args.corners!r}: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _engine(litho, precision=None, backend=None):
    """One shared engine per CLI invocation.

    Kernel construction goes through the two-level ``build_kernels``
    cache (in-process + on-disk), so repeated CLI runs at the same
    settings skip the eigendecomposition entirely.  ``precision``
    selects the compute dtype (``f32``/``f64``; default environment)
    and ``backend`` the array-ops backend (``numpy``/``cupy``).
    """
    from .litho import LithoEngine, build_kernels
    return LithoEngine.for_kernels(build_kernels(litho),
                                   precision=precision,
                                   backend=backend)


def _apply_backend(args) -> None:
    """Resolve ``--backend`` once, fail fast, and export it.

    The resolved name is installed as the process default *and* into
    ``REPRO_BACKEND``, so worker subprocesses (tiled/parallel paths)
    and engines built deep inside library code all agree with the
    flag without threading it through every constructor.
    """
    name = getattr(args, "backend", None)
    if not name:
        return
    import os

    from .backend import BackendUnavailableError, resolve_backend, set_backend
    try:
        backend = resolve_backend(name)
    except (ValueError, BackendUnavailableError) as exc:
        print(f"error: --backend {name!r}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    os.environ["REPRO_BACKEND"] = backend.name
    set_backend(backend)


def _load_target(path: str, grid: int):
    from .geometry import binarize, glp, rasterize
    layout = glp.load(path)
    return layout, binarize(rasterize(layout, grid))


# ----------------------------------------------------------------------
def cmd_synthesize(args) -> int:
    from .geometry import glp
    from .layoutgen import LayoutSynthesizer, TopologyConfig

    litho = _litho(args)
    config = TopologyConfig(extent=litho.extent_nm,
                            margin=min(120.0, litho.extent_nm / 8.0))
    clips = LayoutSynthesizer(config).generate_batch(args.count,
                                                     seed=args.seed)
    for i, clip in enumerate(clips):
        path = f"{args.prefix}{i:04d}.glp"
        glp.save(clip, path)
        print(f"{path}: {len(clip)} shapes, {clip.pattern_area:.0f} nm^2")
    return 0


def cmd_chip(args) -> int:
    from .geometry import glp
    from .layoutgen import ChipConfig, synthesize_chip

    config = ChipConfig(cells=args.cells, cell_extent=args.cell_extent,
                        fill_probability=args.fill)
    chip = synthesize_chip(config, seed=args.seed, name="chip")
    glp.save(chip, args.out)
    pixel_nm = 8.0
    chip_grid = int(round(config.extent / pixel_nm))
    print(f"{args.out}: {args.cells}x{args.cells} cells, "
          f"{len(chip)} shapes, extent {config.extent:.0f} nm "
          f"({chip_grid}px at {pixel_nm:.0f} nm/px)")
    return 0


def _tiled_config(args):
    from .tiling import TilingConfig
    return TilingConfig(tile=args.tile_size, halo=args.halo,
                        blend=args.blend)


def _chip_target(path: str, tiling_config, litho):
    """Load a layout and rasterize it at the chip scale.

    The chip raster keeps the tile litho config's pixel size, so the
    chip grid is the layout extent over the pixel — not limited to the
    engine grid.
    """
    from .geometry import binarize, glp, rasterize
    layout = glp.load(path)
    chip_grid = max(int(round(layout.extent / litho.pixel_nm)), 1)
    return layout, binarize(rasterize(layout, chip_grid))


def _print_tiled(result, out: Optional[str]) -> None:
    from .bench import write_pgm

    grid = result.tile_grid
    print(f"tiles: {result.tiles_total} "
          f"({grid.rows}x{grid.cols}, tile {grid.tile}px, "
          f"halo {grid.halo}px, core {grid.core}px), "
          f"skipped {result.tiles_skipped} empty")
    print(f"chip grid: {grid.chip_grid}px")
    print(f"core l2: {result.l2:.1f}")
    print(f"runtime: {result.runtime_seconds:.3f}s "
          f"({result.workers} workers)")
    if result.pool_stats is not None:
        print(result.pool_stats.format_table())
    if out:
        write_pgm(result.mask, out)
        print(f"mask written to {out}")


def _record_tiled(run, result, method: str) -> None:
    """Stream a tiled run's quality telemetry into its run record.

    One ``clip_result`` per non-empty tile (core-restricted L2), plus
    stall/straggler ``anomaly`` records and per-worker span summaries
    when the run was parallel.
    """
    if run is None:
        return
    grid = result.tile_grid
    tile_l2 = np.asarray(result.tile_l2)
    for tile in grid.tiles():
        run.logger.clip_result(
            f"tile-r{tile.row}c{tile.col}", method,
            {"l2_px": float(tile_l2[tile.index])})
    stats = result.pool_stats
    if stats is not None:
        for event in stats.stalls:
            run.logger.anomaly("worker_stall", pid=event.pid,
                               task_seq=event.task_seq,
                               gap_seconds=event.gap_seconds)
        for pid, seconds in stats.stragglers():
            run.logger.anomaly("straggler", pid=pid, seconds=seconds,
                               median_seconds=stats.median_task_seconds())
        _emit_fleet_telemetry(run.logger, stats)
        run.manifest.summary["litho"] = dict(stats.fleet.engine_totals)
    run.manifest.summary.update(
        {"l2_px": float(result.l2),
         "tiles_total": result.tiles_total,
         "tiles_skipped": result.tiles_skipped,
         "runtime_seconds": float(result.runtime_seconds)})


def cmd_simulate(args) -> int:
    from .bench import write_pgm
    from .litho import LithoSimulator
    from .metrics import evaluate_mask

    litho = _litho(args)
    layout, target = _load_target(args.clip, litho.grid)
    if args.mask:
        from .bench import read_pgm
        mask = (read_pgm(args.mask) >= 0.5).astype(float)
        if mask.shape != (litho.grid, litho.grid):
            print(f"error: mask is {mask.shape}, expected "
                  f"({litho.grid}, {litho.grid})", file=sys.stderr)
            return 2
    else:
        mask = target
    simulator = LithoSimulator(
        litho, engine=_engine(litho, args.precision))
    evaluation = evaluate_mask(simulator, mask, target, layout=layout,
                               name=layout.name or "clip")
    for key, value in evaluation.as_dict().items():
        print(f"{key}: {value}")
    if args.out:
        write_pgm(simulator.wafer_image(mask), args.out)
        print(f"wafer image written to {args.out}")
    return 0


def cmd_ilt(args) -> int:
    from .bench import write_pgm
    from .ilt import ILTConfig, ILTOptimizer
    from .litho import LithoSimulator
    from .metrics import evaluate_mask

    if args.tiled:
        from .litho import LithoConfig
        from .tiling import tiled_ilt
        tiling = _tiled_config(args)
        litho = LithoConfig.small(tiling.tile)
        _, target = _chip_target(args.clip, tiling, litho)
        with _run_record(args, "ilt", litho=litho,
                         params={"clip": args.clip, "tiled": True,
                                 "iterations": args.iterations,
                                 "tile_size": args.tile_size,
                                 "halo": args.halo}) as run:
            result = tiled_ilt(target, tiling, litho,
                               ILTConfig(max_iterations=args.iterations),
                               workers=args.workers,
                               precision=args.precision)
            _record_tiled(run, result, "tiled-ILT")
        _print_tiled(result, args.out)
        return 0

    litho = _litho(args)
    engine = _engine(litho, args.precision)
    layout, target = _load_target(args.clip, litho.grid)
    optimizer = ILTOptimizer(litho, ILTConfig(max_iterations=args.iterations),
                             engine=engine)
    clip_name = layout.name or "clip"
    with _run_record(args, "ilt", litho=litho,
                     params={"clip": args.clip,
                             "iterations": args.iterations}) as run:
        stats_before = engine.stats.snapshot()
        if run is not None:
            optimizer.logger = run.logger
            optimizer.quality_context = {"clip": clip_name,
                                         "method": "ILT",
                                         "stage": "refinement"}
        result = optimizer.optimize(target)
        evaluation = evaluate_mask(LithoSimulator(litho, engine=engine),
                                   result.mask, target,
                                   layout=layout, name=clip_name,
                                   runtime_seconds=result.runtime_seconds)
        write_pgm(result.mask, args.out)
        if run is not None:
            from .runs import clip_metrics
            run.logger.clip_result(
                clip_name, "ILT", clip_metrics(evaluation),
                runtime_seconds=result.runtime_seconds,
                epe_hotspots=evaluation.epe_hotspots)
            run.manifest.summary["litho"] = engine.stats.delta(stats_before)
            run.add_artifact("mask", args.out)
            run.import_file("clip", args.clip)
    print(f"iterations: {result.iterations} (converged={result.converged})")
    for key, value in evaluation.as_dict().items():
        print(f"{key}: {value}")
    print(f"mask written to {args.out}")
    return 0


def cmd_sraf(args) -> int:
    from .geometry import glp
    from .opc import SrafConfig, assisted_mask_layout

    layout = glp.load(args.clip)
    config = SrafConfig(width=args.width, offset=args.offset)
    assisted = assisted_mask_layout(layout, config)
    glp.save(assisted, args.out)
    added = len(assisted) - len(layout)
    print(f"inserted {added} assist bars -> {args.out}")
    return 0


def cmd_train(args) -> int:
    import os
    from dataclasses import replace

    from . import nn
    from .core import (GanOpcConfig, GanOpcTrainer, ILTGuidedPretrainer,
                       MaskGenerator, PairDiscriminator)
    from .layoutgen import SyntheticDataset
    from .runtime import RunConfig

    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    litho = _litho(args)
    engine = _engine(litho, args.precision)
    conditions = _conditions(args, litho)
    config = replace(GanOpcConfig.small(litho.grid),
                     batch_size=args.batch_size, seed=args.seed,
                     litho_weight=args.litho_weight,
                     pw_objective=args.pw_objective)
    dataset = SyntheticDataset(litho, size=args.dataset_size,
                               seed=args.seed, kernels=engine.kernels)
    generator = MaskGenerator(config.generator_channels,
                              rng=np.random.default_rng(args.seed))
    if args.init:
        nn.load_state(generator, args.init)
    if engine.precision == "f32":
        nn.to_dtype(generator, np.float32)
    if args.workers > 1 and args.phase in ("gan", "both"):
        # Reference masks are the serial bottleneck of GAN training;
        # build them up front across worker processes.
        print(f"building reference masks with {args.workers} workers ...")
        dataset.precompute(workers=args.workers)

    with _run_record(args, "train", litho=litho, conditions=conditions,
                     seed=args.seed,
                     params={"phase": args.phase,
                             "iterations": args.iterations,
                             "dataset_size": args.dataset_size,
                             "batch_size": args.batch_size,
                             "litho_weight": args.litho_weight,
                             "policy": args.policy}) as run:
        # Without an explicit --telemetry-dir the phase streams land in
        # the run directory, so `repro runs show` / `repro report` see
        # the training convergence curves and anomaly records.
        telemetry_dir = args.telemetry_dir
        if telemetry_dir is None and run is not None:
            telemetry_dir = run.dir

        def runtime(phase: str) -> RunConfig:
            checkpoint_dir = (os.path.join(args.checkpoint_dir, phase)
                              if args.checkpoint_dir else None)
            return RunConfig(checkpoint_dir=checkpoint_dir,
                             checkpoint_every=args.checkpoint_every,
                             keep_last=args.keep_last,
                             resume=args.resume,
                             telemetry_dir=telemetry_dir,
                             policy=args.policy,
                             max_grad_norm=args.max_grad_norm,
                             lr_backoff=args.lr_backoff)

        with _trace_to(args.trace_dir, "train"):
            if args.phase in ("pretrain", "both"):
                pretrainer = ILTGuidedPretrainer(generator, litho, config,
                                                 engine=engine,
                                                 conditions=conditions)
                history = pretrainer.train(dataset, args.iterations,
                                           verbose=args.verbose,
                                           runtime=runtime("pretrain"))
                final = (history.litho_error[-1]
                         if history.litho_error else float("nan"))
                print(f"pretrain: {history.iterations} iterations recorded, "
                      f"final litho error {final:.1f} "
                      f"({history.runtime_seconds:.2f}s)")
                if run is not None:
                    run.manifest.summary["pretrain"] = {
                        "iterations": history.iterations,
                        "final_litho_error": final,
                        "runtime_seconds": history.runtime_seconds}
            if args.phase in ("gan", "both"):
                discriminator = PairDiscriminator(
                    litho.grid, config.discriminator_channels,
                    rng=np.random.default_rng(args.seed + 1))
                if engine.precision == "f32":
                    # Both networks must share the compute dtype — a
                    # f64 discriminator would promote the adversarial
                    # loss (and the generator's gradients through it)
                    # back to double.
                    nn.to_dtype(discriminator, np.float32)
                trainer = GanOpcTrainer(generator, discriminator, config,
                                        litho_config=litho, engine=engine,
                                        conditions=conditions)
                history = trainer.train(dataset, args.iterations,
                                        verbose=args.verbose,
                                        runtime=runtime("gan"))
                final = (history.l2_to_reference[-1]
                         if history.l2_to_reference else float("nan"))
                print(f"gan: {history.iterations} iterations recorded, "
                      f"final l2 {final:.1f} "
                      f"({history.runtime_seconds:.2f}s)")
                if run is not None:
                    run.manifest.summary["gan"] = {
                        "iterations": history.iterations,
                        "final_l2": final,
                        "runtime_seconds": history.runtime_seconds}
        if run is not None:
            for phase in ("pretrain", "gan"):
                path = os.path.join(telemetry_dir or "", f"{phase}.jsonl")
                if telemetry_dir and os.path.isfile(path):
                    run.add_artifact(f"telemetry_{phase}", path)
            if args.checkpoint_dir:
                run.add_artifact("checkpoints", args.checkpoint_dir)
        if args.out:
            nn.save_state(generator, args.out)
            print(f"generator weights written to {args.out}")
            if run is not None:
                run.add_artifact("weights", args.out)
    return 0


def cmd_flow(args) -> int:
    from . import nn
    from .bench import write_pgm
    from .core import GanOpcConfig, GanOpcFlow, MaskGenerator
    from .ilt import ILTConfig
    from .litho import LithoSimulator
    from .metrics import evaluate_mask
    from .runtime import RunLogger

    if args.tiled:
        from .litho import LithoConfig
        from .tiling import tiled_flow
        tiling = _tiled_config(args)
        litho = LithoConfig.small(tiling.tile)
        _, target = _chip_target(args.clip, tiling, litho)
        config = GanOpcConfig.small(litho.grid)
        generator = MaskGenerator(config.generator_channels,
                                  rng=np.random.default_rng(0))
        nn.load_state(generator, args.checkpoint)
        pool = None
        if args.workers > 1:
            # Own the pool so its metrics registry (resource samples)
            # survives the run for telemetry emission below.
            from .parallel import WorkerPool
            from .parallel.flow import generator_payload
            pool = WorkerPool(args.workers, litho_config=litho,
                              precision=args.precision,
                              state=generator_payload(generator))
        try:
            with _run_record(args, "flow", litho=litho,
                             params={"clip": args.clip,
                                     "checkpoint": args.checkpoint,
                                     "tiled": True,
                                     "iterations": args.iterations,
                                     "tile_size": args.tile_size,
                                     "halo": args.halo}) as run:
                with _trace_to(args.trace_dir, "flow"):
                    result = tiled_flow(
                        generator, target, tiling, litho,
                        ILTConfig(max_iterations=args.iterations,
                                  patience=4),
                        workers=args.workers, precision=args.precision,
                        pool=pool)
                _record_tiled(run, result, "tiled-GAN-OPC")
                if args.telemetry_dir and result.pool_stats is not None:
                    import os
                    with RunLogger(
                            os.path.join(args.telemetry_dir, "flow.jsonl"),
                            "flow", append=True) as logger:
                        _emit_fleet_telemetry(
                            logger, result.pool_stats,
                            pool.registry if pool is not None else None)
        finally:
            if pool is not None:
                pool.shutdown()
        _print_tiled(result, args.out)
        return 0

    litho = _litho(args)
    engine = _engine(litho, args.precision)
    conditions = _conditions(args, litho)
    layout, target = _load_target(args.clip, litho.grid)
    config = GanOpcConfig.small(litho.grid)
    generator = MaskGenerator(config.generator_channels,
                              rng=np.random.default_rng(0))
    nn.load_state(generator, args.checkpoint)
    clip_name = layout.name or "clip"
    with _run_record(args, "flow", litho=litho, conditions=conditions,
                     params={"clip": args.clip,
                             "checkpoint": args.checkpoint,
                             "iterations": args.iterations}) as run:
        logger = None
        if args.telemetry_dir:
            import os
            logger = RunLogger(os.path.join(args.telemetry_dir,
                                            "flow.jsonl"),
                               "flow", append=True)
        elif run is not None:
            logger = run.logger
        flow = GanOpcFlow(generator, litho,
                          ILTConfig(max_iterations=args.iterations,
                                    patience=4,
                                    pw_objective=args.pw_objective),
                          engine=engine, logger=logger,
                          conditions=conditions)
        if run is not None:
            flow.refiner.logger = run.logger
            flow.refiner.quality_context = {"clip": clip_name,
                                            "method": "GAN-OPC",
                                            "stage": "refinement"}
        stats_before = engine.stats.snapshot()
        with _trace_to(args.trace_dir, "flow") as tracer:
            result = flow.optimize(target)
            if tracer is not None and logger is not None:
                logger.span_summary(tracer.summary(),
                                    wall_seconds=tracer.wall_seconds(),
                                    coverage=tracer.coverage())
        condition_engine = None
        if conditions is not None:
            from .litho import LithoEngine
            condition_engine = LithoEngine.for_conditions(engine.kernels,
                                                          conditions,
                                                          engine.precision)
        evaluation = evaluate_mask(LithoSimulator(litho, engine=engine),
                                   result.mask, target,
                                   layout=layout, name=clip_name,
                                   runtime_seconds=result.runtime_seconds,
                                   condition_engine=condition_engine)
        write_pgm(result.mask, args.out)
        if run is not None:
            from .runs import clip_metrics
            run.logger.clip_result(
                clip_name, "GAN-OPC", clip_metrics(evaluation),
                runtime_seconds=result.runtime_seconds,
                stage_seconds={
                    "generation": result.generation_seconds,
                    "refinement": result.refinement_seconds},
                epe_hotspots=evaluation.epe_hotspots)
            run.manifest.summary["litho"] = engine.stats.delta(stats_before)
            run.add_artifact("mask", args.out)
            run.import_file("clip", args.clip)
    print(f"generation: {result.generation_seconds:.3f}s, "
          f"refinement: {result.refinement_seconds:.3f}s "
          f"({result.ilt_result.iterations} steps)")
    for key, value in evaluation.as_dict().items():
        print(f"{key}: {value}")
    print(f"mask written to {args.out}")
    return 0


def cmd_profile(args) -> int:
    """Profile a small end-to-end GAN-OPC flow run.

    Enables the span tracer and the per-op autograd profiler, runs
    generator inference + ILT refinement on one clip, then prints the
    span/op/module tables and writes the Chrome trace (Perfetto) plus
    the JSONL span stream under ``--trace-dir``.
    """
    import os
    import time

    from . import nn
    from .core import GanOpcConfig, GanOpcFlow, MaskGenerator
    from .ilt import ILTConfig
    from .obs import profiler, trace

    os.makedirs(args.trace_dir, exist_ok=True)
    spans_path = os.path.join(args.trace_dir, "spans.jsonl")
    tracer = trace.enable(jsonl_path=spans_path)
    prof = profiler.enable()
    wall_started = time.perf_counter()
    try:
        with trace.span("profile.setup"):
            litho = _litho(args)
            engine = _engine(litho, args.precision)
            engine_before = engine.stats.snapshot()
            if args.clip:
                _, target = _load_target(args.clip, litho.grid)
            else:
                from .geometry import binarize, rasterize
                from .layoutgen import LayoutSynthesizer, TopologyConfig
                topo = TopologyConfig(
                    extent=litho.extent_nm,
                    margin=min(120.0, litho.extent_nm / 8.0))
                clip = LayoutSynthesizer(topo).generate_batch(
                    1, seed=args.seed)[0]
                target = binarize(rasterize(clip, litho.grid))
            config = GanOpcConfig.small(litho.grid)
            generator = MaskGenerator(config.generator_channels,
                                      rng=np.random.default_rng(args.seed))
            if args.checkpoint:
                nn.load_state(generator, args.checkpoint)
            flow = GanOpcFlow(
                generator, litho,
                ILTConfig(max_iterations=args.iterations, patience=4),
                engine=engine)
        with trace.span("profile.flow"):
            result = flow.optimize(target)
        pool_stats = None
        if args.workers > 1:
            # Fan a small per-clip ILT batch across the pool so the
            # profile shows per-worker utilization alongside the
            # single-process tables.
            from .parallel import parallel_ilt
            with trace.span("profile.parallel", workers=args.workers):
                batch = np.stack([target] * (2 * args.workers))
                parallel_result = parallel_ilt(
                    batch, litho,
                    ILTConfig(max_iterations=args.iterations, patience=4),
                    workers=args.workers, precision=args.precision)
                pool_stats = parallel_result.pool_stats
        parent_engine_delta = engine.stats.delta(engine_before)
    finally:
        wall = time.perf_counter() - wall_started
        profiler.disable()
        trace.disable()
    chrome_path = tracer.write_chrome_trace(
        os.path.join(args.trace_dir, "trace.json"))

    coverage = tracer.coverage(wall)
    print(trace.format_span_table(tracer.summary(), wall))
    print()
    print(prof.table())
    if prof.module_stats():
        print()
        print(prof.module_table())
    print()
    print(f"flow: generation {result.generation_seconds:.3f}s, "
          f"refinement {result.refinement_seconds:.3f}s "
          f"({result.ilt_result.iterations} steps), l2 {result.l2:.1f}")
    print(f"wall {wall:.3f}s; top-level spans cover "
          f"{100.0 * coverage:.1f}% of wall")
    if pool_stats is not None:
        print()
        print(pool_stats.format_table())
        # Fleet view: parent + worker engine counters must reconcile
        # 1:1 with the merged litho span counts (DESIGN.md §13).
        from .obs.aggregate import format_engine_table, reconcile
        combined = dict(pool_stats.fleet.engine_totals)
        for key, value in parent_engine_delta.items():
            combined[key] = combined.get(key, 0.0) + value
        merged = pool_stats.fleet.merged_summary(tracer.summary())
        print()
        print(format_engine_table(combined,
                                  title="litho engine (parent + workers)"))
        print("engine/span reconciliation:")
        for counter, entry in reconcile(combined, merged).items():
            status = "ok" if entry["match"] else "MISMATCH"
            print(f"  {counter:>15}: stats {entry['stats']:>6d}  "
                  f"spans {entry['spans']:>6d}  [{status}]")
    if args.metrics_out:
        from .obs import default_registry
        from .obs.export import write_openmetrics
        write_openmetrics([engine.metrics, default_registry()],
                          args.metrics_out)
        print(f"openmetrics exposition written to {args.metrics_out}")
    print(f"chrome trace written to {chrome_path} "
          f"(load in https://ui.perfetto.dev)")
    print(f"span stream written to {spans_path}")
    return 0


def cmd_monitor(args) -> int:
    """Run a tiled job with live fleet monitoring.

    Drives ``tiled_ilt`` (or ``tiled_flow`` with ``--checkpoint``)
    through an explicitly owned :class:`WorkerPool` and renders a live
    status line from the per-tile progress callback: tiles done/total,
    elapsed, ETA, pool utilization, and watchdog stall count.  The
    pool's metrics registry (task gauges + /proc resource samples) can
    be served over HTTP (``--metrics-port``) or written as OpenMetrics
    text (``--metrics-out``); ``--trace-dir`` captures the merged
    pid-laned Chrome trace and ``--telemetry-dir`` records
    ``worker_span_summary``/``resource_sample`` JSONL events.
    """
    import os
    import time

    from .ilt import ILTConfig
    from .litho import LithoConfig
    from .parallel import WorkerPool
    from .tiling import tiled_flow, tiled_ilt

    tiling = _tiled_config(args)
    litho = LithoConfig.small(tiling.tile)
    _, target = _chip_target(args.clip, tiling, litho)
    generator = None
    state = None
    if args.checkpoint:
        from . import nn
        from .core import GanOpcConfig, MaskGenerator
        from .parallel.flow import generator_payload
        config = GanOpcConfig.small(litho.grid)
        generator = MaskGenerator(config.generator_channels,
                                  rng=np.random.default_rng(0))
        nn.load_state(generator, args.checkpoint)
        state = generator_payload(generator)

    pool = WorkerPool(max(args.workers, 1), litho_config=litho,
                      precision=args.precision, state=state,
                      stall_after=args.stall_after)
    server = None
    if args.metrics_port is not None:
        from .obs.export import MetricsServer
        server = MetricsServer([pool.registry],
                               port=args.metrics_port).start()
        print(f"serving metrics at {server.url}")

    started = time.perf_counter()
    is_tty = sys.stdout.isatty()
    last_print = [0.0]

    def progress(done: int, total: int, pid: int, seconds: float) -> None:
        now = time.perf_counter()
        elapsed = now - started
        rate = done / elapsed if elapsed > 0 else 0.0
        eta = (total - done) / rate if rate > 0 else float("inf")
        busy = pool.stats.total_busy_seconds
        util = (busy / (elapsed * pool.workers)
                if elapsed > 0 and pool.workers else 0.0)
        line = (f"tiles {done:>4d}/{total:<4d}  elapsed {elapsed:7.1f}s  "
                f"eta {eta:7.1f}s  workers {pool.workers}  "
                f"util {100.0 * util:5.1f}%  "
                f"stalls {len(pool.stats.stalls)}")
        if is_tty:
            sys.stdout.write("\r" + line)
            if done == total:
                sys.stdout.write("\n")
            sys.stdout.flush()
        elif done == total or now - last_print[0] >= args.update_every:
            last_print[0] = now
            print(line, flush=True)

    try:
        with _trace_to(args.trace_dir, "monitor"):
            if generator is not None:
                result = tiled_flow(
                    generator, target, tiling, litho,
                    ILTConfig(max_iterations=args.iterations, patience=4),
                    workers=pool.workers, precision=args.precision,
                    pool=pool, progress=progress)
            else:
                result = tiled_ilt(
                    target, tiling, litho,
                    ILTConfig(max_iterations=args.iterations),
                    workers=pool.workers, precision=args.precision,
                    pool=pool, progress=progress)
        _print_tiled(result, args.out)
        stragglers = pool.stats.stragglers()
        if stragglers:
            print(f"stragglers (> 3x median "
                  f"{pool.stats.median_task_seconds():.3f}s):")
            for pid, seconds in stragglers:
                print(f"  pid {pid}: {seconds:.3f}s")
        for event in pool.stats.stalls:
            print(f"stall: pid {event.pid} task #{event.task_seq} silent "
                  f"for {event.gap_seconds:.1f}s")
        if args.metrics_out:
            from .obs.export import write_openmetrics
            write_openmetrics([pool.registry], args.metrics_out)
            print(f"openmetrics exposition written to {args.metrics_out}")
        if args.telemetry_dir:
            from .runtime import RunLogger
            with RunLogger(
                    os.path.join(args.telemetry_dir, "monitor.jsonl"),
                    "monitor") as logger:
                _emit_fleet_telemetry(logger, pool.stats, pool.registry)
            print(f"telemetry written to "
                  f"{os.path.join(args.telemetry_dir, 'monitor.jsonl')}")
    finally:
        if server is not None:
            server.stop()
        pool.shutdown()
    return 0


def cmd_table2(args) -> int:
    from .bench import ExperimentConfig, Pipeline, run_table2, train_generators
    from .bench.iccad13 import iccad13_suite

    config = {"quick": ExperimentConfig.quick,
              "medium": ExperimentConfig.medium,
              "full": ExperimentConfig}[args.scale]()
    pipeline = Pipeline.build(config, precision=args.precision)
    conditions = _conditions(args, pipeline.litho)
    clips = None
    if args.clips:
        wanted = [name.strip() for name in args.clips.split(",")
                  if name.strip()]
        suite = {clip.name: clip for clip in iccad13_suite(pipeline.litho)}
        unknown = [name for name in wanted if name not in suite]
        if unknown:
            print(f"error: unknown clip(s) {', '.join(unknown)} "
                  f"(suite: {', '.join(suite)})", file=sys.stderr)
            return 2
        clips = [suite[name] for name in wanted]
    with _run_record(args, "table2", litho=pipeline.litho,
                     conditions=conditions, seed=config.seed,
                     params={"scale": args.scale,
                             "clips": args.clips or "all",
                             "pw_objective": args.pw_objective}) as run:
        print(f"training generators at scale {args.scale!r} "
              f"(grid {config.grid}px) ...")
        if args.workers > 1:
            pipeline.dataset.precompute(workers=args.workers)
        generators = train_generators(pipeline, verbose=args.verbose)
        result = run_table2(pipeline, generators, clips=clips,
                            workers=args.workers,
                            conditions=conditions,
                            pw_objective=args.pw_objective,
                            logger=run.logger if run is not None else None)
        if run is not None:
            run.save_table2(result)
            run.manifest.summary["litho"] = dict(result.engine_stats)
            for method in result.columns:
                l2, pvb, rt = result.averages(method)
                run.manifest.summary[method] = {
                    "l2_nm2": l2, "pvband_nm2": pvb,
                    "runtime_seconds": rt}
        if args.quality_out:
            from .runs import (quality_record_from_table2,
                               write_quality_record)
            from .runs.store import git_revision
            from .litho.kernels import config_hash as litho_hash
            suite_name = (f"table2-{args.scale}"
                          + (f"-{args.clips}" if args.clips else ""))
            record = quality_record_from_table2(
                result, suite_name, git_rev=git_revision(),
                config_hash=litho_hash(pipeline.litho))
            write_quality_record(record, args.quality_out)
            print(f"quality record written to {args.quality_out}")
            if run is not None:
                run.add_artifact("quality_record", args.quality_out)
    print(result.table)
    print("per-stage runtime (mean seconds per clip):")
    for method in ("ILT", "GAN-OPC", "PGAN-OPC"):
        stages = result.stage_averages(method)
        print(f"  {method:>9}: generation {stages['generation']:8.3f}s   "
              f"refinement {stages['refinement']:8.3f}s")
    if result.pool_stats is not None:
        # The pool table already appends the fleet-summed engine table.
        print(result.pool_stats.format_table())
    elif result.engine_stats:
        print(result.engine_table())
    if result.has_window_metrics:
        print(f"process window ({conditions.describe()}, "
              f"objective {args.pw_objective!r}):")
        print(result.window_table())
    return 0


def cmd_runs(args) -> int:
    from .runs import (RunStore, RunStoreError, diff_runs, format_run_diff,
                       run_quality)

    store = RunStore(args.runs_dir)
    try:
        if args.runs_command == "list":
            manifests = store.runs()
            if not manifests:
                print(f"no runs in {store.root!r}")
                return 0
            print(f"{'run id':<34} {'command':<8} {'status':<9} "
                  f"{'git':<8} {'started':<20}")
            for m in manifests:
                print(f"{m.run_id:<34} {m.command:<8} {m.status:<9} "
                      f"{m.git_rev:<8} {m.started:<20}")
            return 0

        if args.runs_command == "show":
            run = store.resolve(args.run)
            m = run.manifest
            for key, value in sorted(m.config_fields().items()):
                print(f"{key}: {value}")
            print(f"status: {m.status} ({m.started} -> "
                  f"{m.finished or '...'})")
            print(f"argv: {' '.join(m.argv)}")
            for name, path in sorted(m.artifacts.items()):
                print(f"artifact {name}: {path}")
            quality = run_quality(run.dir)
            for method, metrics in sorted(quality.aggregates().items()):
                values = "  ".join(f"{key}={value:,.1f}"
                                   for key, value in sorted(metrics.items()))
                print(f"quality {method}: {values}")
            for series, points in sorted(quality.samples.items()):
                print(f"samples {series}: {len(points)} points "
                      f"(last objective "
                      f"{points[-1][1] if points else float('nan'):.4g})")
            if quality.anomalies:
                print(f"anomalies: {len(quality.anomalies)}")
                for record in quality.anomalies[:10]:
                    print(f"  {record.get('kind')}: "
                          f"iteration={record.get('iteration')} "
                          f"action={record.get('action')}")
            return 0

        # diff
        run_a = store.resolve(args.run_a)
        run_b = store.resolve(args.run_b)
        diff = diff_runs(run_a.manifest, run_quality(run_a.dir),
                         run_b.manifest, run_quality(run_b.dir))
        metrics = ([m.strip() for m in args.metrics.split(",")]
                   if args.metrics else None)
        print(format_run_diff(diff, metrics=metrics,
                              show_clips=not args.no_clips))
        return 0
    except RunStoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def cmd_report(args) -> int:
    from .runs import RunStore, RunStoreError, write_report

    store = RunStore(args.runs_dir)
    try:
        run = store.resolve(args.run)
        baseline = (store.resolve(args.baseline)
                    if args.baseline else None)
        path = write_report(run, args.out, baseline=baseline)
    except RunStoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"report written to {path} (run {run.manifest.run_id})")
    return 0


# ----------------------------------------------------------------------
def _add_precision(p) -> None:
    p.add_argument("--precision", choices=("f32", "f64"), default=None,
                   help="engine compute precision (default: "
                        "REPRO_PRECISION env or f64)")


def _add_backend(p) -> None:
    p.add_argument("--backend", choices=("numpy", "cupy"), default=None,
                   help="array-ops backend (default: REPRO_BACKEND env "
                        "or numpy); cupy requires a working GPU "
                        "installation")


def _add_workers(p) -> None:
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for parallelizable stages "
                        "(default: 1, serial)")


def _add_tiling(p, flag: bool = True) -> None:
    if flag:
        p.add_argument("--tiled", action="store_true",
                       help="decompose the layout into halo-overlap tiles "
                            "and stitch per-tile results (chip-scale runs)")
    p.add_argument("--tile-size", type=int, default=64,
                   help="tile window size in px, the litho engine grid "
                        "(default: 64)")
    p.add_argument("--halo", type=int, default=8,
                   help="overlap ring in px around each tile core "
                        "(default: 8)")
    p.add_argument("--blend", type=int, default=0,
                   help="feather width in px for stitching the relaxed "
                        "mask (default: 0, hard core crop)")


def _add_corners(p, default_objective: str = "nominal") -> None:
    choices = ("nominal", "weighted", "worst")
    if default_objective != "nominal":
        choices = ("weighted", "worst")
    p.add_argument("--corners", default=None,
                   help="process-window corner stack: a preset "
                        "(nominal/dose/window) or an explicit "
                        "'defocus:dose[:weight],...' list")
    p.add_argument("--pw-objective", choices=choices,
                   default=default_objective,
                   help="corner aggregation the optimizers descend "
                        f"(default: {default_objective})")


def _add_runs_dir(p, record: bool = True) -> None:
    p.add_argument("--runs-dir", default=None,
                   help="run-ledger directory (default: REPRO_RUNS_DIR "
                        "env or .repro_runs)")
    if record:
        p.add_argument("--no-run-record", action="store_true",
                       help="do not record this invocation in the "
                            "run ledger")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GAN-OPC reproduction: mask optimization toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("synthesize", help="generate random legal clips")
    p.add_argument("--count", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--grid", type=int, default=128)
    p.add_argument("--prefix", default="clip-")
    p.set_defaults(func=cmd_synthesize)

    p = sub.add_parser(
        "chip", help="synthesize a chip-scale layout for the tiled flow")
    p.add_argument("--cells", type=int, default=4,
                   help="cells per side (default: 4)")
    p.add_argument("--cell-extent", type=float, default=512.0,
                   help="cell side in nm (default: 512)")
    p.add_argument("--fill", type=float, default=0.9,
                   help="probability a cell receives geometry "
                        "(default: 0.9)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default="chip.glp")
    p.set_defaults(func=cmd_chip)

    p = sub.add_parser("simulate", help="simulate a mask against a clip")
    p.add_argument("clip", help="target layout (.glp)")
    p.add_argument("--mask", help="mask image (.pgm); default: the target")
    p.add_argument("--grid", type=int, default=128)
    p.add_argument("--out", help="write the wafer image here (.pgm)")
    _add_precision(p)
    _add_backend(p)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("ilt", help="ILT mask optimization for a clip")
    p.add_argument("clip", help="target layout (.glp)")
    p.add_argument("--grid", type=int, default=128)
    p.add_argument("--iterations", type=int, default=150)
    p.add_argument("--out", default="mask.pgm")
    _add_precision(p)
    _add_backend(p)
    _add_workers(p)
    _add_tiling(p)
    _add_runs_dir(p)
    p.set_defaults(func=cmd_ilt)

    p = sub.add_parser("sraf", help="insert assist features into a clip")
    p.add_argument("clip", help="target layout (.glp)")
    p.add_argument("--width", type=float, default=24.0)
    p.add_argument("--offset", type=float, default=80.0)
    p.add_argument("--out", default="assisted.glp")
    p.set_defaults(func=cmd_sraf)

    p = sub.add_parser(
        "train", help="train the GAN-OPC networks with the robustness "
                      "substrate (checkpoint/resume, guards, telemetry)")
    p.add_argument("--phase", choices=("pretrain", "gan", "both"),
                   default="pretrain")
    p.add_argument("--grid", type=int, default=64)
    p.add_argument("--iterations", type=int, default=50)
    p.add_argument("--dataset-size", type=int, default=16)
    p.add_argument("--batch-size", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--init", help="generator .npz checkpoint to start from")
    p.add_argument("--out", help="write final generator weights here (.npz)")
    p.add_argument("--checkpoint-dir",
                   help="training checkpoint directory (per-phase subdirs)")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   help="checkpoint every N iterations (0: only at the end)")
    p.add_argument("--keep-last", type=int, default=3,
                   help="checkpoints retained on disk")
    p.add_argument("--resume", action="store_true",
                   help="continue from the latest checkpoint, bit-exactly")
    p.add_argument("--telemetry-dir",
                   help="write JSONL run telemetry under this directory")
    p.add_argument("--policy", choices=("raise", "rollback", "skip"),
                   default="raise",
                   help="divergence policy on non-finite losses/gradients")
    p.add_argument("--max-grad-norm", type=float, default=None,
                   help="clip the global gradient norm of each update")
    p.add_argument("--lr-backoff", type=float, default=0.5,
                   help="learning-rate multiplier applied on rollback")
    p.add_argument("--trace-dir",
                   help="capture span traces (Chrome trace JSON + JSONL "
                        "stream) under this directory")
    p.add_argument("--litho-weight", type=float, default=0.0,
                   help="weight of the litho-guidance term in GAN "
                        "generator updates (0 disables it)")
    p.add_argument("--verbose", action="store_true")
    _add_precision(p)
    _add_backend(p)
    _add_workers(p)
    _add_corners(p, default_objective="weighted")
    _add_runs_dir(p)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("flow", help="GAN-OPC flow with a trained generator")
    p.add_argument("clip", help="target layout (.glp)")
    p.add_argument("checkpoint", help="generator .npz checkpoint")
    p.add_argument("--grid", type=int, default=128)
    p.add_argument("--iterations", type=int, default=100)
    p.add_argument("--telemetry-dir",
                   help="write JSONL flow telemetry under this directory")
    p.add_argument("--trace-dir",
                   help="capture span traces (Chrome trace JSON + JSONL "
                        "stream) under this directory")
    p.add_argument("--out", default="mask.pgm")
    _add_precision(p)
    _add_backend(p)
    _add_workers(p)
    _add_tiling(p)
    _add_corners(p)
    _add_runs_dir(p)
    p.set_defaults(func=cmd_flow)

    p = sub.add_parser(
        "profile", help="profile a small end-to-end flow: span tracer, "
                        "per-op autograd profiler, Chrome trace export")
    p.add_argument("--clip", help="target layout (.glp); default: "
                                  "synthesize one")
    p.add_argument("--checkpoint",
                   help="generator .npz checkpoint; default: random init")
    p.add_argument("--grid", type=int, default=64)
    p.add_argument("--iterations", type=int, default=20,
                   help="ILT refinement iteration cap")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace-dir", default="profile-trace",
                   help="output directory for trace.json and spans.jsonl")
    p.add_argument("--metrics-out",
                   help="write an OpenMetrics text exposition of the "
                        "engine/default metric registries to this file")
    _add_precision(p)
    _add_backend(p)
    _add_workers(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "monitor", help="run a tiled job under live fleet monitoring: "
                        "per-tile progress + ETA, pool utilization, "
                        "stall/straggler detection, metrics exposition")
    p.add_argument("clip", help="chip-scale layout (.glp)")
    p.add_argument("--checkpoint",
                   help="generator .npz checkpoint; monitors a tiled "
                        "GAN-OPC flow instead of tiled ILT")
    p.add_argument("--iterations", type=int, default=50,
                   help="per-tile iteration cap (default: 50)")
    p.add_argument("--out", help="write the stitched mask here (.pgm)")
    p.add_argument("--stall-after", type=float, default=5.0,
                   help="watchdog: flag an active task silent for this "
                        "many seconds (default: 5)")
    p.add_argument("--update-every", type=float, default=0.5,
                   help="progress print period in seconds when stdout "
                        "is not a tty (default: 0.5)")
    p.add_argument("--metrics-port", type=int, default=None,
                   help="serve OpenMetrics over HTTP on this port while "
                        "the run is live (0 picks a free port)")
    p.add_argument("--metrics-out",
                   help="write the final OpenMetrics text exposition of "
                        "the pool registry to this file")
    p.add_argument("--telemetry-dir",
                   help="write worker_span_summary/resource_sample JSONL "
                        "telemetry under this directory")
    p.add_argument("--trace-dir",
                   help="capture the merged pid-laned Chrome trace "
                        "under this directory")
    _add_precision(p)
    _add_backend(p)
    _add_workers(p)
    _add_tiling(p, flag=False)
    p.set_defaults(func=cmd_monitor)

    p = sub.add_parser("table2", help="run the Table 2 experiment")
    p.add_argument("--scale", choices=("quick", "medium", "full"),
                   default="medium")
    p.add_argument("--clips", default=None,
                   help="comma list of suite clip names to run "
                        "(default: the whole suite); the CI quality "
                        "gate uses a small deterministic subset")
    p.add_argument("--quality-out", default=None,
                   help="write the flat QUALITY_*.json gate record "
                        "here (input to "
                        "benchmarks/check_quality_regression.py)")
    p.add_argument("--verbose", action="store_true")
    _add_precision(p)
    _add_backend(p)
    _add_workers(p)
    _add_corners(p)
    _add_runs_dir(p)
    p.set_defaults(func=cmd_table2)

    p = sub.add_parser(
        "runs", help="inspect the run ledger: list runs, show one, "
                     "diff two (config + per-clip quality deltas)")
    runs_sub = p.add_subparsers(dest="runs_command", required=True)
    q = runs_sub.add_parser("list", help="list recorded runs")
    _add_runs_dir(q, record=False)
    q = runs_sub.add_parser("show", help="show one run's manifest and "
                                         "quality summary")
    q.add_argument("run", help="run id, unique prefix/substring, or "
                               "'latest'")
    _add_runs_dir(q, record=False)
    q = runs_sub.add_parser(
        "diff", help="config + quality + engine-counter deltas B vs A")
    q.add_argument("run_a", help="baseline run (A)")
    q.add_argument("run_b", help="candidate run (B)")
    q.add_argument("--metrics", default=None,
                   help="comma list restricting the aggregate metric "
                        "rows (default: all)")
    q.add_argument("--no-clips", action="store_true",
                   help="skip the per-clip delta section")
    _add_runs_dir(q, record=False)
    p.set_defaults(func=cmd_runs)

    p = sub.add_parser(
        "report", help="render a run to a self-contained static HTML "
                       "report (convergence, per-clip quality, EPE "
                       "hotspots, spans, anomalies)")
    p.add_argument("run", help="run id, unique prefix/substring, or "
                               "'latest'")
    p.add_argument("--baseline", default=None,
                   help="second run to compare against (bars + deltas)")
    p.add_argument("--out", default="report.html",
                   help="output HTML path (default: report.html)")
    _add_runs_dir(p, record=False)
    p.set_defaults(func=cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _apply_backend(args)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
