"""ICCAD-2013-contest-substitute benchmark clips.

The paper evaluates on the ten industrial 32 nm M1 clips of the ICCAD
2013 mask-optimization contest [23].  Those clips (and the contest's
``lithosim_v4``) are not redistributable, so this module synthesizes a
deterministic stand-in suite with matched *structure*:

* ten clips named ``iccad13-01`` .. ``iccad13-10``;
* pattern (union) areas matched to Table 2's "Area" column, scaled by
  ``(window / 2048 nm)^2`` so any simulation grid preserves relative
  clip difficulty;
* shapes drawn under the same Table 1 design rules as the training
  library but from a *disjoint* seed universe (the GAN never trains on
  benchmark clips).

:data:`PAPER_TABLE2` records the paper's reported numbers for
EXPERIMENTS.md-style paper-vs-measured comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..geometry.layout import Layout
from ..geometry.shapes import Rect
from ..layoutgen.topology import LayoutSynthesizer, TopologyConfig
from ..litho.config import LithoConfig

#: Paper Table 2, per clip: pattern area and the reported metrics of the
#: three methods (L2 and PVB in nm^2, runtime in seconds).
PAPER_TABLE2: Dict[str, Dict] = {
    "iccad13-01": {"area": 215344, "ilt": (49893, 65534, 1280), "gan": (54970, 64163, 380), "pgan": (52570, 56267, 358)},
    "iccad13-02": {"area": 169280, "ilt": (50369, 48230, 381), "gan": (46445, 56731, 374), "pgan": (42253, 50822, 368)},
    "iccad13-03": {"area": 213504, "ilt": (81007, 108608, 1123), "gan": (88899, 84308, 379), "pgan": (83663, 94498, 368)},
    "iccad13-04": {"area": 82560, "ilt": (20044, 28285, 1271), "gan": (18290, 29245, 376), "pgan": (19965, 28957, 377)},
    "iccad13-05": {"area": 281958, "ilt": (44656, 58835, 1120), "gan": (42835, 59727, 378), "pgan": (44733, 59328, 369)},
    "iccad13-06": {"area": 286234, "ilt": (57375, 48739, 391), "gan": (44313, 52627, 367), "pgan": (46062, 52845, 364)},
    "iccad13-07": {"area": 229149, "ilt": (37221, 43490, 406), "gan": (24481, 47652, 377), "pgan": (26438, 47981, 377)},
    "iccad13-08": {"area": 128544, "ilt": (19782, 22846, 388), "gan": (17399, 23769, 394), "pgan": (17690, 23564, 383)},
    "iccad13-09": {"area": 317581, "ilt": (55399, 66331, 1138), "gan": (53637, 66766, 427), "pgan": (56125, 65417, 383)},
    "iccad13-10": {"area": 102400, "ilt": (24381, 18097, 387), "gan": (9677, 20693, 395), "pgan": (9990, 19893, 366)},
}

#: Paper Table 2 averages: (L2, PVB, RT) per method.
PAPER_AVERAGES = {
    "ilt": (44012.7, 50899.5, 788.5),
    "gan": (40094.6, 50568.1, 384.7),
    "pgan": (39948.9, 49957.2, 371.3),
}

#: Window side (nm) the contest areas are referenced to.
PAPER_WINDOW_NM = 2048.0


@dataclass(frozen=True)
class BenchmarkClip:
    """One substitute benchmark case."""

    name: str
    layout: Layout
    target_area: float

    @property
    def area_error(self) -> float:
        """Relative deviation of the synthesized union area from the
        scaled Table 2 area."""
        return abs(self.layout.pattern_area - self.target_area) / self.target_area


def scaled_area(clip_id: int, window_nm: float) -> float:
    """Table 2 pattern area scaled to a ``window_nm`` clip window."""
    name = f"iccad13-{clip_id:02d}"
    area = PAPER_TABLE2[name]["area"]
    factor = (window_nm / PAPER_WINDOW_NM) ** 2
    return area * factor


def make_clip(clip_id: int, litho_config: Optional[LithoConfig] = None,
              tolerance: float = 0.1) -> BenchmarkClip:
    """Synthesize substitute clip ``clip_id`` (1-10) for a litho config.

    The generator is run at moderate density, then shapes are removed /
    the last shape trimmed until the union area matches the scaled
    Table 2 area within ``tolerance``.
    """
    if not 1 <= clip_id <= 10:
        raise ValueError(f"clip_id must be 1..10, got {clip_id}")
    litho_config = litho_config or LithoConfig.paper()
    window = litho_config.extent_nm
    target_area = scaled_area(clip_id, window)
    name = f"iccad13-{clip_id:02d}"

    topo = TopologyConfig(extent=window,
                          margin=min(120.0, window / 8.0),
                          track_skip_probability=0.1,
                          stub_probability=0.2)
    synthesizer = LayoutSynthesizer(topo)
    rng = np.random.default_rng(np.random.SeedSequence([2013_0000, clip_id]))

    layout = synthesizer.generate(rng, name=name)
    layout = _match_area(layout, target_area, rng, topo)
    clip = BenchmarkClip(name=name, layout=layout, target_area=target_area)
    return clip


def iccad13_suite(litho_config: Optional[LithoConfig] = None,
                  tolerance: float = 0.1,
                  workers: int = 1) -> List[BenchmarkClip]:
    """The full ten-clip substitute suite.

    ``workers > 1`` synthesizes clips in parallel processes; each clip
    is seeded independently, so the suite is identical regardless of
    worker count.
    """
    if workers > 1:
        from ..parallel.pool import WorkerPool
        from ..parallel.raster import _benchmark_clip_task
        litho_config = litho_config or LithoConfig.paper()
        with WorkerPool(workers, litho_config=litho_config) as pool:
            return pool.map(_benchmark_clip_task,
                            [(i, litho_config, tolerance)
                             for i in range(1, 11)],
                            label="parallel.clips")
    return [make_clip(i, litho_config, tolerance) for i in range(1, 11)]


# ----------------------------------------------------------------------
def _match_area(layout: Layout, target_area: float,
                rng: np.random.Generator,
                topo: TopologyConfig) -> Layout:
    """Shrink shapes until the union area approximates the target.

    Wire run-lengths are scaled by a global factor found by bisection,
    which preserves the clip's shape *count* and structure (unlike
    dropping shapes).  Trims are anchored at ends that touch another
    shape so L/T junctions stay connected.  If even fully shortened
    wires exceed the target, whole shapes are dropped and the bisection
    retried.
    """
    min_len = topo.rules.critical_dimension
    rects = sorted(layout.rects, key=lambda r: -r.area)

    while True:
        anchors = _trim_anchors(rects)
        area_min = _shrunk_area(layout.extent, rects, anchors, 0.0, min_len)
        if area_min <= target_area or len(rects) == 1:
            break
        rects = rects[:-1]  # drop the smallest shape and retry

    # Bisect the length factor in [0, 1]; monotone in union area.
    lo, hi = 0.0, 1.0
    anchors = _trim_anchors(rects)
    for _ in range(40):
        mid = 0.5 * (lo + hi)
        if _shrunk_area(layout.extent, rects, anchors, mid, min_len) > target_area:
            hi = mid
        else:
            lo = mid
    factor = lo
    final = _shrink_rects(rects, anchors, factor, min_len)
    return Layout(extent=layout.extent, rects=final, name=layout.name)


def _trim_anchors(rects: List[Rect]) -> List[str]:
    """Per rect, which end to preserve while trimming.

    ``"lo"``/``"hi"`` anchor the rect's low/high run-direction end
    (because a neighbor touches there); ``"center"`` trims both ends.
    """
    anchors: List[str] = []
    for i, rect in enumerate(rects):
        lo_touch = hi_touch = False
        for j, other in enumerate(rects):
            if i == j or not rect.touches(other):
                continue
            ox, oy = other.center
            cx, cy = rect.center
            along = ox - cx if rect.is_horizontal else oy - cy
            if along < 0:
                lo_touch = True
            else:
                hi_touch = True
        if lo_touch and not hi_touch:
            anchors.append("lo")
        elif hi_touch and not lo_touch:
            anchors.append("hi")
        else:
            anchors.append("center")
    return anchors


def _shrink_rects(rects: List[Rect], anchors: List[str], factor: float,
                  min_len: float) -> List[Rect]:
    """Scale each rect's run length by ``factor`` (floor ``min_len``)."""
    out: List[Rect] = []
    for rect, anchor in zip(rects, anchors):
        length = rect.width if rect.is_horizontal else rect.height
        new_len = max(length * factor, min(min_len, length))
        if rect.is_horizontal:
            if anchor == "lo":
                x0, x1 = rect.x0, rect.x0 + new_len
            elif anchor == "hi":
                x0, x1 = rect.x1 - new_len, rect.x1
            else:
                cx = 0.5 * (rect.x0 + rect.x1)
                x0, x1 = cx - new_len / 2.0, cx + new_len / 2.0
            out.append(Rect(x0, rect.y0, x1, rect.y1))
        else:
            if anchor == "lo":
                y0, y1 = rect.y0, rect.y0 + new_len
            elif anchor == "hi":
                y0, y1 = rect.y1 - new_len, rect.y1
            else:
                cy = 0.5 * (rect.y0 + rect.y1)
                y0, y1 = cy - new_len / 2.0, cy + new_len / 2.0
            out.append(Rect(rect.x0, y0, rect.x1, y1))
    return out


def _shrunk_area(extent: float, rects: List[Rect], anchors: List[str],
                 factor: float, min_len: float) -> float:
    return Layout(extent=extent,
                  rects=_shrink_rects(rects, anchors, factor, min_len)
                  ).pattern_area
