"""``repro.bench`` — benchmark suite and experiment harness.

The ICCAD-2013-substitute clip set (:mod:`iccad13`, matched to Table
2's per-clip areas), the experiment harness regenerating the paper's
tables and figures (:mod:`harness`), dependency-free visualization
outputs (:mod:`visualize`), and machine-readable ``BENCH_*.json``
regression records (:mod:`record`).
"""

from .harness import (DefectComparison, ExperimentConfig, Pipeline,
                      Table2Result, TrainedGenerators, run_figure8,
                      run_figure9, run_table2, train_generators)
from .iccad13 import (PAPER_AVERAGES, PAPER_TABLE2, PAPER_WINDOW_NM,
                      BenchmarkClip, iccad13_suite, make_clip, scaled_area)
from .record import (BenchRecorder, BenchRecordError, load_record,
                     measure)
from .visualize import (ascii_curve, montage, overlay_comparison, read_pgm,
                        save_gallery, write_pgm)

__all__ = [
    "PAPER_TABLE2", "PAPER_AVERAGES", "PAPER_WINDOW_NM",
    "BenchmarkClip", "make_clip", "iccad13_suite", "scaled_area",
    "ExperimentConfig", "Pipeline", "TrainedGenerators",
    "train_generators", "Table2Result", "run_table2",
    "run_figure8", "run_figure9", "DefectComparison",
    "write_pgm", "read_pgm", "montage", "ascii_curve",
    "overlay_comparison", "save_gallery",
    "BenchRecorder", "BenchRecordError", "measure", "load_record",
]
