"""Dependency-free visualization outputs for the experiments.

The paper's Figures 7-9 are a training-curve plot and image galleries.
Without matplotlib, curves are rendered as ASCII charts and images as
binary PGM files (readable by any image viewer and by numpy), which is
enough to inspect masks, wafer images and their differences.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

import numpy as np


def write_pgm(image: np.ndarray, path: str) -> None:
    """Write a float image in [0, 1] (or binary) as an 8-bit PGM file."""
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError(f"PGM needs a 2-D image, got shape {image.shape}")
    data = np.clip(image, 0.0, 1.0)
    pixels = (data * 255).astype(np.uint8)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "wb") as handle:
        header = f"P5\n{image.shape[1]} {image.shape[0]}\n255\n"
        handle.write(header.encode("ascii"))
        handle.write(pixels.tobytes())


def read_pgm(path: str) -> np.ndarray:
    """Read a binary 8-bit PGM written by :func:`write_pgm`."""
    with open(path, "rb") as handle:
        magic = handle.readline().strip()
        if magic != b"P5":
            raise ValueError(f"not a binary PGM file: {path}")
        dims = handle.readline().split()
        width, height = int(dims[0]), int(dims[1])
        maxval = int(handle.readline())
        raw = handle.read(width * height)
    return np.frombuffer(raw, dtype=np.uint8).reshape(height, width) / maxval


def montage(images: Sequence[np.ndarray], columns: int,
            pad: int = 2, pad_value: float = 0.5) -> np.ndarray:
    """Tile equally-sized images into a grid (Figure 8-style gallery)."""
    if not images:
        raise ValueError("montage of no images")
    shape = images[0].shape
    for image in images:
        if image.shape != shape:
            raise ValueError("montage images must share one shape")
    if columns < 1:
        raise ValueError("columns must be >= 1")
    rows = -(-len(images) // columns)
    h, w = shape
    out = np.full((rows * h + (rows + 1) * pad,
                   columns * w + (columns + 1) * pad), pad_value)
    for index, image in enumerate(images):
        r, c = divmod(index, columns)
        y = pad + r * (h + pad)
        x = pad + c * (w + pad)
        out[y:y + h, x:x + w] = image
    return out


def ascii_curve(values: Sequence[float], width: int = 70, height: int = 14,
                title: Optional[str] = None,
                label: str = "") -> str:
    """Render a 1-D series as an ASCII chart (Figure 7 stand-in)."""
    values = [float(v) for v in values]
    if not values:
        raise ValueError("empty series")
    if len(values) > width:
        # Downsample by block means to the chart width.
        edges = np.linspace(0, len(values), width + 1).astype(int)
        values = [float(np.mean(values[a:b])) for a, b in zip(edges[:-1], edges[1:])
                  if b > a]
    vmax, vmin = max(values), min(values)
    span = vmax - vmin or 1.0
    grid = [[" "] * len(values) for _ in range(height)]
    for x, value in enumerate(values):
        y = int(round((vmax - value) / span * (height - 1)))
        grid[y][x] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{vmax:12.2f} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 12 + " |" + "".join(row))
    lines.append(f"{vmin:12.2f} +" + "".join(grid[-1]))
    lines.append(" " * 14 + f"{label} (n={len(values)})")
    return "\n".join(lines)


def overlay_comparison(target: np.ndarray, wafer: np.ndarray) -> np.ndarray:
    """Grayscale overlay: target-only 0.33, wafer-only 0.66, overlap 1.

    Makes line-end pull-back and bridging visible in a single image
    (Figure 9-style detail views).
    """
    target = np.asarray(target) > 0.5
    wafer = np.asarray(wafer) > 0.5
    out = np.zeros(target.shape, dtype=float)
    out[target & ~wafer] = 0.33
    out[wafer & ~target] = 0.66
    out[wafer & target] = 1.0
    return out


def save_gallery(rows: List[List[np.ndarray]], path: str,
                 pad: int = 3) -> None:
    """Save a Figure 8-style gallery: one row per image kind, one
    column per clip."""
    flat: List[np.ndarray] = []
    columns = len(rows[0])
    for row in rows:
        if len(row) != columns:
            raise ValueError("gallery rows must have equal lengths")
        flat.extend(row)
    write_pgm(montage(flat, columns=columns, pad=pad), path)
