"""Experiment harness regenerating the paper's tables and figures.

Each public function reproduces one experiment:

* :func:`train_generators` — trains GAN-OPC (no pre-training) and
  PGAN-OPC (ILT-guided pre-training) generators on a synthesized
  library, returning the **Figure 7** training curves;
* :func:`run_table2` — per-clip L2 / PVB / runtime of ILT [7] vs
  GAN-OPC vs PGAN-OPC over the ICCAD-13-substitute suite (**Table 2**);
* :func:`run_figure8` — mask / wafer-image gallery rows;
* :func:`run_figure9` — defect detail comparison (bridges / line-end
  pull-backs) between ILT and PGAN-OPC wafers.

The :class:`ExperimentConfig` scales everything (grid, dataset size,
iteration counts) so the same harness drives quick CI benchmarks and
long paper-scale runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.config import GanOpcConfig
from ..core.discriminator import PairDiscriminator
from ..core.flow import GanOpcFlow
from ..core.gan_opc import GanOpcTrainer, TrainingHistory
from ..core.generator import MaskGenerator
from ..core.pretrain import ILTGuidedPretrainer, PretrainHistory
from ..geometry.raster import rasterize
from ..ilt.optimizer import ILTConfig, ILTOptimizer
from ..layoutgen.dataset import SyntheticDataset
from ..litho.conditions import ConditionSet
from ..litho.config import LithoConfig
from ..litho.engine import LithoEngine
from ..litho.kernels import KernelSet, build_kernels
from ..litho.simulator import LithoSimulator
from ..metrics.defects import detect_bridges, detect_necks
from ..metrics.report import MaskEvaluation, comparison_table, evaluate_mask
from .iccad13 import BenchmarkClip, iccad13_suite
from .visualize import overlay_comparison


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale knobs shared by all experiments.

    The defaults (128 px, ~6 CPU-minutes end to end) are the smallest
    scale at which Table 2's qualitative shape reproduces — at 128 px
    the substitute clips are complex enough that from-scratch ILT
    plateaus, so the generator warm start wins on both L2 and runtime
    as in the paper.  ``medium()``/``quick()`` scale down for faster
    runs; ``paper()`` records the full-scale settings for reference.
    """

    grid: int = 128
    dataset_size: int = 24
    pretrain_iterations: int = 120
    gan_iterations: int = 300
    ilt_iterations: int = 150
    refine_iterations: int = 100
    seed: int = 0

    @staticmethod
    def paper() -> "ExperimentConfig":
        """The paper's scale: 256 px, 4000 clips, ~10 h of training."""
        return ExperimentConfig(grid=256, dataset_size=4000,
                                pretrain_iterations=3000,
                                gan_iterations=12000,
                                ilt_iterations=400, refine_iterations=100)

    @staticmethod
    def medium() -> "ExperimentConfig":
        """~1-minute scale (64 px); runtime/PVB shape holds, L2 ratio
        hovers near 1.0 because scratch ILT is near-optimal on small
        clips."""
        return ExperimentConfig(grid=64, dataset_size=32,
                                pretrain_iterations=150,
                                gan_iterations=500,
                                ilt_iterations=200, refine_iterations=150)

    @staticmethod
    def quick() -> "ExperimentConfig":
        """Smoke-test scale for CI."""
        return ExperimentConfig(grid=32, dataset_size=6,
                                pretrain_iterations=10, gan_iterations=20,
                                ilt_iterations=60, refine_iterations=20)


@dataclass
class Pipeline:
    """Shared experiment state: litho model, dataset, one shared engine.

    The :class:`LithoEngine` is constructed once and every consumer —
    simulator, ILT baseline, flow refiners, pre-trainer — runs on it,
    so kernels are decomposed once and the cached adjoint spectra are
    shared across all clips of every experiment.
    """

    config: ExperimentConfig
    litho: LithoConfig
    kernels: KernelSet
    engine: LithoEngine
    dataset: SyntheticDataset
    simulator: LithoSimulator

    @staticmethod
    def build(config: Optional[ExperimentConfig] = None,
              precision: Optional[str] = None) -> "Pipeline":
        """Build the shared state; ``precision`` selects the engine's
        compute dtype (``"f32"``/``"f64"``, default environment)."""
        config = config or ExperimentConfig()
        litho = LithoConfig.small(config.grid)
        kernels = build_kernels(litho)
        engine = LithoEngine.for_kernels(kernels, precision=precision)
        dataset = SyntheticDataset(litho, size=config.dataset_size,
                                   seed=config.seed, kernels=kernels)
        return Pipeline(config=config, litho=litho, kernels=kernels,
                        engine=engine, dataset=dataset,
                        simulator=LithoSimulator(litho, engine=engine))

    def gan_config(self) -> GanOpcConfig:
        return GanOpcConfig.small(self.config.grid)


@dataclass
class TrainedGenerators:
    """Both flow variants plus their Figure 7 curves."""

    gan: MaskGenerator
    pgan: MaskGenerator
    gan_history: TrainingHistory
    pgan_history: TrainingHistory
    pretrain_history: PretrainHistory


def train_generators(pipeline: Pipeline,
                     verbose: bool = False) -> TrainedGenerators:
    """Train GAN-OPC and PGAN-OPC generators (Figure 7 experiment).

    Both runs share the dataset, architecture and seeds; they differ
    only in whether Algorithm 2 pre-training precedes Algorithm 1 —
    isolating the paper's pre-training claim.
    """
    cfg = pipeline.config
    gan_cfg = pipeline.gan_config()

    # --- GAN-OPC: random init, adversarial training only.
    gen_gan = MaskGenerator(gan_cfg.generator_channels,
                            rng=np.random.default_rng(cfg.seed + 1))
    disc_gan = PairDiscriminator(cfg.grid, gan_cfg.discriminator_channels,
                                 rng=np.random.default_rng(cfg.seed + 2))
    trainer = GanOpcTrainer(gen_gan, disc_gan, gan_cfg)
    gan_history = trainer.train(pipeline.dataset, cfg.gan_iterations,
                                rng=np.random.default_rng(cfg.seed + 3),
                                verbose=verbose)

    # --- PGAN-OPC: identical init, Algorithm 2 first.
    gen_pgan = MaskGenerator(gan_cfg.generator_channels,
                             rng=np.random.default_rng(cfg.seed + 1))
    pretrainer = ILTGuidedPretrainer(gen_pgan, pipeline.litho, gan_cfg,
                                     engine=pipeline.engine)
    pretrain_history = pretrainer.train(
        pipeline.dataset, cfg.pretrain_iterations,
        rng=np.random.default_rng(cfg.seed + 4), verbose=verbose)
    disc_pgan = PairDiscriminator(cfg.grid, gan_cfg.discriminator_channels,
                                  rng=np.random.default_rng(cfg.seed + 2))
    trainer = GanOpcTrainer(gen_pgan, disc_pgan, gan_cfg)
    pgan_history = trainer.train(pipeline.dataset, cfg.gan_iterations,
                                 rng=np.random.default_rng(cfg.seed + 3),
                                 verbose=verbose)

    return TrainedGenerators(gan=gen_gan, pgan=gen_pgan,
                             gan_history=gan_history,
                             pgan_history=pgan_history,
                             pretrain_history=pretrain_history)


# ----------------------------------------------------------------------
# Table 2
# ----------------------------------------------------------------------
#: Bump when the Table2Result persistence layout changes.
TABLE2_SCHEMA_VERSION = 1


def _encode_mask(mask: np.ndarray) -> Dict:
    """Lossless strict-JSON encoding of a mask image.

    Binary masks (the Table 2 case) pack to 1 bit/pixel; anything else
    keeps raw float64 bytes.  Both are base64 so the JSON stays small
    and exact.
    """
    import base64
    mask = np.asarray(mask)
    if mask.ndim != 2:
        raise ValueError(f"mask must be 2-D, got shape {mask.shape}")
    values = np.unique(mask)
    if np.isin(values, (0.0, 1.0)).all():
        payload = np.packbits(mask.astype(np.uint8).ravel()).tobytes()
        encoding = "bits"
    else:
        payload = np.ascontiguousarray(mask, dtype=np.float64).tobytes()
        encoding = "f64"
    return {"encoding": encoding, "shape": [int(s) for s in mask.shape],
            "data": base64.b64encode(payload).decode("ascii")}


def _decode_mask(entry: Dict) -> np.ndarray:
    import base64
    payload = base64.b64decode(entry["data"])
    shape = tuple(entry["shape"])
    count = int(np.prod(shape))
    if entry["encoding"] == "bits":
        bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8),
                             count=count)
        return bits.reshape(shape).astype(float)
    if entry["encoding"] == "f64":
        return np.frombuffer(payload, dtype=np.float64).reshape(shape).copy()
    raise ValueError(f"unknown mask encoding {entry['encoding']!r}")


@dataclass
class Table2Result:
    """Everything the Table 2 experiment produces."""

    columns: Dict[str, List[MaskEvaluation]]
    masks: Dict[str, List[np.ndarray]]
    clips: List[BenchmarkClip]
    table: str = ""
    #: per-method, per-clip runtime split: ``{"generation": s,
    #: "refinement": s}``.  ILT has no generator, so its generation
    #: stage is 0 and refinement carries the whole runtime — making the
    #: stage columns directly comparable across methods.
    stage_seconds: Dict[str, List[Dict[str, float]]] = field(
        default_factory=dict)
    #: litho-engine counter totals over the whole experiment —
    #: ``forward_calls/masks/seconds`` + ``gradient_*``.  Serial runs
    #: delta the pipeline engine's stats around the clip loop; parallel
    #: runs sum the per-task deltas every worker ships back, so the
    #: counts reconcile 1:1 with a serial run of the same experiment
    #: (the parity test in ``tests/bench``).
    engine_stats: Dict[str, float] = field(default_factory=dict)
    #: pool accounting for ``workers > 1`` runs (None for serial).
    pool_stats: Optional[object] = None

    def engine_table(self) -> str:
        """Fleet-summed engine counter table (empty if not recorded)."""
        if not self.engine_stats:
            return ""
        from ..obs.aggregate import format_engine_table
        return format_engine_table(self.engine_stats,
                                   title="litho engine (all processes)")

    def averages(self, method: str) -> Tuple[float, float, float]:
        evals = self.columns[method]
        return (float(np.mean([e.l2_nm2 for e in evals])),
                float(np.mean([e.pvband_nm2 for e in evals])),
                float(np.mean([e.runtime_seconds for e in evals])))

    def stage_averages(self, method: str) -> Dict[str, float]:
        """Mean per-clip seconds of each flow stage for ``method``."""
        stages = self.stage_seconds[method]
        return {stage: float(np.mean([s[stage] for s in stages]))
                for stage in ("generation", "refinement")}

    def ratio(self, method: str, baseline: str = "ILT") -> Tuple[float, float, float]:
        m = self.averages(method)
        b = self.averages(baseline)
        return tuple(x / y for x, y in zip(m, b))

    @property
    def has_window_metrics(self) -> bool:
        """True when the run evaluated a process-window corner stack."""
        evals = next(iter(self.columns.values()))
        return bool(evals) and evals[0].window_pvband_nm2 is not None

    def window_averages(self, method: str) -> Optional[Dict[str, float]]:
        """Mean window PVB / worst-corner L2 (nm^2) for ``method``, or
        ``None`` when the run carried no corner stack."""
        if not self.has_window_metrics:
            return None
        evals = self.columns[method]
        return {
            "window_pvband_nm2": float(np.mean(
                [e.window_pvband_nm2 for e in evals])),
            "worst_corner_l2_nm2": float(np.mean(
                [e.worst_corner_l2_nm2 for e in evals])),
        }

    def window_table(self) -> str:
        """Table 2 companion: per-method window PVB / worst-corner
        L2 / worst-corner EPE averages over the corner stack."""
        if not self.has_window_metrics:
            return ""
        lines = [f"{'method':<12} {'winPVB(nm2)':>14} {'worstL2(nm2)':>14} "
                 f"{'worstEPE':>9}"]
        for method, evals in self.columns.items():
            avg = self.window_averages(method)
            epes = [e.worst_corner_epe for e in evals
                    if e.worst_corner_epe is not None]
            epe = f"{float(np.mean(epes)):9.1f}" if epes else " " * 9
            lines.append(f"{method:<12} {avg['window_pvband_nm2']:14.1f} "
                         f"{avg['worst_corner_l2_nm2']:14.1f} {epe}")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        """Lossless strict-JSON form of the whole result.

        Evaluations (including window metrics and EPE hotspots) go
        through :meth:`MaskEvaluation.to_dict`, masks are base64
        bit-packed, clips round-trip through the GLP text format.
        ``pool_stats`` is a live accounting object and deliberately not
        serialized — ``engine_stats`` already carries the fleet totals.
        """
        from ..geometry import glp
        return {
            "schema": TABLE2_SCHEMA_VERSION,
            "columns": {method: [ev.to_dict() for ev in evals]
                        for method, evals in self.columns.items()},
            "masks": {method: [_encode_mask(mask) for mask in masks]
                      for method, masks in self.masks.items()},
            "clips": [{"name": clip.name,
                       "target_area": float(clip.target_area),
                       "glp": glp.dumps(clip.layout)}
                      for clip in self.clips],
            "table": self.table,
            "stage_seconds": self.stage_seconds,
            "engine_stats": self.engine_stats,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Table2Result":
        """Inverse of :meth:`to_dict` (``pool_stats`` comes back None)."""
        from ..geometry import glp
        schema = data.get("schema")
        if schema != TABLE2_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported table2 schema {schema!r} "
                f"(expected {TABLE2_SCHEMA_VERSION})")
        return cls(
            columns={method: [MaskEvaluation.from_dict(entry)
                              for entry in entries]
                     for method, entries in data["columns"].items()},
            masks={method: [_decode_mask(entry) for entry in entries]
                   for method, entries in data["masks"].items()},
            clips=[BenchmarkClip(name=entry["name"],
                                 layout=glp.loads(entry["glp"]),
                                 target_area=entry["target_area"])
                   for entry in data["clips"]],
            table=data.get("table", ""),
            stage_seconds={method: list(stages) for method, stages
                           in data.get("stage_seconds", {}).items()},
            engine_stats=dict(data.get("engine_stats", {})),
        )


def _emit_clip_results(logger, result: "Table2Result") -> None:
    """Stream one ``clip_result`` record per (method, clip) evaluation."""
    if logger is None:
        return
    from ..runs.quality import clip_metrics
    for method, evaluations in result.columns.items():
        for index, evaluation in enumerate(evaluations):
            stages = None
            if result.stage_seconds.get(method):
                stages = result.stage_seconds[method][index]
            logger.clip_result(
                evaluation.name, method, clip_metrics(evaluation),
                runtime_seconds=evaluation.runtime_seconds,
                stage_seconds=stages,
                epe_hotspots=evaluation.epe_hotspots)


def run_table2(pipeline: Pipeline, generators: TrainedGenerators,
               clips: Optional[List[BenchmarkClip]] = None,
               workers: int = 1,
               conditions: Optional[ConditionSet] = None,
               pw_objective: str = "nominal",
               logger=None) -> Table2Result:
    """ILT [7] vs GAN-OPC vs PGAN-OPC on the substitute suite.

    ``workers > 1`` evaluates one clip (all three methods) per worker
    process: generator weights are broadcast once per worker, result
    masks come back through shared memory, and per-clip results are
    identical to the serial loop in float64.

    ``conditions`` adds a process-window corner stack: every mask is
    additionally evaluated over the corners (window PVB, worst-corner
    L2/EPE columns), and when ``pw_objective`` is not ``"nominal"`` the
    optimizers also *descend* that corner aggregation instead of the
    nominal-only objective.

    ``logger`` (a :class:`~repro.runtime.telemetry.RunLogger`) streams
    quality telemetry into the run ledger: per-evaluation-point
    ``quality_sample`` records during each serial optimization and one
    ``clip_result`` record per (method, clip) at the end.  Parallel
    runs emit only the ``clip_result`` records (worker iteration
    samples stay in the workers).
    """
    cfg = pipeline.config
    clips = clips or iccad13_suite(pipeline.litho)
    if workers > 1:
        return _run_table2_parallel(pipeline, generators, clips, workers,
                                    conditions=conditions,
                                    pw_objective=pw_objective,
                                    logger=logger)

    condition_engine = (LithoEngine.for_conditions(pipeline.kernels,
                                                   conditions,
                                                   pipeline.engine.precision)
                        if conditions is not None else None)
    # With a nominal objective the corner stack is reporting-only: the
    # optimizers keep descending the paper's nominal error.
    descend_conditions = conditions if pw_objective != "nominal" else None
    ilt = ILTOptimizer(pipeline.litho,
                       ILTConfig(max_iterations=cfg.ilt_iterations,
                                 pw_objective=pw_objective),
                       engine=pipeline.engine, conditions=descend_conditions)
    refine_cfg = ILTConfig(max_iterations=cfg.refine_iterations, patience=4,
                           pw_objective=pw_objective)
    flows = {
        "GAN-OPC": GanOpcFlow(generators.gan, pipeline.litho, refine_cfg,
                              engine=pipeline.engine,
                              conditions=descend_conditions),
        "PGAN-OPC": GanOpcFlow(generators.pgan, pipeline.litho, refine_cfg,
                               engine=pipeline.engine,
                               conditions=descend_conditions),
    }

    columns: Dict[str, List[MaskEvaluation]] = {
        "ILT": [], "GAN-OPC": [], "PGAN-OPC": []}
    masks: Dict[str, List[np.ndarray]] = {
        "ILT": [], "GAN-OPC": [], "PGAN-OPC": []}
    stage_seconds: Dict[str, List[Dict[str, float]]] = {
        "ILT": [], "GAN-OPC": [], "PGAN-OPC": []}

    stats_before = pipeline.engine.stats.snapshot()
    for clip in clips:
        target = (rasterize(clip.layout, cfg.grid) >= 0.5).astype(float)

        if logger is not None:
            ilt.logger = logger
            ilt.quality_context = {"clip": clip.name, "method": "ILT",
                                   "stage": "refinement"}
        start = time.perf_counter()
        ilt_result = ilt.optimize(target)
        ilt_runtime = time.perf_counter() - start
        columns["ILT"].append(evaluate_mask(
            pipeline.simulator, ilt_result.mask, target, layout=clip.layout,
            name=clip.name, runtime_seconds=ilt_runtime,
            condition_engine=condition_engine))
        masks["ILT"].append(ilt_result.mask)
        stage_seconds["ILT"].append(
            {"generation": 0.0, "refinement": ilt_runtime})

        for method, flow in flows.items():
            if logger is not None:
                flow.refiner.logger = logger
                flow.refiner.quality_context = {
                    "clip": clip.name, "method": method,
                    "stage": "refinement"}
            flow_result = flow.optimize(target)
            columns[method].append(evaluate_mask(
                pipeline.simulator, flow_result.mask, target,
                layout=clip.layout, name=clip.name,
                runtime_seconds=flow_result.runtime_seconds,
                condition_engine=condition_engine))
            masks[method].append(flow_result.mask)
            stage_seconds[method].append(
                {"generation": flow_result.generation_seconds,
                 "refinement": flow_result.refinement_seconds})

    result = Table2Result(columns=columns, masks=masks, clips=clips,
                          stage_seconds=stage_seconds,
                          engine_stats=pipeline.engine.stats.delta(
                              stats_before))
    result.table = comparison_table(columns, baseline="ILT")
    _emit_clip_results(logger, result)
    return result


def _run_table2_parallel(pipeline: Pipeline, generators: TrainedGenerators,
                         clips: List[BenchmarkClip],
                         workers: int,
                         conditions: Optional[ConditionSet] = None,
                         pw_objective: str = "nominal",
                         logger=None) -> Table2Result:
    """Clip-parallel Table 2: one task evaluates all methods on a clip."""
    from ..parallel.flow import _table2_clip_task, generator_payload
    from ..parallel.pool import WorkerPool
    from ..parallel.shm import SharedArray

    cfg = pipeline.config
    methods = ("ILT", "GAN-OPC", "PGAN-OPC")
    state = {"clips": clips,
             "GAN-OPC": generator_payload(generators.gan),
             "PGAN-OPC": generator_payload(generators.pgan)}
    shared_masks = SharedArray.create((len(methods), len(clips),
                                       cfg.grid, cfg.grid), np.float64)
    try:
        with WorkerPool(workers, litho_config=pipeline.litho,
                        precision=pipeline.engine.precision,
                        state=state) as pool:
            reports = pool.map(
                _table2_clip_task,
                [(slot, shared_masks.spec, cfg.grid, pipeline.litho,
                  cfg.ilt_iterations, cfg.refine_iterations, conditions,
                  pw_objective)
                 for slot in range(len(clips))],
                label="parallel.table2")
        all_masks = np.array(shared_masks.array, copy=True)
    finally:
        shared_masks.close()
        shared_masks.unlink()

    columns = {m: [None] * len(clips) for m in methods}
    masks = {m: [None] * len(clips) for m in methods}
    stage_seconds = {m: [None] * len(clips) for m in methods}
    for slot, evaluations, stages in reports:
        for method_index, method in enumerate(methods):
            columns[method][slot] = evaluations[method]
            masks[method][slot] = all_masks[method_index, slot]
            stage_seconds[method][slot] = stages[method]

    result = Table2Result(columns=columns, masks=masks, clips=clips,
                          stage_seconds=stage_seconds,
                          engine_stats=dict(pool.stats.fleet.engine_totals),
                          pool_stats=pool.stats)
    result.table = comparison_table(columns, baseline="ILT")
    _emit_clip_results(logger, result)
    if logger is not None:
        for event in pool.stats.stalls:
            logger.anomaly("worker_stall", pid=event.pid,
                           task_seq=event.task_seq,
                           gap_seconds=event.gap_seconds)
        for pid, seconds in pool.stats.stragglers():
            logger.anomaly("straggler", pid=pid, seconds=seconds,
                           median_seconds=pool.stats.median_task_seconds())
    return result


# ----------------------------------------------------------------------
# Figures 8 and 9
# ----------------------------------------------------------------------
def run_figure8(pipeline: Pipeline, table2: Table2Result
                ) -> List[List[np.ndarray]]:
    """Gallery rows (Figure 8): ILT masks, PGAN masks, their wafer
    images, and targets — one column per clip."""
    sim = pipeline.simulator
    targets = [(rasterize(c.layout, pipeline.config.grid) >= 0.5).astype(float)
               for c in table2.clips]
    rows = [
        table2.masks["ILT"],
        table2.masks["PGAN-OPC"],
        [sim.wafer_image(m) for m in table2.masks["ILT"]],
        [sim.wafer_image(m) for m in table2.masks["PGAN-OPC"]],
        targets,
    ]
    return rows


@dataclass
class DefectComparison:
    """Figure 9: defect census of ILT vs PGAN-OPC wafer images."""

    clip: str
    ilt_bridges: int
    ilt_necks: int
    pgan_bridges: int
    pgan_necks: int
    ilt_overlay: np.ndarray = field(repr=False, default=None)
    pgan_overlay: np.ndarray = field(repr=False, default=None)


def run_figure9(pipeline: Pipeline, table2: Table2Result
                ) -> List[DefectComparison]:
    """Count bridge and neck (line-end pull-back class) defects on the
    final wafers of both methods for every clip."""
    sim = pipeline.simulator
    cd_px = max(int(round(80.0 / pipeline.litho.pixel_nm * 0.5)), 1)
    comparisons = []
    for i, clip in enumerate(table2.clips):
        target = (rasterize(clip.layout, pipeline.config.grid) >= 0.5).astype(float)
        ilt_wafer = sim.wafer_image(table2.masks["ILT"][i])
        pgan_wafer = sim.wafer_image(table2.masks["PGAN-OPC"][i])
        comparisons.append(DefectComparison(
            clip=clip.name,
            ilt_bridges=len(detect_bridges(ilt_wafer, target)),
            ilt_necks=len(detect_necks(ilt_wafer, target, cd_px)),
            pgan_bridges=len(detect_bridges(pgan_wafer, target)),
            pgan_necks=len(detect_necks(pgan_wafer, target, cd_px)),
            ilt_overlay=overlay_comparison(target, ilt_wafer),
            pgan_overlay=overlay_comparison(target, pgan_wafer),
        ))
    return comparisons
