"""Machine-readable benchmark records (``BENCH_*.json``).

The benchmark suite's human-readable output (pytest-benchmark tables,
printed speedups) is useless for regression tracking, so the substrate
benchmarks also persist their numbers through :class:`BenchRecorder`:
one flat JSON file per suite, checked in at the repo root, that future
changes can diff against.  Entries are keyed by a stable
``name/grid<G>/batch<B>`` string and carry best-of-N wall seconds plus
derived throughput, so "did this PR slow the engine down?" is a
one-line ``json.load`` away.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Callable, Dict, Optional

RECORD_SCHEMA_VERSION = 1


def measure(fn: Callable[[], object], repeats: int = 5,
            warmup: int = 1) -> float:
    """Best-of-``repeats`` wall-clock seconds of ``fn()``.

    Minimum (not mean) — the minimum is the least noisy estimator of
    the true cost on a shared machine; everything above it is
    interference.
    """
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class BenchRecorder:
    """Collects named timing entries and writes one ``BENCH_*.json``."""

    def __init__(self, benchmark: str,
                 config_hash: Optional[str] = None):
        self.benchmark = benchmark
        #: optional litho-config kernel hash; ties the record to the
        #: exact optical model the numbers were measured under.
        self.config_hash = config_hash
        self.entries: Dict[str, Dict[str, object]] = {}

    def add(self, name: str, seconds: float,
            grid: Optional[int] = None, batch: Optional[int] = None,
            **extra) -> Dict[str, object]:
        """Record one entry; ``batch`` adds derived throughput.

        Extra metadata is numeric by default; strings pass through
        unchanged (backend names, autotune candidate keys).
        """
        entry: Dict[str, object] = {"seconds": float(seconds)}
        if grid is not None:
            entry["grid"] = int(grid)
        if batch is not None:
            entry["batch"] = int(batch)
            if seconds > 0:
                entry["throughput_per_second"] = float(batch / seconds)
        for key, value in extra.items():
            entry[key] = value if isinstance(value, str) else float(value)
        self.entries[name] = entry
        return entry

    def timeit(self, name: str, fn: Callable[[], object],
               grid: Optional[int] = None, batch: Optional[int] = None,
               repeats: int = 5, **extra) -> Dict[str, object]:
        """Measure ``fn`` with :func:`measure` and record the result."""
        return self.add(name, measure(fn, repeats=repeats),
                        grid=grid, batch=batch, **extra)

    def to_dict(self) -> dict:
        from ..runs.store import git_revision, utc_iso
        record = {
            "schema": RECORD_SCHEMA_VERSION,
            "benchmark": self.benchmark,
            "generated_utc": utc_iso(),
            "git_rev": git_revision(),
            "machine": {
                "platform": platform.platform(),
                "python": platform.python_version(),
            },
            "entries": {name: self.entries[name]
                        for name in sorted(self.entries)},
        }
        if self.config_hash is not None:
            record["config_hash"] = self.config_hash
        return record

    def write(self, path: str) -> str:
        """Atomically write the record as pretty-printed strict JSON."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True,
                      allow_nan=False)
            fh.write("\n")
        os.replace(tmp, path)
        return path


class BenchRecordError(ValueError):
    """A ``BENCH_*.json`` file is missing, corrupt or schema-less."""


def load_record(path: str) -> dict:
    """Read a ``BENCH_*.json`` previously written by :class:`BenchRecorder`.

    Raises :class:`BenchRecordError` with a pointed message when the
    file is missing, not JSON, or lacks the expected schema stamp —
    downstream comparison code should never have to guess why a record
    failed to parse.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            record = json.load(fh)
    except FileNotFoundError:
        raise BenchRecordError(f"bench record not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise BenchRecordError(
            f"{path} is not valid JSON ({exc}); regenerate it by "
            f"rerunning the benchmark suite") from exc
    if not isinstance(record, dict) \
            or record.get("schema") != RECORD_SCHEMA_VERSION:
        raise BenchRecordError(
            f"{path}: missing or unsupported bench schema "
            f"{record.get('schema') if isinstance(record, dict) else None!r}"
            f" (expected {RECORD_SCHEMA_VERSION})")
    if "entries" not in record or not isinstance(record["entries"], dict):
        raise BenchRecordError(f"{path}: record has no 'entries' table")
    return record
