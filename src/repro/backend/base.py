"""The duck-typed :class:`ArrayBackend` contract.

A backend supplies the small set of dense operations everything above
the seam is written against: allocation, host transfer, ``matmul`` /
``einsum``, the 2-D FFT family, the im2col/col2im conv lowering, and
reductions.  Everything else (elementwise arithmetic, ufuncs, slicing)
goes through numpy's NEP-18 dispatch, which backend-native arrays such
as cupy's implement — so engine code keeps calling ``np.multiply(...)``
and only routes allocation/GEMM/FFT through ``self._be``.

The contract is duck-typed on purpose: a third-party backend only has
to provide these methods, not inherit from this class.  This base
class exists to document the surface, centralise the FFT/reduction
defaults (expressed via ``self.xp``), and give ``isinstance`` a target
for the resolver.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from . import ops as _ops


class BackendUnavailableError(RuntimeError):
    """Raised when a registered backend cannot run on this machine
    (e.g. the cupy backend without a CUDA installation).  Tests catch
    this to *skip*, never to fail."""


class ArrayBackend:
    """Base class for array-ops backends.

    Subclasses set :attr:`name` and :attr:`xp` (the array module —
    ``numpy`` or ``cupy``); the default method bodies delegate to
    ``self.xp`` and are bit-identical to inline numpy calls when
    ``xp is numpy``.
    """

    #: Canonical backend name (``"numpy"``, ``"cupy"``).
    name: str = "abstract"
    #: Device class the arrays live on (``"cpu"`` or ``"cuda"``).
    device: str = "cpu"
    #: The array module providing the NEP-18 namespace.
    xp: Any = None

    @classmethod
    def is_available(cls) -> bool:
        """Whether this backend can run here (never raises)."""
        return False

    # -- allocation / transfer -----------------------------------------
    def empty(self, shape, dtype=np.float64):
        return self.xp.empty(shape, dtype=dtype)

    def zeros(self, shape, dtype=np.float64):
        return self.xp.zeros(shape, dtype=dtype)

    def asarray(self, array, dtype=None):
        """Adopt ``array`` onto this backend (no copy when already native)."""
        return self.xp.asarray(array, dtype=dtype)

    def ascontiguousarray(self, array, dtype=None):
        return self.xp.ascontiguousarray(array, dtype=dtype)

    def to_numpy(self, array) -> np.ndarray:
        """Return a host-side numpy view of ``array``.

        Identity (no copy) for host backends — callers rely on that to
        keep the numpy path allocation-free.
        """
        raise NotImplementedError

    def is_native(self, array) -> bool:
        """Whether ``array`` already lives on this backend."""
        raise NotImplementedError

    def synchronize(self) -> None:
        """Barrier for async devices; no-op on the CPU.  Timing code
        must call this before reading the clock."""

    # -- dense linear algebra ------------------------------------------
    def matmul(self, a, b, out=None):
        return self.xp.matmul(a, b, out=out)

    def einsum(self, subscripts: str, *operands):
        return self.xp.einsum(subscripts, *operands)

    # -- FFT family -----------------------------------------------------
    def rfft2(self, array, axes: Tuple[int, int] = (-2, -1)):
        return self.xp.fft.rfft2(array, axes=axes)

    def irfft2(self, array, s=None, axes: Tuple[int, int] = (-2, -1)):
        return self.xp.fft.irfft2(array, s=s, axes=axes)

    def fft2(self, array, axes: Tuple[int, int] = (-2, -1)):
        return self.xp.fft.fft2(array, axes=axes)

    def ifft2(self, array, axes: Tuple[int, int] = (-2, -1)):
        return self.xp.fft.ifft2(array, axes=axes)

    # -- conv lowering --------------------------------------------------
    def im2col(self, x, kernel, stride, padding, out=None):
        return _ops.im2col(self.xp, x, kernel, stride, padding, out=out)

    def col2im(self, cols, image_shape, kernel, stride, padding):
        return _ops.col2im(self.xp, cols, image_shape, kernel, stride, padding)

    # -- elementwise helpers the engine calls with out= -----------------
    def conjugate(self, array, out=None):
        return self.xp.conjugate(array, out=out)

    def multiply(self, a, b, out=None):
        return self.xp.multiply(a, b, out=out)

    # -- reductions -----------------------------------------------------
    def sum(self, array, axis=None, keepdims: bool = False):
        return self.xp.sum(array, axis=axis, keepdims=keepdims)

    def mean(self, array, axis=None, keepdims: bool = False):
        return self.xp.mean(array, axis=axis, keepdims=keepdims)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} name={self.name!r} device={self.device!r}>"
