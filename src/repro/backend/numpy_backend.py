"""The numpy reference backend — pure delegation, bit-identical.

Every method forwards to the exact ``np.*`` call the engine and nn
substrate made inline before the seam existed, so the numpy path
produces bit-identical results by construction (the existing 1e-10
parity suites run unchanged against it).  ``to_numpy`` is the
identity, keeping the host path allocation-free.
"""

from __future__ import annotations

import numpy as np

from .base import ArrayBackend


class NumpyBackend(ArrayBackend):
    name = "numpy"
    device = "cpu"
    xp = np

    @classmethod
    def is_available(cls) -> bool:
        return True

    def asarray(self, array, dtype=None):
        return np.asarray(array, dtype=dtype)

    def to_numpy(self, array) -> np.ndarray:
        return np.asarray(array)

    def is_native(self, array) -> bool:
        return isinstance(array, np.ndarray)
