"""The optional cupy/GPU backend, resolved lazily.

``cupy`` is imported only when the backend is instantiated (i.e. when
``REPRO_BACKEND=cupy`` / ``--backend cupy`` actually selects it), so
merely importing ``repro.backend`` never touches CUDA.  A missing or
broken cupy installation surfaces as :class:`BackendUnavailableError`,
which the test suite translates into a skip.

cupy arrays implement the NEP-18 / ``__array_ufunc__`` protocols, so
the elementwise arithmetic sprinkled through the engine (``np.multiply``,
``np.exp`` on spectra, sigmoid clamps) dispatches to the GPU without
any further seam — only allocation, transfer, GEMM/FFT and the conv
lowering go through the explicit backend methods.
"""

from __future__ import annotations

import numpy as np

from .base import ArrayBackend, BackendUnavailableError

_CUPY = None
_CUPY_ERROR = None


def _load_cupy():
    """Import cupy once and verify a device is actually usable."""
    global _CUPY, _CUPY_ERROR
    if _CUPY is not None or _CUPY_ERROR is not None:
        return _CUPY
    try:
        import cupy  # noqa: PLC0415 - deliberate lazy import
        # A toolkit-less install imports fine but has no device; force
        # the failure here so it maps to a skip, not a mid-run crash.
        cupy.cuda.runtime.getDeviceCount()
        _CUPY = cupy
    except Exception as exc:  # ImportError or CUDARuntimeError alike
        _CUPY_ERROR = exc
    return _CUPY


class CupyBackend(ArrayBackend):
    name = "cupy"
    device = "cuda"

    def __init__(self) -> None:
        cupy = _load_cupy()
        if cupy is None:
            raise BackendUnavailableError(
                f"cupy backend unavailable: {_CUPY_ERROR!r}")
        self.xp = cupy

    @classmethod
    def is_available(cls) -> bool:
        return _load_cupy() is not None

    def asarray(self, array, dtype=None):
        return self.xp.asarray(array, dtype=dtype)

    def to_numpy(self, array) -> np.ndarray:
        if isinstance(array, np.ndarray):
            return array
        return self.xp.asnumpy(array)

    def is_native(self, array) -> bool:
        return isinstance(array, self.xp.ndarray)

    def synchronize(self) -> None:
        self.xp.cuda.get_current_stream().synchronize()
