"""``repro.backend`` — the pluggable array-ops seam.

Every dense kernel in the repo — the engine's passband matmul-DFTs,
the nn substrate's im2col/GEMM convolutions, the workspace arenas —
bottoms out in a small set of array operations: ``matmul``, the 2-D
FFT family, patch lowering (``im2col``/``col2im``), ``einsum``,
reductions and dtype/device transfer.  :class:`ArrayBackend` names
that contract once, so the same engine/nn code runs wherever the
hardware is fastest:

* :class:`~repro.backend.numpy_backend.NumpyBackend` is the reference
  implementation — pure delegation to ``numpy``, bit-identical to the
  pre-seam code by construction (every method forwards to the exact
  numpy call the engine used to make inline).
* :class:`~repro.backend.cupy_backend.CupyBackend` is the optional
  GPU backend, resolved lazily: ``cupy`` is only imported when the
  backend is actually requested, and a missing/broken installation
  raises :class:`BackendUnavailableError` (tests skip, they do not
  fail).  Elementwise math on backend-native arrays dispatches
  through the NEP-18 ``__array_function__`` / ``__array_ufunc__``
  protocols, so only allocation, transfer and the hot dense ops need
  the explicit seam.

Backend resolution mirrors the precision seam: pass ``backend=`` to
:class:`~repro.litho.engine.LithoEngine` (or ``--backend`` on the
CLI), or set ``REPRO_BACKEND`` (``numpy``/``cupy``); the default is
numpy.  :func:`get_backend` returns the process-wide default used by
``repro.nn``.

The companion :mod:`repro.backend.autotune` module picks per-hardware
batch-chunk and passband-block sizes from measured timings scored
against the profiler's exact per-op FLOP closed forms, and persists
the winners as config presets (``benchmarks/autotune_presets.json``).
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Type, Union

from .base import ArrayBackend, BackendUnavailableError
from .numpy_backend import NumpyBackend
from .cupy_backend import CupyBackend

__all__ = [
    "ArrayBackend", "BackendUnavailableError", "NumpyBackend",
    "CupyBackend", "resolve_backend", "get_backend", "set_backend",
    "available_backends", "BACKENDS",
]

#: Registered backend classes by canonical name.  Registration is
#: declarative — instantiation (and any heavyweight import) happens
#: only when a backend is actually resolved.
BACKENDS: Dict[str, Type[ArrayBackend]] = {
    "numpy": NumpyBackend,
    "cupy": CupyBackend,
}

_ALIASES = {
    "numpy": "numpy", "np": "numpy", "cpu": "numpy",
    "cupy": "cupy", "gpu": "cupy", "cuda": "cupy",
}

#: Memoized backend instances (backends are stateless; one per name).
_INSTANCES: Dict[str, ArrayBackend] = {}

#: Process-wide default backend, used by ``repro.nn`` and by engines
#: constructed without an explicit ``backend=``.
_DEFAULT: Optional[ArrayBackend] = None


def resolve_backend(backend: Union[None, str, ArrayBackend] = None
                    ) -> ArrayBackend:
    """Resolve a backend name (or pass an instance through).

    ``None`` consults the ``REPRO_BACKEND`` environment variable and
    falls back to ``"numpy"``.  Unknown names raise ``ValueError``;
    known-but-unavailable backends (e.g. ``cupy`` without a GPU
    installation) raise :class:`BackendUnavailableError` at resolve
    time — never at import time.
    """
    if isinstance(backend, ArrayBackend):
        return backend
    if backend is None:
        backend = os.environ.get("REPRO_BACKEND") or "numpy"
    key = str(backend).strip().lower()
    if key not in _ALIASES:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of "
            f"{sorted(set(_ALIASES))}")
    name = _ALIASES[key]
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = BACKENDS[name]()   # may raise BackendUnavailableError
        _INSTANCES[name] = instance
    return instance


def get_backend() -> ArrayBackend:
    """The process-wide default backend (``REPRO_BACKEND`` or numpy)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = resolve_backend(None)
    return _DEFAULT


def set_backend(backend: Union[None, str, ArrayBackend]) -> ArrayBackend:
    """Install a process-wide default backend; returns the instance.

    ``set_backend(None)`` resets to environment resolution on the next
    :func:`get_backend` call.
    """
    global _DEFAULT
    _DEFAULT = None if backend is None else resolve_backend(backend)
    return get_backend() if _DEFAULT is None else _DEFAULT


def available_backends() -> Dict[str, bool]:
    """Availability of every registered backend (without raising)."""
    return {name: cls.is_available() for name, cls in BACKENDS.items()}
