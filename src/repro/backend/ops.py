"""Array-module-generic implementations of the conv lowering primitives.

``im2col``/``col2im`` are written once against an ``xp`` array module
(``numpy`` or ``cupy``) and shared by every backend — and by
``repro.nn.functional``, whose public ``im2col``/``col2im`` delegate
here with ``xp=numpy``.  Both modules expose the same ``pad`` /
``lib.stride_tricks.as_strided`` / ``copyto`` surface, so a single
implementation keeps the numpy path bit-identical while giving the GPU
backend the identical lowering for free.
"""

from __future__ import annotations

from typing import Optional, Tuple


def im2col(xp, x, kernel: Tuple[int, int], stride: Tuple[int, int],
           padding: Tuple[int, int], out=None):
    """Lower ``(N, C, H, W)`` patches to ``(N, C*KH*KW, OH*OW)`` columns.

    ``out``, when given, receives the gather (workspace reuse); it must
    live on the same backend as ``x``.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(
            f"convolution output would be empty: input {h}x{w}, "
            f"kernel {kh}x{kw}, stride {sh}x{sw}, padding {ph}x{pw}")
    if ph or pw:
        x = xp.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    sn, sc, sh_, sw_ = x.strides
    shape = (n, c, kh, kw, oh, ow)
    strides = (sn, sc, sh_, sw_, sh_ * sh, sw_ * sw)
    patches = xp.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    if out is not None:
        xp.copyto(out.reshape(shape), patches)
        return out
    return patches.reshape(n, c * kh * kw, oh * ow) if patches.flags.c_contiguous \
        else xp.ascontiguousarray(patches).reshape(n, c * kh * kw, oh * ow)


def col2im(xp, cols, image_shape: Tuple[int, int, int, int],
           kernel: Tuple[int, int], stride: Tuple[int, int],
           padding: Tuple[int, int]):
    """Scatter-add columns back into an image (adjoint of :func:`im2col`)."""
    n, c, h, w = image_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    padded = xp.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    cols = cols.reshape(n, c, kh, kw, oh, ow)
    for i in range(kh):
        h_end = i + sh * oh
        for j in range(kw):
            w_end = j + sw * ow
            padded[:, :, i:h_end:sh, j:w_end:sw] += cols[:, :, i, j]
    if ph or pw:
        return padded[:, :, ph:h + ph, pw:w + pw]
    return padded
