"""Profiler-driven chunk/block autotuner for the litho engine.

The engine has two hardware-sensitive knobs:

* **batch chunk** — how many masks each adjoint call processes at once
  (the default caps the per-chunk field tensor at ~8 MB so it stays
  cache-resident; big-L3 or GPU machines want larger chunks);
* **passband block** — how many kernels are stacked into one batched
  passband matmul in the forward/adjoint loops (``1`` reproduces the
  historic per-kernel loop bit-exactly; larger blocks trade cache
  residency for fewer, bigger GEMMs, which threaded BLAS and GPUs
  prefer).

The tuner times a small candidate grid on the actual engine + backend,
scores each candidate in GFLOP/s against the *exact* per-op FLOP
closed forms from :mod:`repro.obs.profiler` (``matmul_flops`` over the
same shapes the engine multiplies — no estimated constants), and picks
the winner deterministically.  Measurement and choice are separated:
:func:`choose_tuning` is a pure function of a
:class:`MeasurementTable`, so given a fixed table the choice is
reproducible on any machine (and testable without timing anything).

Winners persist as config presets in a small JSON file
(``benchmarks/autotune_presets.json`` in this repo), keyed by
``backend/precision/grid/hardware`` — the taoari-style "measure once,
ship the table" pattern.  ``REPRO_AUTOTUNE=<path>`` points engines at
a preset file; unset means the built-in heuristics run unchanged.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.profiler import matmul_flops

SCHEMA_VERSION = 1

#: Default preset file consulted when ``REPRO_AUTOTUNE=1``/``auto`` is
#: set without an explicit path (resolved relative to the repo root
#: when running from a checkout; otherwise ignored).
DEFAULT_PRESET_NAME = "autotune_presets.json"


# ----------------------------------------------------------------------
# Tuning + hardware identity
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EngineTuning:
    """One chosen engine configuration.

    ``batch_chunk=None`` keeps the engine's built-in ~8 MB heuristic;
    ``passband_block=1`` keeps the historic per-kernel loop (the
    bit-exact reference path).
    """

    batch_chunk: Optional[int] = None
    passband_block: int = 1

    def to_dict(self) -> Dict[str, Optional[int]]:
        return {"batch_chunk": self.batch_chunk,
                "passband_block": self.passband_block}

    @classmethod
    def from_dict(cls, data: Dict) -> "EngineTuning":
        chunk = data.get("batch_chunk")
        return cls(batch_chunk=None if chunk is None else int(chunk),
                   passband_block=int(data.get("passband_block", 1)))


def blas_threads() -> str:
    """The threaded-BLAS configuration this process runs under.

    Part of the hardware key: a preset measured with pinned BLAS
    threads must not be applied to an unpinned run.
    """
    for var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                "MKL_NUM_THREADS", "BLIS_NUM_THREADS"):
        value = os.environ.get(var)
        if value:
            return value
    return "auto"


def hardware_key() -> str:
    """Stable identity of this machine for preset lookup."""
    return (f"{platform.system().lower()}-{platform.machine()}"
            f"-cpu{os.cpu_count()}-blas{blas_threads()}")


# ----------------------------------------------------------------------
# Exact FLOP model (profiler closed forms over the engine's shapes)
# ----------------------------------------------------------------------
def _cmatmul_flops(a_shape, b_shape) -> int:
    """Complex matmul cost: 4 real multiplies + adds per product term,
    i.e. 4x the real :func:`matmul_flops` closed form."""
    return 4 * matmul_flops(a_shape, b_shape)


def forward_flops(grid: int, passband: Tuple[int, int], num_kernels: int,
                  batch: int) -> int:
    """Exact FLOPs of one batched engine forward (Eq. 2 pipeline).

    Mirrors ``LithoEngine._forward_impl`` term by term: the two
    spectrum matmuls, then per kernel the passband pointwise product,
    the two inverse-DFT matmuls and the intensity accumulation.
    """
    r, c = passband
    spec = (_cmatmul_flops((r, grid), (batch, grid, grid))
            + _cmatmul_flops((batch, r, grid), (grid, c)))
    per_kernel = (6 * batch * r * c                       # compact * H_k
                  + _cmatmul_flops((grid, r), (batch, r, c))
                  + _cmatmul_flops((batch, grid, c), (c, grid))
                  + 4 * batch * grid * grid)              # |field|^2 fma
    return spec + num_kernels * per_kernel


def adjoint_flops(grid: int, passband: Tuple[int, int],
                  adjoint_passband: Tuple[int, int], num_kernels: int,
                  batch: int) -> int:
    """Exact FLOPs of one batched adjoint call (Eq. 14 pipeline),
    including the nested keep-fields forward."""
    ar, ac = adjoint_passband
    per_kernel = (6 * batch * grid * grid                 # conj * dE/dI
                  + _cmatmul_flops((ar, grid), (batch, grid, grid))
                  + _cmatmul_flops((batch, ar, grid), (grid, ac))
                  + 8 * batch * ar * ac)                  # scale + acc
    expand = (_cmatmul_flops((batch, ar, ac), (ac, grid))
              + _cmatmul_flops((grid, ar), (batch, ar, grid)))
    resist = 12 * batch * grid * grid                     # sigmoid/err/up
    return (forward_flops(grid, passband, num_kernels, batch)
            + num_kernels * per_kernel + expand + resist)


# ----------------------------------------------------------------------
# Measurement table
# ----------------------------------------------------------------------
def candidate_key(tuning: EngineTuning) -> str:
    chunk = "auto" if tuning.batch_chunk is None else str(tuning.batch_chunk)
    return f"chunk{chunk}/block{tuning.passband_block}"


def parse_candidate_key(key: str) -> EngineTuning:
    chunk_part, block_part = key.split("/")
    chunk = chunk_part[len("chunk"):]
    return EngineTuning(
        batch_chunk=None if chunk == "auto" else int(chunk),
        passband_block=int(block_part[len("block"):]))


@dataclass
class MeasurementTable:
    """Timed candidates for one (backend, precision, grid, batch) cell.

    ``entries`` maps :func:`candidate_key` strings to best-of-N
    seconds for one adjoint call on ``batch`` masks; ``flops`` is the
    exact per-call work from :func:`adjoint_flops`, so
    ``flops / seconds`` scores candidates in absolute FLOP/s.
    """

    backend: str
    precision: str
    grid: int
    batch: int
    flops: int
    hardware: str = field(default_factory=hardware_key)
    entries: Dict[str, float] = field(default_factory=dict)

    def add(self, tuning: EngineTuning, seconds: float) -> None:
        self.entries[candidate_key(tuning)] = float(seconds)

    def gflops(self, key: str) -> float:
        return self.flops / self.entries[key] / 1e9

    def to_dict(self) -> Dict:
        return {"backend": self.backend, "precision": self.precision,
                "grid": self.grid, "batch": self.batch,
                "flops": self.flops, "hardware": self.hardware,
                "entries": dict(self.entries)}

    @classmethod
    def from_dict(cls, data: Dict) -> "MeasurementTable":
        return cls(backend=data["backend"], precision=data["precision"],
                   grid=int(data["grid"]), batch=int(data["batch"]),
                   flops=int(data["flops"]),
                   hardware=data.get("hardware", "unknown"),
                   entries={str(k): float(v)
                            for k, v in data.get("entries", {}).items()})


def choose_tuning(table: MeasurementTable) -> EngineTuning:
    """Pick the winning tuning from a measurement table.

    Pure and deterministic: fastest candidate wins; exact ties break
    toward the smaller passband block, then the smaller (auto-first)
    batch chunk — i.e. toward the reference configuration — so a
    re-run over the same table always returns the same answer.
    """
    if not table.entries:
        return EngineTuning()

    def order(item):
        key, seconds = item
        tuning = parse_candidate_key(key)
        chunk_rank = (-1 if tuning.batch_chunk is None
                      else tuning.batch_chunk)
        return (seconds, tuning.passband_block, chunk_rank)

    best_key, _ = min(table.entries.items(), key=order)
    return parse_candidate_key(best_key)


# ----------------------------------------------------------------------
# Measurement (times the real engine)
# ----------------------------------------------------------------------
def default_candidates(batch: int) -> List[EngineTuning]:
    """The candidate grid: the reference config, full-batch chunking,
    and passband blocks that divide typical kernel counts."""
    chunks: List[Optional[int]] = [None]
    if batch > 1:
        chunks.append(batch)
    candidates = []
    for chunk in chunks:
        for block in (1, 2, 4, 8):
            candidates.append(EngineTuning(batch_chunk=chunk,
                                           passband_block=block))
    return candidates


def measure_engine(engine, batch: int = 8,
                   candidates: Optional[Iterable[EngineTuning]] = None,
                   repeats: int = 3, rng_seed: int = 0) -> MeasurementTable:
    """Time the adjoint pipeline under each candidate tuning.

    Builds a sibling engine per candidate (same kernels/precision/
    backend, different tuning) and takes best-of-``repeats`` wall
    clock on one ``error_and_gradient_wrt_mask`` call over ``batch``
    random masks.  Device backends are synchronized around the timer.
    """
    import numpy as np

    from repro.litho.engine import LithoEngine

    grid = engine.grid
    rng = np.random.default_rng(rng_seed)
    masks = engine.backend.asarray(
        rng.random((batch, grid, grid)), dtype=engine._rdtype)
    targets = engine.backend.asarray(
        (rng.random((batch, grid, grid)) > 0.5), dtype=engine._rdtype)

    (pb, apb) = engine.passband_shape
    table = MeasurementTable(
        backend=engine.backend.name, precision=engine.precision,
        grid=grid, batch=batch,
        flops=adjoint_flops(grid, pb, apb, len(engine.kernels.weights),
                            batch))
    for tuning in (default_candidates(batch) if candidates is None
                   else candidates):
        candidate = LithoEngine(kernels=engine.kernels,
                                precision=engine.precision,
                                backend=engine.backend, tuning=tuning)
        candidate.error_and_gradient_wrt_mask(masks, targets)  # warm-up
        best = float("inf")
        for _ in range(repeats):
            engine.backend.synchronize()
            started = time.perf_counter()
            candidate.error_and_gradient_wrt_mask(masks, targets)
            engine.backend.synchronize()
            best = min(best, time.perf_counter() - started)
        table.add(tuning, best)
    return table


@dataclass
class AutotuneResult:
    tuning: EngineTuning
    table: MeasurementTable

    @property
    def gflops(self) -> float:
        return self.table.gflops(candidate_key(self.tuning))


def autotune_engine(engine, batch: int = 8,
                    candidates: Optional[Iterable[EngineTuning]] = None,
                    repeats: int = 3) -> AutotuneResult:
    """Measure + choose in one call (does not mutate ``engine``)."""
    table = measure_engine(engine, batch=batch, candidates=candidates,
                           repeats=repeats)
    return AutotuneResult(tuning=choose_tuning(table), table=table)


# ----------------------------------------------------------------------
# Preset persistence (taoari-style committed config tables)
# ----------------------------------------------------------------------
def preset_key(backend: str, precision: str, grid: int,
               hardware: Optional[str] = None) -> str:
    return (f"{backend}/{precision}/grid{grid}/"
            f"{hardware if hardware is not None else hardware_key()}")


def save_preset(path: Union[str, Path], result: AutotuneResult,
                hardware: Optional[str] = None) -> Dict:
    """Merge one autotune result into a preset file; returns the
    full on-disk document."""
    path = Path(path)
    document = {"schema": SCHEMA_VERSION, "presets": {}}
    if path.exists():
        loaded = json.loads(path.read_text())
        if loaded.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"preset schema {loaded.get('schema')!r} != {SCHEMA_VERSION}")
        document = loaded
    table = result.table
    key = preset_key(table.backend, table.precision, table.grid,
                     hardware if hardware is not None else table.hardware)
    document.setdefault("presets", {})[key] = {
        "tuning": result.tuning.to_dict(),
        "gflops": round(result.gflops, 3),
        "measurements": table.to_dict(),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def load_preset(path: Union[str, Path], backend: str, precision: str,
                grid: int,
                hardware: Optional[str] = None) -> Optional[EngineTuning]:
    """Look up a persisted tuning.

    Prefers the exact hardware key; falls back to any preset matching
    ``backend/precision/grid`` (a portable default is better than the
    untuned heuristic when the exact machine was never measured).
    Returns ``None`` when nothing matches or the file is absent.
    """
    path = Path(path)
    if not path.exists():
        return None
    document = json.loads(path.read_text())
    if document.get("schema") != SCHEMA_VERSION:
        return None
    presets = document.get("presets", {})
    exact = presets.get(preset_key(backend, precision, grid, hardware))
    if exact is not None:
        return EngineTuning.from_dict(exact["tuning"])
    prefix = f"{backend}/{precision}/grid{grid}/"
    for key in sorted(presets):
        if key.startswith(prefix):
            return EngineTuning.from_dict(presets[key]["tuning"])
    return None


def env_tuning(backend: str, precision: str, grid: int
               ) -> Optional[EngineTuning]:
    """Tuning from the ``REPRO_AUTOTUNE`` environment variable.

    Unset/empty/``off`` disables preset lookup (engines keep their
    built-in heuristics); any other value is a preset file path.
    """
    value = os.environ.get("REPRO_AUTOTUNE", "").strip()
    if not value or value.lower() in ("off", "0", "none"):
        return None
    return load_preset(value, backend, precision, grid)
