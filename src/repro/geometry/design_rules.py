"""Design rules (Table 1 of the paper) and a rule checker.

The synthetic training library is generated "based on simple design
rules" (Section 4); Table 1 lists them for the 32 nm M1 layer:

    M1 critical dimension (min size)   80 nm
    Pitch                             140 nm
    Tip-to-tip distance                60 nm

The derived minimum side-to-side spacing is ``pitch - cd = 60 nm``.
:class:`DesignRuleChecker` validates generated clips against the rules,
distinguishing tip-to-tip (facing line ends) from side spacing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .layout import Layout
from .shapes import Rect


@dataclass(frozen=True)
class DesignRules:
    """Minimum-dimension rules for a metal layer (Table 1), in nm."""

    critical_dimension: float = 80.0
    pitch: float = 140.0
    tip_to_tip: float = 60.0

    def __post_init__(self):
        if min(self.critical_dimension, self.pitch, self.tip_to_tip) <= 0:
            raise ValueError("all design rules must be positive")
        if self.pitch <= self.critical_dimension:
            raise ValueError(
                f"pitch {self.pitch} must exceed critical dimension "
                f"{self.critical_dimension}")

    @property
    def spacing(self) -> float:
        """Minimum side-to-side spacing between parallel wires."""
        return self.pitch - self.critical_dimension

    @staticmethod
    def iccad32nm() -> "DesignRules":
        """The paper's Table 1 rule set."""
        return DesignRules(critical_dimension=80.0, pitch=140.0, tip_to_tip=60.0)


@dataclass(frozen=True)
class RuleViolation:
    """A single design-rule violation found by the checker.

    ``kind`` is one of ``"width"``, ``"spacing"``, ``"tip_to_tip"``.
    """

    kind: str
    measured: float
    required: float
    rect_index: int
    other_index: int = -1

    def __str__(self) -> str:
        where = (f"rect {self.rect_index}" if self.other_index < 0
                 else f"rects {self.rect_index}/{self.other_index}")
        return (f"{self.kind} violation at {where}: measured "
                f"{self.measured:.1f} nm < required {self.required:.1f} nm")


class DesignRuleChecker:
    """Checks a :class:`Layout` against :class:`DesignRules`.

    Touching/overlapping rects are treated as the same net (a jog or an
    L-shape) and are exempt from spacing checks against each other.
    """

    def __init__(self, rules: DesignRules):
        self.rules = rules

    def check_width(self, layout: Layout) -> List[RuleViolation]:
        """Every shape's narrow side must meet the critical dimension."""
        eps = 1e-6
        return [
            RuleViolation("width", rect.min_dimension,
                          self.rules.critical_dimension, i)
            for i, rect in enumerate(layout.rects)
            if rect.min_dimension < self.rules.critical_dimension - eps
        ]

    def check_spacing(self, layout: Layout) -> List[RuleViolation]:
        """Pairwise spacing: tip-to-tip along the run direction between
        collinear wires, side spacing otherwise."""
        violations: List[RuleViolation] = []
        rects = layout.rects
        eps = 1e-6
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                a, b = rects[i], rects[j]
                if a.touches(b):
                    continue  # same net
                dx, dy = a.axis_gaps(b)
                if self._is_tip_to_tip(a, b):
                    required = self.rules.tip_to_tip
                    measured = dx if a.is_horizontal else dy
                    kind = "tip_to_tip"
                else:
                    required = self.rules.spacing
                    measured = a.gap(b)
                    kind = "spacing"
                if measured < required - eps:
                    violations.append(
                        RuleViolation(kind, measured, required, i, j))
        return violations

    def check(self, layout: Layout) -> List[RuleViolation]:
        """All rule checks combined."""
        return self.check_width(layout) + self.check_spacing(layout)

    def is_clean(self, layout: Layout) -> bool:
        return not self.check(layout)

    @staticmethod
    def _is_tip_to_tip(a: Rect, b: Rect) -> bool:
        """Facing line ends: same orientation, gap along the run
        direction, and overlapping projections across it."""
        if a.is_horizontal != b.is_horizontal:
            return False
        dx, dy = a.axis_gaps(b)
        if a.is_horizontal:
            return dx > 0 and dy == 0.0
        return dy > 0 and dx == 0.0
