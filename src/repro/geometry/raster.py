"""Rasterization and resolution bridging.

Converts :class:`~repro.geometry.layout.Layout` clips to the pixel
images the lithography simulator and the neural networks consume, with
antialiased (area-weighted) edges so sub-pixel geometry is preserved.

Also implements the paper's resolution bridge (Section 4): ``8 x 8``
average pooling applied to fine layout rasters before the network, and
linear interpolation back to full resolution after generation.
"""

from __future__ import annotations

import numpy as np

from .layout import Layout
from .shapes import Rect


def rasterize(layout: Layout, grid: int, antialias: bool = True) -> np.ndarray:
    """Render a layout clip to a ``grid x grid`` float image in [0, 1].

    Pixels fully inside a pattern get 1.0; with ``antialias`` edge
    pixels get their covered-area fraction, otherwise a pixel is 1.0
    when its center is covered.

    The raster uses image convention ``image[row, col]`` with row = y
    increasing downwards from the window's y=0 edge; the mapping is a
    pure scale (no flip), which keeps raster/vector coordinates aligned
    for the EPE measurement sites.
    """
    if grid < 1:
        raise ValueError(f"grid must be >= 1, got {grid}")
    return rasterize_region(layout, grid, 0, grid, 0, grid,
                            antialias=antialias)


def rasterize_region(layout: Layout, grid: int,
                     row0: int, row1: int, col0: int, col1: int,
                     antialias: bool = True) -> np.ndarray:
    """Render the pixel window ``[row0:row1, col0:col1]`` of the
    monolithic ``grid x grid`` raster of a layout.

    Coverage is computed in *global* pixel coordinates, so the result
    is bit-exact equal to ``rasterize(layout, grid)[row0:row1,
    col0:col1]`` — the contract the tiling layer's property tests
    assert.  This is what lets a full-chip flow extract engine-sized
    tile windows (core plus halo) without ever materializing the
    monolithic raster.
    """
    if grid < 1:
        raise ValueError(f"grid must be >= 1, got {grid}")
    if not (0 <= row0 < row1 <= grid and 0 <= col0 < col1 <= grid):
        raise ValueError(
            f"region [{row0}:{row1}, {col0}:{col1}] outside raster "
            f"of grid {grid}")
    pixel = layout.extent / grid
    image = np.zeros((row1 - row0, col1 - col0), dtype=float)
    for rect in layout.rects:
        if antialias:
            _paint_antialiased(image, rect, pixel, row0, row1, col0, col1)
        else:
            _paint_centers(image, rect, pixel, row0, row1, col0, col1)
    return np.clip(image, 0.0, 1.0)


def _paint_antialiased(image: np.ndarray, rect: Rect, pixel: float,
                       row0: int, row1: int, col0: int, col1: int) -> None:
    # Continuous pixel coordinates of the rect (global frame).
    x0, x1 = rect.x0 / pixel, rect.x1 / pixel
    y0, y1 = rect.y0 / pixel, rect.y1 / pixel
    ix0, ix1 = max(int(np.floor(x0)), col0), min(int(np.ceil(x1)), col1)
    iy0, iy1 = max(int(np.floor(y0)), row0), min(int(np.ceil(y1)), row1)
    if ix0 >= ix1 or iy0 >= iy1:
        return
    cols = np.arange(ix0, ix1)
    rows = np.arange(iy0, iy1)
    cover_x = np.minimum(cols + 1.0, x1) - np.maximum(cols, x0)
    cover_y = np.minimum(rows + 1.0, y1) - np.maximum(rows, y0)
    cover_x = np.clip(cover_x, 0.0, 1.0)
    cover_y = np.clip(cover_y, 0.0, 1.0)
    image[iy0 - row0:iy1 - row0,
          ix0 - col0:ix1 - col0] += np.outer(cover_y, cover_x)


def _paint_centers(image: np.ndarray, rect: Rect, pixel: float,
                   row0: int, row1: int, col0: int, col1: int) -> None:
    ix0 = max(int(np.ceil(rect.x0 / pixel - 0.5)), col0)
    ix1 = min(int(np.floor(rect.x1 / pixel - 0.5)) + 1, col1)
    iy0 = max(int(np.ceil(rect.y0 / pixel - 0.5)), row0)
    iy1 = min(int(np.floor(rect.y1 / pixel - 0.5)) + 1, row1)
    if ix0 < ix1 and iy0 < iy1:
        image[iy0 - row0:iy1 - row0, ix0 - col0:ix1 - col0] = 1.0


def average_pool(image: np.ndarray, factor: int) -> np.ndarray:
    """Block-average downsampling (the paper's 8x8 pooling, Section 4)."""
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    h, w = image.shape
    if h % factor or w % factor:
        raise ValueError(
            f"image shape {image.shape} not divisible by factor {factor}")
    return image.reshape(h // factor, factor, w // factor, factor).mean(axis=(1, 3))


def bilinear_upsample(image: np.ndarray, factor: int) -> np.ndarray:
    """Linear interpolation back to full resolution (Section 4).

    Treats pixel values as samples at pixel centers; output pixel
    centers are mapped into the input's center grid and bilinearly
    interpolated, with edge clamping.
    """
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    if factor == 1:
        return image.copy()
    h, w = image.shape
    out_h, out_w = h * factor, w * factor
    # Output center -> input coordinate.
    ys = (np.arange(out_h) + 0.5) / factor - 0.5
    xs = (np.arange(out_w) + 0.5) / factor - 0.5
    ys = np.clip(ys, 0.0, h - 1.0)
    xs = np.clip(xs, 0.0, w - 1.0)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    wy = (ys - y0)[:, None]
    wx = (xs - x0)[None, :]
    top = image[np.ix_(y0, x0)] * (1 - wx) + image[np.ix_(y0, x1)] * wx
    bottom = image[np.ix_(y1, x0)] * (1 - wx) + image[np.ix_(y1, x1)] * wx
    return top * (1 - wy) + bottom * wy


def binarize(image: np.ndarray, level: float = 0.5) -> np.ndarray:
    """Threshold a float image to {0, 1}."""
    return (np.asarray(image) >= level).astype(float)
