"""Plain-text layout clip I/O.

A minimal, line-oriented format in the spirit of the ICCAD-2013
contest's ``.glp`` clip files, so synthetic benchmarks can be saved,
inspected and reloaded::

    CLIP <name> <extent_nm>
    RECT <x0> <y0> <x1> <y1>
    ...
    END

Blank lines and ``#`` comments are ignored.  Coordinates are nm floats.
"""

from __future__ import annotations

import os
from typing import TextIO, Union

from .layout import Layout
from .shapes import Rect

PathOrFile = Union[str, os.PathLike, TextIO]


def dumps(layout: Layout) -> str:
    """Serialize a layout to the text format."""
    name = layout.name or "clip"
    lines = [f"CLIP {name} {layout.extent:.12g}"]
    lines.extend(
        f"RECT {r.x0:.12g} {r.y0:.12g} {r.x1:.12g} {r.y1:.12g}"
        for r in layout.rects)
    lines.append("END")
    return "\n".join(lines) + "\n"


def loads(text: str) -> Layout:
    """Parse a layout from the text format."""
    layout: Layout = None
    ended = False
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if ended:
            raise ValueError(f"line {line_no}: content after END")
        tokens = line.split()
        keyword = tokens[0].upper()
        if keyword == "CLIP":
            if layout is not None:
                raise ValueError(f"line {line_no}: duplicate CLIP header")
            if len(tokens) != 3:
                raise ValueError(f"line {line_no}: CLIP needs name and extent")
            layout = Layout(extent=float(tokens[2]), name=tokens[1])
        elif keyword == "RECT":
            if layout is None:
                raise ValueError(f"line {line_no}: RECT before CLIP header")
            if len(tokens) != 5:
                raise ValueError(f"line {line_no}: RECT needs 4 coordinates")
            x0, y0, x1, y1 = (float(t) for t in tokens[1:])
            layout.add(Rect(x0, y0, x1, y1))
        elif keyword == "END":
            if layout is None:
                raise ValueError(f"line {line_no}: END before CLIP header")
            ended = True
        else:
            raise ValueError(f"line {line_no}: unknown keyword {tokens[0]!r}")
    if layout is None:
        raise ValueError("no CLIP header found")
    if not ended:
        raise ValueError("missing END")
    return layout


def save(layout: Layout, path: PathOrFile) -> None:
    """Write a layout to a file path or file object."""
    if hasattr(path, "write"):
        path.write(dumps(layout))
        return
    with open(path, "w", encoding="ascii") as handle:
        handle.write(dumps(layout))


def load(path: PathOrFile) -> Layout:
    """Read a layout from a file path or file object."""
    if hasattr(path, "read"):
        return loads(path.read())
    with open(path, "r", encoding="ascii") as handle:
        return loads(handle.read())
