"""Rectilinear geometry primitives for layout clips.

VLSI metal-1 patterns are rectilinear; this module provides the
:class:`Rect` primitive (axis-aligned, nm integer-friendly coordinates)
and a small set of geometric predicates used by the design-rule checker
and the layout synthesizer.  All coordinates are nanometres.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple


@dataclass(frozen=True, order=True)
class Rect:
    """Axis-aligned rectangle ``[x0, x1) x [y0, y1)`` in nm.

    The half-open convention means two rects sharing only an edge do not
    overlap but do *abut* — which matters for union area computations.
    """

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self):
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise ValueError(
                f"degenerate rect: ({self.x0}, {self.y0}, {self.x1}, {self.y1})")

    # -- measures -------------------------------------------------------
    @property
    def width(self) -> float:
        """Horizontal extent."""
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        """Vertical extent."""
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return (0.5 * (self.x0 + self.x1), 0.5 * (self.y0 + self.y1))

    @property
    def min_dimension(self) -> float:
        """Critical dimension of the shape: its narrower side."""
        return min(self.width, self.height)

    @property
    def is_horizontal(self) -> bool:
        """True when the rect is wider than tall (a horizontal wire)."""
        return self.width >= self.height

    # -- predicates -----------------------------------------------------
    def intersects(self, other: "Rect") -> bool:
        """True when interiors overlap (shared edges don't count)."""
        return (self.x0 < other.x1 and other.x0 < self.x1 and
                self.y0 < other.y1 and other.y0 < self.y1)

    def touches(self, other: "Rect") -> bool:
        """True when rects overlap or abut (closed-set intersection)."""
        return (self.x0 <= other.x1 and other.x0 <= self.x1 and
                self.y0 <= other.y1 and other.y0 <= self.y1)

    def contains_point(self, x: float, y: float) -> bool:
        return self.x0 <= x < self.x1 and self.y0 <= y < self.y1

    def contains_rect(self, other: "Rect") -> bool:
        return (self.x0 <= other.x0 and other.x1 <= self.x1 and
                self.y0 <= other.y0 and other.y1 <= self.y1)

    # -- constructions ----------------------------------------------------
    def intersection(self, other: "Rect") -> "Rect":
        """Overlap region; raises ``ValueError`` when disjoint."""
        return Rect(max(self.x0, other.x0), max(self.y0, other.y0),
                    min(self.x1, other.x1), min(self.y1, other.y1))

    def expanded(self, margin: float) -> "Rect":
        """Rect grown by ``margin`` on every side."""
        return Rect(self.x0 - margin, self.y0 - margin,
                    self.x1 + margin, self.y1 + margin)

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def scaled(self, factor: float) -> "Rect":
        return Rect(self.x0 * factor, self.y0 * factor,
                    self.x1 * factor, self.y1 * factor)

    # -- distances --------------------------------------------------------
    def gap(self, other: "Rect") -> float:
        """Euclidean gap between closed rects (0 when touching)."""
        dx = max(other.x0 - self.x1, self.x0 - other.x1, 0.0)
        dy = max(other.y0 - self.y1, self.y0 - other.y1, 0.0)
        return float((dx * dx + dy * dy) ** 0.5)

    def axis_gaps(self, other: "Rect") -> Tuple[float, float]:
        """Per-axis gaps ``(dx, dy)``; both 0 when rects touch."""
        dx = max(other.x0 - self.x1, self.x0 - other.x1, 0.0)
        dy = max(other.y0 - self.y1, self.y0 - other.y1, 0.0)
        return dx, dy


def union_area(rects: Iterable[Rect]) -> float:
    """Exact area of the union of rectangles (sweep line over x).

    The synthetic ICCAD-13-substitute clips are tuned to match the
    per-clip pattern areas of Table 2, which requires the union area,
    not the sum (wires may overlap at jogs).
    """
    rects = list(rects)
    if not rects:
        return 0.0
    xs = sorted({r.x0 for r in rects} | {r.x1 for r in rects})
    total = 0.0
    for left, right in zip(xs[:-1], xs[1:]):
        width = right - left
        if width <= 0:
            continue
        # Collect y-intervals of rects spanning this x-slab and merge.
        intervals: List[Tuple[float, float]] = sorted(
            (r.y0, r.y1) for r in rects if r.x0 <= left and r.x1 >= right)
        covered = 0.0
        current_start = current_end = None
        for y0, y1 in intervals:
            if current_start is None:
                current_start, current_end = y0, y1
            elif y0 <= current_end:
                current_end = max(current_end, y1)
            else:
                covered += current_end - current_start
                current_start, current_end = y0, y1
        if current_start is not None:
            covered += current_end - current_start
        total += width * covered
    return total


def bounding_box(rects: Iterable[Rect]) -> Rect:
    """Smallest rect containing all inputs."""
    rects = list(rects)
    if not rects:
        raise ValueError("bounding_box of an empty collection")
    return Rect(min(r.x0 for r in rects), min(r.y0 for r in rects),
                max(r.x1 for r in rects), max(r.y1 for r in rects))
