"""``repro.geometry`` — rectilinear layout geometry substrate.

Shapes and clips (:mod:`shapes`, :mod:`layout`), rasterization and the
paper's pooling/interpolation resolution bridge (:mod:`raster`), the
Table 1 design rules with a checker (:mod:`design_rules`), and a plain
text clip format (:mod:`glp`).
"""

from . import glp
from .design_rules import DesignRuleChecker, DesignRules, RuleViolation
from .layout import Layout
from .raster import (average_pool, bilinear_upsample, binarize, rasterize)
from .shapes import Rect, bounding_box, union_area

__all__ = [
    "Rect", "union_area", "bounding_box",
    "Layout",
    "rasterize", "average_pool", "bilinear_upsample", "binarize",
    "DesignRules", "DesignRuleChecker", "RuleViolation",
    "glp",
]
