"""Layout clips: a window plus the rectilinear shapes inside it.

A :class:`Layout` is the unit the whole flow operates on — the "target
clip" ``Z_t`` of the paper.  It owns a square window (in nm) and a list
of :class:`~repro.geometry.shapes.Rect` patterns, and knows how to
measure itself (union pattern area, as reported in Table 2's "Area"
column) and validate that shapes stay inside the window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional

from .shapes import Rect, bounding_box, union_area


@dataclass
class Layout:
    """A square layout clip.

    Attributes
    ----------
    extent:
        Side length of the clip window in nm; the window spans
        ``[0, extent) x [0, extent)``.
    rects:
        Pattern shapes (may overlap; overlaps merge on raster/union).
    name:
        Optional clip identifier (benchmark ids like ``"iccad13-01"``).
    """

    extent: float
    rects: List[Rect] = field(default_factory=list)
    name: Optional[str] = None

    def __post_init__(self):
        if self.extent <= 0:
            raise ValueError(f"extent must be positive, got {self.extent}")
        self.rects = list(self.rects)

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Rect]:
        return iter(self.rects)

    def __len__(self) -> int:
        return len(self.rects)

    @property
    def window(self) -> Rect:
        return Rect(0.0, 0.0, self.extent, self.extent)

    @property
    def pattern_area(self) -> float:
        """Union area of all shapes in nm^2 (Table 2 "Area" column)."""
        return union_area(self.rects)

    @property
    def density(self) -> float:
        """Pattern area as a fraction of the window area."""
        return self.pattern_area / (self.extent * self.extent)

    # ------------------------------------------------------------------
    def add(self, rect: Rect) -> None:
        """Append a shape (must fit in the window)."""
        if not self.window.contains_rect(rect):
            raise ValueError(f"rect {rect} exceeds window {self.window}")
        self.rects.append(rect)

    def extend(self, rects: Iterable[Rect]) -> None:
        for rect in rects:
            self.add(rect)

    def validate(self) -> None:
        """Raise if any shape leaves the window."""
        for rect in self.rects:
            if not self.window.contains_rect(rect):
                raise ValueError(f"rect {rect} exceeds window {self.window}")

    def bounding_box(self) -> Rect:
        return bounding_box(self.rects)

    def scaled(self, factor: float) -> "Layout":
        """Uniformly scale window and shapes (resolution bridging)."""
        return Layout(extent=self.extent * factor,
                      rects=[r.scaled(factor) for r in self.rects],
                      name=self.name)

    def translated_into_window(self) -> "Layout":
        """Shift shapes so the pattern bounding box is centered."""
        box = self.bounding_box()
        cx, cy = box.center
        dx = self.extent / 2.0 - cx
        dy = self.extent / 2.0 - cy
        return Layout(extent=self.extent,
                      rects=[r.translated(dx, dy) for r in self.rects],
                      name=self.name)
