"""Per-op autograd profiler for ``repro.nn``.

When a :class:`Profiler` is active (via the context manager or
:func:`enable`/:func:`disable`), instrumented tensor ops — ``conv2d``,
``deconv2d`` (``conv_transpose2d``), ``matmul`` and the elementwise
ops that route through :meth:`Tensor._make` — record per-op wall time,
call counts, FLOP estimates and allocated output bytes for both the
forward pass and (via :meth:`wrap_backward`) the backward pass.
``Module.forward`` calls are timed separately with self-time
attribution so nested modules do not double-count their children.

Render the collected data with :meth:`Profiler.table` /
:meth:`Profiler.module_table` — sorted terminal tables in the style of
``torch.autograd.profiler``:

    with Profiler() as prof:
        loss = model(x).sum()
        loss.backward()
    print(prof.table())

Disabled cost is a single module-global ``None`` check per op (the
``ACTIVE`` read), which the overhead guard in
``tests/obs/test_overhead.py`` keeps under 5%.

FLOP estimates use the standard multiply-accumulate-counts-as-two
convention and are exact for the dense ops (asserted against closed
forms in ``tests/obs/test_profiler.py``):

* ``conv2d``: ``2*N*F*OH*OW*C*KH*KW`` plus ``N*F*OH*OW`` adds for bias;
* ``deconv2d``: ``2*N*C*H*W*F*KH*KW`` plus ``N*F*OH*OW`` bias adds
  (every input pixel scatters a full ``F*KH*KW`` stencil);
* ``matmul``: ``2 * prod(batch) * m * k * n`` over broadcast batch dims.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple


# ----------------------------------------------------------------------
# FLOP formulas (exact closed forms, test-asserted)
# ----------------------------------------------------------------------
def conv2d_flops(n: int, c: int, f: int, oh: int, ow: int, kh: int,
                 kw: int, bias: bool = False) -> int:
    """FLOPs of a dense NCHW conv2d producing an (n, f, oh, ow) output."""
    flops = 2 * n * f * oh * ow * c * kh * kw
    if bias:
        flops += n * f * oh * ow
    return flops


def conv_transpose2d_flops(n: int, c: int, h: int, w: int, f: int,
                           kh: int, kw: int, oh: int = 0, ow: int = 0,
                           bias: bool = False) -> int:
    """FLOPs of a dense transposed conv over an (n, c, h, w) input."""
    flops = 2 * n * c * h * w * f * kh * kw
    if bias:
        flops += n * f * oh * ow
    return flops


def matmul_flops(a_shape: Sequence[int], b_shape: Sequence[int]) -> int:
    """FLOPs of ``a @ b`` with numpy broadcasting semantics."""
    a_shape, b_shape = tuple(a_shape), tuple(b_shape)
    if len(a_shape) == 1:
        a_shape = (1,) + a_shape
    if len(b_shape) == 1:
        b_shape = b_shape + (1,)
    m, k = a_shape[-2], a_shape[-1]
    n = b_shape[-1]
    batch_a, batch_b = a_shape[:-2], b_shape[:-2]
    batch = 1
    for da, db in zip(((1,) * (len(batch_b) - len(batch_a)) + batch_a),
                      ((1,) * (len(batch_a) - len(batch_b)) + batch_b)):
        batch *= max(da, db)
    return 2 * batch * m * k * n


class OpStats:
    """Accumulated statistics for one op name."""

    __slots__ = ("count", "seconds", "flops", "nbytes",
                 "backward_count", "backward_seconds")

    def __init__(self):
        self.count = 0
        self.seconds = 0.0
        self.flops = 0
        self.nbytes = 0
        self.backward_count = 0
        self.backward_seconds = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"count": self.count, "seconds": self.seconds,
                "flops": self.flops, "nbytes": self.nbytes,
                "backward_count": self.backward_count,
                "backward_seconds": self.backward_seconds}


class Profiler:
    """Collects per-op and per-module statistics; thread-safe.

    Use as a context manager (installs itself as the module-global
    :data:`ACTIVE` profiler) or install manually with :func:`enable`.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._ops: Dict[str, OpStats] = {}
        self._modules: Dict[str, Dict[str, float]] = {}
        self._local = threading.local()
        self.peak_nbytes = 0
        self._live_nbytes = 0

    # -- op recording ---------------------------------------------------
    def record(self, name: str, seconds: float, flops: int = 0,
               nbytes: int = 0) -> None:
        """Record one forward execution of op ``name``."""
        with self._lock:
            stats = self._ops.get(name)
            if stats is None:
                stats = self._ops[name] = OpStats()
            stats.count += 1
            stats.seconds += seconds
            stats.flops += flops
            stats.nbytes += nbytes
            self._live_nbytes += nbytes
            if self._live_nbytes > self.peak_nbytes:
                self.peak_nbytes = self._live_nbytes

    def release(self, nbytes: int) -> None:
        """Account an allocation as freed (drops live, not peak)."""
        with self._lock:
            self._live_nbytes -= nbytes

    def record_backward(self, name: str, seconds: float) -> None:
        with self._lock:
            stats = self._ops.get(name)
            if stats is None:
                stats = self._ops[name] = OpStats()
            stats.backward_count += 1
            stats.backward_seconds += seconds

    def wrap_backward(self, name: str,
                      backward: Optional[Callable]) -> Optional[Callable]:
        """Wrap an autograd backward closure so its time is attributed."""
        if backward is None:
            return None

        def timed_backward(*args, **kwargs):
            started = time.perf_counter()
            try:
                return backward(*args, **kwargs)
            finally:
                self.record_backward(name, time.perf_counter() - started)

        return timed_backward

    # -- module timing (self time via a per-thread call stack) ----------
    def _module_stack(self) -> List[List]:
        stack = getattr(self._local, "modules", None)
        if stack is None:
            stack = []
            self._local.modules = stack
        return stack

    def begin_module(self, name: str) -> None:
        # frame: [name, start, child_seconds]
        self._module_stack().append([name, time.perf_counter(), 0.0])

    def end_module(self, name: str) -> None:
        stack = self._module_stack()
        if not stack or stack[-1][0] != name:  # pragma: no cover - guard
            return
        frame = stack.pop()
        elapsed = time.perf_counter() - frame[1]
        if stack:
            stack[-1][2] += elapsed
        with self._lock:
            entry = self._modules.get(name)
            if entry is None:
                entry = self._modules[name] = {
                    "count": 0, "seconds": 0.0, "self_seconds": 0.0}
            entry["count"] += 1
            entry["seconds"] += elapsed
            entry["self_seconds"] += elapsed - frame[2]

    # -- inspection -----------------------------------------------------
    def op_stats(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            return {name: stats.as_dict()
                    for name, stats in self._ops.items()}

    def module_stats(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            return {name: dict(entry)
                    for name, entry in self._modules.items()}

    def total_seconds(self) -> float:
        with self._lock:
            return sum(s.seconds + s.backward_seconds
                       for s in self._ops.values())

    def total_flops(self) -> int:
        with self._lock:
            return sum(s.flops for s in self._ops.values())

    # -- rendering ------------------------------------------------------
    def table(self, sort_by: str = "seconds") -> str:
        """Sorted per-op terminal table (forward + backward columns)."""
        ops = self.op_stats()
        rows = sorted(ops.items(), key=lambda kv: -kv[1].get(sort_by, 0.0))
        name_width = max([len(name) for name in ops] + [len("op")])
        header = (f"{'op':<{name_width}}  {'calls':>7}  {'fwd ms':>10}  "
                  f"{'bwd ms':>10}  {'GFLOP':>9}  {'MB':>9}")
        lines = [header, "-" * len(header)]
        for name, stats in rows:
            lines.append(
                f"{name:<{name_width}}  {stats['count']:>7d}  "
                f"{stats['seconds'] * 1e3:>10.3f}  "
                f"{stats['backward_seconds'] * 1e3:>10.3f}  "
                f"{stats['flops'] / 1e9:>9.3f}  "
                f"{stats['nbytes'] / 1e6:>9.3f}")
        lines.append("-" * len(header))
        lines.append(
            f"total op time {self.total_seconds() * 1e3:.3f} ms | "
            f"{self.total_flops() / 1e9:.3f} GFLOP | "
            f"peak alloc {self.peak_nbytes / 1e6:.3f} MB")
        return "\n".join(lines)

    def module_table(self) -> str:
        """Per-module table with inclusive and self time."""
        modules = self.module_stats()
        rows = sorted(modules.items(),
                      key=lambda kv: -kv[1]["self_seconds"])
        name_width = max([len(name) for name in modules] + [len("module")])
        header = (f"{'module':<{name_width}}  {'calls':>7}  "
                  f"{'total ms':>10}  {'self ms':>10}")
        lines = [header, "-" * len(header)]
        for name, entry in rows:
            lines.append(
                f"{name:<{name_width}}  {int(entry['count']):>7d}  "
                f"{entry['seconds'] * 1e3:>10.3f}  "
                f"{entry['self_seconds'] * 1e3:>10.3f}")
        return "\n".join(lines)

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "Profiler":
        enable(self)
        return self

    def __exit__(self, *exc_info) -> bool:
        disable()
        return False


# ----------------------------------------------------------------------
# Module-level active profiler — instrumented ops read this directly:
#     prof = _profiler.ACTIVE
#     if prof is not None: ...
# ----------------------------------------------------------------------
ACTIVE: Optional[Profiler] = None

_previous: List[Optional[Profiler]] = []


def enable(profiler: Optional[Profiler] = None) -> Profiler:
    """Install (and return) a profiler as the process-wide active one."""
    global ACTIVE
    if profiler is None:
        profiler = Profiler()
    _previous.append(ACTIVE)
    ACTIVE = profiler
    return profiler


def disable() -> Optional[Profiler]:
    """Uninstall the active profiler and return it."""
    global ACTIVE
    profiler = ACTIVE
    ACTIVE = _previous.pop() if _previous else None
    return profiler


def active() -> Optional[Profiler]:
    return ACTIVE


def timed(name: str, flops_and_bytes: Optional[Tuple[int, int]] = None):
    """Decorator variant used by non-tensor helpers (rarely needed)."""
    def wrap(fn):
        def wrapped(*args, **kwargs):
            prof = ACTIVE
            if prof is None:
                return fn(*args, **kwargs)
            started = time.perf_counter()
            out = fn(*args, **kwargs)
            flops, nbytes = flops_and_bytes or (0, 0)
            prof.record(name, time.perf_counter() - started,
                        flops=flops, nbytes=nbytes)
            return out
        return wrapped
    return wrap
