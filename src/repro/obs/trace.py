"""Hierarchical span tracer with Chrome trace-event export.

The repo's headline claims are runtime claims (Table 2 reports GAN-OPC
at ~0.49x ILT runtime), so the first observability primitive is a way
to see *where* wall-clock goes: :func:`span` opens a named, nested,
thread-safe timing span around any region —

    from repro.obs import trace

    with trace.span("ilt.step", iteration=i):
        ...

Spans are recorded only while a :class:`Tracer` is installed via
:func:`enable` (or the :func:`tracing` context manager).  When tracing
is disabled — the default — :func:`span` returns a shared no-op
context manager, so instrumentation left in hot paths costs one global
read plus an empty ``with`` block (~sub-microsecond; the overhead
guard in ``tests/obs/test_overhead.py`` pins it below 5% of an engine
forward call).

Finished spans can be exported two ways:

* **Chrome trace-event JSON** (:meth:`Tracer.write_chrome_trace`) —
  one complete (``"ph": "X"``) event per span, loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``;
* **JSONL stream** — pass ``jsonl_path`` to stream every finished
  span as one strict-JSON line (name, start offset, duration, thread,
  depth, attributes) while the run is still going.

Span nesting is tracked per thread: depth and parent containment come
from a thread-local stack, so concurrent threads trace independently
and the Chrome export separates them by ``tid``.
"""

from __future__ import annotations

import atexit
import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional


class Span:
    """One finished timing span (times in seconds from the tracer epoch)."""

    __slots__ = ("name", "start", "duration", "tid", "depth", "args")

    def __init__(self, name: str, start: float, duration: float, tid: int,
                 depth: int, args: Dict[str, Any]):
        self.name = name
        self.start = start
        self.duration = duration
        self.tid = tid
        self.depth = depth
        self.args = args

    @property
    def end(self) -> float:
        return self.start + self.duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, start={self.start:.6f}, "
                f"dur={self.duration:.6f}, depth={self.depth})")


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Live span: pushes onto the thread-local stack, records on exit."""

    __slots__ = ("_tracer", "_name", "_args", "_start", "_depth")

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._args = args

    def __enter__(self) -> "_SpanContext":
        stack = self._tracer._stack()
        self._depth = len(stack)
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        duration = time.perf_counter() - self._start
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._tracer._finish(Span(
            self._name, self._start - self._tracer.epoch, duration,
            threading.get_ident(), self._depth, self._args))
        return False


class Tracer:
    """Collects :class:`Span` records; thread-safe.

    Parameters
    ----------
    jsonl_path:
        Optional path; every finished span is appended to it as one
        strict-JSON line the moment it closes (parent directories are
        created on demand).
    """

    def __init__(self, jsonl_path: Optional[str] = None):
        self.epoch = time.perf_counter()
        self.pid = os.getpid()
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._external: List[Dict[str, Any]] = []
        self._local = threading.local()
        self._jsonl_path = jsonl_path
        self._jsonl_fh = None

    # -- span recording -------------------------------------------------
    def span(self, name: str, **args) -> _SpanContext:
        """Open a nested span; use as a context manager."""
        return _SpanContext(self, name, args)

    def _stack(self) -> List[_SpanContext]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _finish(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            if self._jsonl_path is not None:
                if self._jsonl_fh is None:
                    directory = os.path.dirname(
                        os.path.abspath(self._jsonl_path))
                    os.makedirs(directory, exist_ok=True)
                    self._jsonl_fh = open(self._jsonl_path, "w",
                                          encoding="utf-8")
                self._jsonl_fh.write(json.dumps(
                    {"name": span.name, "start": span.start,
                     "duration": span.duration, "tid": span.tid,
                     "depth": span.depth, "args": span.args},
                    sort_keys=True) + "\n")
                self._jsonl_fh.flush()

    # -- external (cross-process) events --------------------------------
    def add_external_events(self, events: List[Dict[str, Any]]) -> None:
        """Merge already-formed Chrome trace events from another process.

        Used by the worker-pool telemetry path: finished worker spans
        are converted (with their real pid/tid and the parent's epoch)
        by :mod:`repro.obs.aggregate` and deposited here so a single
        :meth:`write_chrome_trace` emits one fleet-wide trace.
        """
        with self._lock:
            self._external.extend(events)

    def external_events(self) -> List[Dict[str, Any]]:
        """Snapshot of merged cross-process Chrome events."""
        with self._lock:
            return list(self._external)

    # -- inspection -----------------------------------------------------
    def spans(self) -> List[Span]:
        """Snapshot list of finished spans (insertion order)."""
        with self._lock:
            return list(self._spans)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Aggregate per span name: ``{name: {count, seconds}}``."""
        out: Dict[str, Dict[str, float]] = {}
        for span in self.spans():
            entry = out.setdefault(span.name, {"count": 0, "seconds": 0.0})
            entry["count"] += 1
            entry["seconds"] += span.duration
        return out

    def wall_seconds(self) -> float:
        """Seconds elapsed since the tracer was constructed."""
        return time.perf_counter() - self.epoch

    def top_level_seconds(self) -> float:
        """Total duration of depth-0 spans (non-overlapping per thread)."""
        return sum(s.duration for s in self.spans() if s.depth == 0)

    def coverage(self, wall_seconds: Optional[float] = None) -> float:
        """Fraction of wall time accounted for by top-level spans."""
        wall = self.wall_seconds() if wall_seconds is None else wall_seconds
        if wall <= 0.0:
            return 0.0
        return self.top_level_seconds() / wall

    # -- export ---------------------------------------------------------
    def to_chrome(self) -> Dict[str, Any]:
        """Chrome trace-event representation (Perfetto-loadable).

        Includes any cross-process events merged in via
        :meth:`add_external_events`; each event keeps the pid of the
        process that produced it, so Perfetto renders one lane group
        per worker next to this process's own spans.
        """
        pid = self.pid
        events: List[Dict[str, Any]] = [{
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "pid": pid,
            "tid": span.tid,
            "args": span.args,
        } for span in self.spans()]
        events.extend(self.external_events())
        return {"displayTimeUnit": "ms", "traceEvents": events}

    def write_chrome_trace(self, path: str) -> str:
        """Write the Chrome trace JSON to ``path`` and return it."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome(), fh)
        return path

    def close(self) -> None:
        with self._lock:
            if self._jsonl_fh is not None and not self._jsonl_fh.closed:
                self._jsonl_fh.close()


# ----------------------------------------------------------------------
# Module-level API — the form instrumentation points use.
# ----------------------------------------------------------------------
_ACTIVE: Optional[Tracer] = None
_ATEXIT_REGISTERED = False


def _atexit_flush() -> None:
    """Last-chance flush: close a tracer still active at interpreter exit.

    A tracer left installed at exit means the run ended without the
    normal ``disable()``/export path (worker killed mid-task, uncaught
    exception, ``sys.exit`` inside a span).  Rather than silently
    truncating the JSONL span stream, flush and close it and tell the
    user the trace is partial.
    """
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    if tracer is None:
        return
    spans = len(tracer.spans())
    tracer.close()
    print(f"repro.obs.trace: warning: tracer still active at exit; "
          f"flushed a partial trace ({spans} finished spans"
          f"{', jsonl stream closed' if tracer._jsonl_path else ''})",
          file=sys.stderr)


def _register_atexit() -> None:
    global _ATEXIT_REGISTERED
    if not _ATEXIT_REGISTERED:
        atexit.register(_atexit_flush)
        _ATEXIT_REGISTERED = True


def reset_for_child() -> None:
    """Drop tracer state inherited across ``fork`` without closing it.

    A forked worker inherits the parent's active tracer *object* —
    including the open JSONL file description shared with the parent.
    Calling :func:`disable` here would flush/close through that shared
    stream and corrupt the parent's span file, so the child simply
    forgets the reference; the parent keeps sole ownership.
    """
    global _ACTIVE
    _ACTIVE = None


def span(name: str, **args):
    """A span on the active tracer, or a shared no-op when disabled."""
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **args)


def active() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return _ACTIVE


def is_enabled() -> bool:
    return _ACTIVE is not None


def enable(tracer: Optional[Tracer] = None,
           jsonl_path: Optional[str] = None) -> Tracer:
    """Install (and return) a tracer as the process-wide active one."""
    global _ACTIVE
    if tracer is None:
        tracer = Tracer(jsonl_path=jsonl_path)
    _ACTIVE = tracer
    _register_atexit()
    return tracer


def disable() -> Optional[Tracer]:
    """Uninstall the active tracer (returned for export) and close it."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    if tracer is not None:
        tracer.close()
    return tracer


@contextmanager
def tracing(jsonl_path: Optional[str] = None):
    """Scoped tracing: install a fresh tracer, restore the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    tracer = Tracer(jsonl_path=jsonl_path)
    _ACTIVE = tracer
    _register_atexit()
    try:
        yield tracer
    finally:
        _ACTIVE = previous
        tracer.close()


def format_span_table(summary: Dict[str, Dict[str, float]],
                      wall_seconds: Optional[float] = None) -> str:
    """Terminal table of a :meth:`Tracer.summary`, sorted by total time."""
    rows = sorted(summary.items(), key=lambda kv: -kv[1]["seconds"])
    total = wall_seconds if wall_seconds else sum(
        entry["seconds"] for _, entry in rows) or 1.0
    name_width = max([len(name) for name, _ in rows] + [len("span")])
    header = (f"{'span':<{name_width}}  {'calls':>7}  {'total ms':>10}  "
              f"{'avg ms':>10}  {'%':>6}")
    lines = [header, "-" * len(header)]
    for name, entry in rows:
        count = int(entry["count"])
        seconds = entry["seconds"]
        avg = seconds / count if count else 0.0
        lines.append(
            f"{name:<{name_width}}  {count:>7d}  {seconds * 1e3:>10.3f}  "
            f"{avg * 1e3:>10.3f}  {100.0 * seconds / total:>5.1f}%")
    return "\n".join(lines)
