"""OpenMetrics / Prometheus text exposition for metrics registries.

:func:`render_openmetrics` turns any
:class:`~repro.obs.registry.MetricsRegistry` snapshot into the
OpenMetrics text format (the superset Prometheus scrapes):

* metric names are sanitised to ``[a-zA-Z0-9_:]`` and prefixed
  (``repro_`` by default) — ``litho.forward_seconds`` becomes
  ``repro_litho_forward_seconds``;
* a ``|key=value,key=value`` suffix on a registry metric name becomes
  the label set (the convention the resource sampler uses for per-pid
  gauges: ``pool.worker.rss_bytes|pid=123`` renders as
  ``repro_pool_worker_rss_bytes{pid="123"}``);
* counters get the mandated ``_total`` sample suffix; histograms
  render as summaries (``_count``/``_sum``) plus ``_min``/``_max``
  gauges (the registry keeps streaming extrema, not buckets);
* the exposition ends with ``# EOF`` as OpenMetrics requires.

Serve it two ways: :func:`write_openmetrics` for a scrape file, or
:class:`MetricsServer` for a real ``GET /metrics`` endpoint on a
background thread (the CLI's ``--metrics-port``).
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Iterable, List, Optional, Tuple

from .registry import MetricsRegistry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

CONTENT_TYPE = ("application/openmetrics-text; version=1.0.0; "
                "charset=utf-8")


def split_labels(raw_name: str) -> Tuple[str, Dict[str, str]]:
    """Split a registry metric name into (base name, label dict)."""
    if "|" not in raw_name:
        return raw_name, {}
    base, _, suffix = raw_name.partition("|")
    labels: Dict[str, str] = {}
    for pair in suffix.split(","):
        key, _, value = pair.partition("=")
        if key:
            labels[key.strip()] = value.strip()
    return base, labels


def metric_name(raw: str, prefix: str = "repro") -> str:
    """Sanitised exposition name: prefix + ``[a-zA-Z0-9_:]`` only."""
    cleaned = _NAME_RE.sub("_", raw.strip())
    if prefix:
        return f"{prefix}_{cleaned}"
    return cleaned


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"'
                     for key, value in sorted(labels.items()))
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Family:
    """One metric family: type line plus accumulated samples."""

    def __init__(self, name: str, kind: str):
        self.name = name
        self.kind = kind
        self.samples: List[str] = []


def _families_from_snapshot(snapshot: Dict[str, Dict],
                            prefix: str) -> Dict[str, _Family]:
    families: Dict[str, _Family] = {}

    def family(name: str, kind: str) -> _Family:
        entry = families.get(name)
        if entry is None:
            entry = families[name] = _Family(name, kind)
        return entry

    for raw, value in snapshot.get("counters", {}).items():
        base, labels = split_labels(raw)
        name = metric_name(base, prefix)
        family(name, "counter").samples.append(
            f"{name}_total{_labels_text(labels)} {_format_value(value)}")
    for raw, value in snapshot.get("gauges", {}).items():
        base, labels = split_labels(raw)
        name = metric_name(base, prefix)
        family(name, "gauge").samples.append(
            f"{name}{_labels_text(labels)} {_format_value(value)}")
    for raw, summary in snapshot.get("histograms", {}).items():
        base, labels = split_labels(raw)
        name = metric_name(base, prefix)
        entry = family(name, "summary")
        text = _labels_text(labels)
        entry.samples.append(
            f"{name}_count{text} {_format_value(summary.get('count', 0))}")
        entry.samples.append(
            f"{name}_sum{text} {_format_value(summary.get('sum', 0.0))}")
        for extremum in ("min", "max"):
            extremum_name = f"{name}_{extremum}"
            family(extremum_name, "gauge").samples.append(
                f"{extremum_name}{text} "
                f"{_format_value(summary.get(extremum, 0.0))}")
    return families


def render_openmetrics(registries: "MetricsRegistry | Iterable",
                       prefix: str = "repro") -> str:
    """OpenMetrics text for one registry or an iterable of them."""
    if isinstance(registries, MetricsRegistry):
        registries = [registries]
    merged: Dict[str, _Family] = {}
    for registry in registries:
        for name, fam in _families_from_snapshot(
                registry.snapshot(), prefix).items():
            entry = merged.get(name)
            if entry is None:
                merged[name] = fam
            else:
                entry.samples.extend(fam.samples)
    lines: List[str] = []
    for name in sorted(merged):
        fam = merged[name]
        lines.append(f"# TYPE {fam.name} {fam.kind}")
        lines.extend(fam.samples)
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(registries, path: str, prefix: str = "repro") -> str:
    """Write the exposition to ``path`` (scrape-file mode); returns it."""
    import os
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_openmetrics(registries, prefix=prefix))
    return path


class MetricsServer:
    """Background ``GET /metrics`` endpoint over live registries.

    Registries are re-snapshotted per request, so scrapes always see
    current values.  ``port=0`` binds an ephemeral port (tests);
    :attr:`port` reports the bound one.
    """

    def __init__(self, registries, host: str = "127.0.0.1",
                 port: int = 0, prefix: str = "repro"):
        if isinstance(registries, MetricsRegistry):
            registries = [registries]
        self.registries = list(registries)
        self.prefix = prefix
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
                body = render_openmetrics(
                    server.registries, prefix=server.prefix).encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # silence per-request stderr
                pass

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = int(self._httpd.server_address[1])
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, name="repro-metrics",
                daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=1.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
