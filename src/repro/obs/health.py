"""Fleet health: heartbeats, stall watchdog, /proc resource sampling.

Three cooperating pieces, all stdlib-only:

* :class:`HeartbeatBoard` — a tiny POSIX shared-memory table of
  ``(pid, beat wall-clock, task sequence, task active)`` slots.  The
  pool parent creates it; each worker claims one slot at startup and a
  daemon thread stamps it every ``interval`` seconds, plus an
  immediate stamp at task start/finish.  No locks: each slot has one
  writer, and readers tolerate a torn read (the next beat fixes it).
* :class:`Watchdog` — a parent-side daemon thread that scans the
  board while a ``map`` is in flight and reports any worker whose
  *active* task has not beaten for ``stall_after`` seconds.  One
  report per (pid, task sequence): a stuck task is flagged once, not
  every scan.  Straggler detection (tasks > k×median) is post-hoc
  from per-task durations — see ``PoolStats.stragglers``.
* :class:`ResourceSampler` — reads ``/proc/<pid>/statm`` (RSS) and
  ``/proc/<pid>/stat`` (utime+stime, thread count) for each live
  worker and records per-pid gauges (``pool.worker.rss_bytes|pid=N``
  — the ``|key=value`` suffix becomes an OpenMetrics label, see
  :mod:`repro.obs.export`) plus fleet-wide histograms into a
  :class:`~repro.obs.registry.MetricsRegistry`.  A no-op on platforms
  without procfs (:func:`proc_available`).

Worker attachment to the board is excluded from the multiprocessing
resource tracker (the bpo-38119 rule, same as ``repro.parallel.shm``):
only the creating parent unlinks.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional

from .registry import MetricsRegistry

_SLOT_FIELDS = 4  # pid, beat_ts (wall clock), task_seq, task_active
_FIELD_BYTES = 8


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach without resource-tracker registration (bpo-38119)."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


@dataclass
class WorkerBeat:
    """Decoded board slot for one live worker."""

    pid: int
    beat_ts: float
    task_seq: int
    task_active: bool

    def age(self, now: Optional[float] = None) -> float:
        return (time.time() if now is None else now) - self.beat_ts


class HeartbeatBoard:
    """Fixed-capacity shared-memory heartbeat table.

    The parent constructs with ``create=True`` and later
    :meth:`unlink`\\ s; workers attach by name and :meth:`claim` a
    slot.  Claiming probes from ``pid % capacity`` and verifies the
    written pid survives a short settle, which resolves the (already
    unlikely — pids differ) case of two workers racing for one slot.
    """

    def __init__(self, name: Optional[str] = None, capacity: int = 16,
                 create: bool = False):
        self.capacity = int(capacity)
        nbytes = self.capacity * _SLOT_FIELDS * _FIELD_BYTES
        if create:
            self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
            self.owner = True
        else:
            if name is None:
                raise ValueError("attaching requires the board name")
            self._shm = _attach_untracked(name)
            self.owner = False
        self.name = self._shm.name
        self._table = memoryview(self._shm.buf)[:nbytes].cast("d")
        if create:
            for i in range(self.capacity * _SLOT_FIELDS):
                self._table[i] = 0.0

    # -- worker side ----------------------------------------------------
    def claim(self, pid: Optional[int] = None) -> int:
        """Claim a free slot for ``pid``; returns the slot index."""
        pid = os.getpid() if pid is None else pid
        start = pid % self.capacity
        for probe in range(self.capacity):
            slot = (start + probe) % self.capacity
            base = slot * _SLOT_FIELDS
            current = int(self._table[base])
            if current not in (0, pid):
                continue
            self._table[base] = float(pid)
            time.sleep(0.002)  # settle: let a racing claimer overwrite
            if int(self._table[base]) == pid:
                self.beat(slot, pid, task_seq=0, task_active=False)
                return slot
        raise RuntimeError(f"heartbeat board full ({self.capacity} slots)")

    def beat(self, slot: int, pid: int, task_seq: int,
             task_active: bool) -> None:
        base = slot * _SLOT_FIELDS
        self._table[base] = float(pid)
        self._table[base + 2] = float(task_seq)
        self._table[base + 3] = 1.0 if task_active else 0.0
        # Timestamp last: a reader that sees the fresh ts sees the rest.
        self._table[base + 1] = time.time()

    def clear(self, slot: int) -> None:
        base = slot * _SLOT_FIELDS
        for i in range(_SLOT_FIELDS):
            self._table[base + i] = 0.0

    # -- parent side ----------------------------------------------------
    def read(self) -> List[WorkerBeat]:
        """Decode every claimed slot."""
        beats = []
        for slot in range(self.capacity):
            base = slot * _SLOT_FIELDS
            pid = int(self._table[base])
            if pid <= 0:
                continue
            beats.append(WorkerBeat(
                pid=pid, beat_ts=float(self._table[base + 1]),
                task_seq=int(self._table[base + 2]),
                task_active=bool(self._table[base + 3])))
        return beats

    def close(self) -> None:
        self._table.release()
        self._shm.close()

    def unlink(self) -> None:
        if not self.owner:
            raise RuntimeError("only the creating process may unlink")
        self._shm.unlink()


class WorkerHeartbeat:
    """Worker-side beat source: one claimed slot plus a daemon thread."""

    def __init__(self, board_name: str, capacity: int,
                 interval: float = 0.25):
        self.board = HeartbeatBoard(name=board_name, capacity=capacity)
        self.pid = os.getpid()
        self.slot = self.board.claim(self.pid)
        self.interval = float(interval)
        self.task_seq = 0
        self.task_active = False
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="repro-heartbeat", daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.board.beat(self.slot, self.pid,
                                self.task_seq, self.task_active)
            except Exception:  # pragma: no cover - board unlinked mid-run
                return

    def task_started(self) -> None:
        self.task_seq += 1
        self.task_active = True
        self.board.beat(self.slot, self.pid, self.task_seq, True)

    def task_finished(self) -> None:
        self.task_active = False
        self.board.beat(self.slot, self.pid, self.task_seq, False)

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=1.0)
        self.board.close()


@dataclass
class StallEvent:
    """One watchdog report: an active task silent past the threshold."""

    pid: int
    task_seq: int
    gap_seconds: float


class Watchdog:
    """Parent-side scanner flagging silent active tasks on the board.

    ``on_stall`` is called (from the watchdog thread) at most once per
    (pid, task_seq).  A beating-but-slow task is *not* a stall — that
    is a straggler, judged post-hoc against the median task time.
    """

    def __init__(self, board: HeartbeatBoard, stall_after: float = 5.0,
                 interval: float = 0.25,
                 on_stall: Optional[Callable[[StallEvent], None]] = None,
                 sampler: Optional["ResourceSampler"] = None):
        self.board = board
        self.stall_after = float(stall_after)
        self.interval = float(interval)
        self.on_stall = on_stall
        self.sampler = sampler
        self._reported: Dict[int, int] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def scan_once(self, now: Optional[float] = None) -> List[StallEvent]:
        """One scan pass; also drives the resource sampler if present."""
        now = time.time() if now is None else now
        beats = self.board.read()
        if self.sampler is not None:
            self.sampler.sample([beat.pid for beat in beats])
        events = []
        for beat in beats:
            if not beat.task_active:
                continue
            gap = beat.age(now)
            if gap < self.stall_after:
                continue
            if self._reported.get(beat.pid) == beat.task_seq:
                continue
            self._reported[beat.pid] = beat.task_seq
            event = StallEvent(pid=beat.pid, task_seq=beat.task_seq,
                               gap_seconds=gap)
            events.append(event)
            if self.on_stall is not None:
                self.on_stall(event)
        return events

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.scan_once()
            except Exception:  # pragma: no cover - board torn down
                return

    def start(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-watchdog", daemon=True)
            self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=1.0)
            self._thread = None


# ----------------------------------------------------------------------
# /proc resource sampling
# ----------------------------------------------------------------------
@dataclass
class ResourceSample:
    """One /proc reading for one process."""

    pid: int
    rss_bytes: float
    cpu_seconds: float
    num_threads: int


def proc_available() -> bool:
    """Whether per-process procfs files exist on this platform."""
    return os.path.exists("/proc/self/statm")


def read_proc_sample(pid: int) -> Optional[ResourceSample]:
    """RSS / cumulative CPU / thread count for ``pid`` (None if gone)."""
    try:
        with open(f"/proc/{pid}/statm", "r", encoding="ascii") as fh:
            rss_pages = int(fh.read().split()[1])
        with open(f"/proc/{pid}/stat", "r", encoding="ascii") as fh:
            stat = fh.read()
        # Fields after the parenthesised comm (which may contain spaces).
        fields = stat[stat.rindex(")") + 2:].split()
        # stat(5): fields 14/15 are utime/stime; here offset by the 3
        # leading fields consumed (pid, comm, state) -> indices 11/12.
        ticks = int(fields[11]) + int(fields[12])
        num_threads = int(fields[17])
    except (OSError, ValueError, IndexError):
        return None
    page = os.sysconf("SC_PAGE_SIZE")
    hz = os.sysconf("SC_CLK_TCK")
    return ResourceSample(pid=pid, rss_bytes=float(rss_pages * page),
                          cpu_seconds=ticks / float(hz),
                          num_threads=num_threads)


class ResourceSampler:
    """Records per-worker /proc samples into a metrics registry.

    Per-pid last values land in gauges named with an OpenMetrics label
    suffix (``pool.worker.rss_bytes|pid=123``); fleet distributions
    land in histograms (``pool.worker.rss_bytes``).  CPU *utilization*
    between consecutive samples is derived from the cumulative CPU
    delta over the wall delta and recorded the same two ways.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 prefix: str = "pool.worker"):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.prefix = prefix
        self._last: Dict[int, tuple] = {}  # pid -> (wall, cpu_seconds)

    def sample(self, pids: List[int]) -> List[ResourceSample]:
        if not proc_available():
            return []
        now = time.time()
        samples = []
        for pid in pids:
            reading = read_proc_sample(pid)
            if reading is None:
                self._last.pop(pid, None)
                continue
            samples.append(reading)
            self._record(reading, now)
        return samples

    def _record(self, s: ResourceSample, now: float) -> None:
        reg, pre = self.registry, self.prefix
        reg.gauge(f"{pre}.rss_bytes|pid={s.pid}").set(s.rss_bytes)
        reg.gauge(f"{pre}.cpu_seconds|pid={s.pid}").set(s.cpu_seconds)
        reg.gauge(f"{pre}.threads|pid={s.pid}").set(s.num_threads)
        reg.histogram(f"{pre}.rss_bytes").observe(s.rss_bytes)
        previous = self._last.get(s.pid)
        self._last[s.pid] = (now, s.cpu_seconds)
        if previous is not None:
            wall = now - previous[0]
            if wall > 0:
                util = max(0.0, (s.cpu_seconds - previous[1]) / wall)
                reg.gauge(f"{pre}.cpu_utilization|pid={s.pid}").set(util)
                reg.histogram(f"{pre}.cpu_utilization").observe(util)
