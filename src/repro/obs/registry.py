"""Unified metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` per scope (each :class:`LithoEngine`
carries its own as ``engine.metrics``; engine-less components use the
process-wide :func:`default_registry`).  The registry is the single
backing store for run statistics — ``EngineStats`` is a facade over
it — so snapshots, telemetry, and the ``repro profile`` report all
read the same numbers.

* :class:`Counter` — monotonically increasing float/int total;
* :class:`Gauge` — last-set value;
* :class:`Histogram` — count/sum/min/max and optionally the raw value
  sequence (``keep_values=True``) for error curves.

All mutation is lock-protected; ``snapshot()`` returns plain nested
dicts safe to hand to telemetry or JSON.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional


class Counter:
    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge:
    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Streaming count/sum/min/max; optionally retains raw values."""

    __slots__ = ("name", "count", "sum", "min", "max", "_values", "_lock")

    def __init__(self, name: str, keep_values: bool = False):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._values: Optional[List[float]] = [] if keep_values else None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if self._values is not None:
                self._values.append(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def values(self) -> List[float]:
        """Raw observed sequence (only when ``keep_values=True``)."""
        with self._lock:
            return list(self._values or [])

    def summary(self) -> Dict[str, float]:
        with self._lock:
            if not self.count:
                return {"count": 0, "sum": 0.0, "mean": 0.0,
                        "min": 0.0, "max": 0.0}
            return {"count": self.count, "sum": self.sum,
                    "mean": self.sum / self.count,
                    "min": self.min, "max": self.max}

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.sum = 0.0
            self.min = float("inf")
            self.max = float("-inf")
            if self._values is not None:
                self._values.clear()


class MetricsRegistry:
    """Namespace of named counters/gauges/histograms.

    Accessors create-on-first-use so instrumentation points never need
    registration boilerplate; repeated lookups return the same object.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str, keep_values: bool = False) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(
                    name, keep_values=keep_values)
            return metric

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-dict snapshot of every metric in the registry."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in counters.items()},
            "gauges": {name: g.value for name, g in gauges.items()},
            "histograms": {name: h.summary()
                           for name, h in histograms.items()},
        }

    def reset(self) -> None:
        with self._lock:
            metrics = (list(self._counters.values())
                       + list(self._gauges.values())
                       + list(self._histograms.values()))
        for metric in metrics:
            metric.reset()


_default: Optional[MetricsRegistry] = None
_default_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """Process-wide registry for components without their own scope."""
    global _default
    if _default is None:
        with _default_lock:
            if _default is None:
                _default = MetricsRegistry()
    return _default
