"""repro.obs — observability layer: span tracer, autograd profiler,
metrics registry.

This package sits *below* the rest of ``repro`` in the import graph:
it depends only on the standard library, so ``repro.nn``,
``repro.litho``, ``repro.ilt`` and ``repro.core`` are free to import
it for instrumentation without cycles.

Three cooperating pieces (see DESIGN.md §9):

* :mod:`repro.obs.trace` — hierarchical span tracer with Chrome
  trace-event (Perfetto) and JSONL export;
* :mod:`repro.obs.profiler` — per-op autograd profiler (wall time,
  call counts, FLOPs, allocated bytes) for ``repro.nn``;
* :mod:`repro.obs.registry` — counters / gauges / histograms backing
  ``EngineStats`` and the per-phase training metrics.
"""

from repro.obs import profiler, trace
from repro.obs.profiler import (Profiler, conv2d_flops,
                                conv_transpose2d_flops, matmul_flops)
from repro.obs.registry import (Counter, Gauge, Histogram,
                                MetricsRegistry, default_registry)
from repro.obs.trace import Span, Tracer, format_span_table, tracing

__all__ = [
    "trace",
    "profiler",
    "Tracer",
    "Span",
    "tracing",
    "format_span_table",
    "Profiler",
    "conv2d_flops",
    "conv_transpose2d_flops",
    "matmul_flops",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
]
