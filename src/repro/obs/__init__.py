"""repro.obs — observability layer: span tracer, autograd profiler,
metrics registry.

This package sits *below* the rest of ``repro`` in the import graph:
it depends only on the standard library, so ``repro.nn``,
``repro.litho``, ``repro.ilt`` and ``repro.core`` are free to import
it for instrumentation without cycles.

Six cooperating pieces (see DESIGN.md §9 and §13):

* :mod:`repro.obs.trace` — hierarchical span tracer with Chrome
  trace-event (Perfetto) and JSONL export;
* :mod:`repro.obs.profiler` — per-op autograd profiler (wall time,
  call counts, FLOPs, allocated bytes) for ``repro.nn``;
* :mod:`repro.obs.registry` — counters / gauges / histograms backing
  ``EngineStats`` and the per-phase training metrics;
* :mod:`repro.obs.aggregate` — cross-process telemetry: workers ship
  bounded span/profiler/engine summaries back with task results and
  the parent merges them into one trace and fleet tables;
* :mod:`repro.obs.health` — heartbeat board, stall watchdog, and
  /proc resource sampler for the worker pool;
* :mod:`repro.obs.export` — OpenMetrics/Prometheus text exposition
  (file or HTTP) of any registry.
"""

from repro.obs import aggregate, export, health, profiler, trace
from repro.obs.aggregate import FleetTelemetry, TaskTelemetry
from repro.obs.export import (MetricsServer, render_openmetrics,
                              write_openmetrics)
from repro.obs.health import (HeartbeatBoard, ResourceSampler, StallEvent,
                              Watchdog, proc_available)
from repro.obs.profiler import (Profiler, conv2d_flops,
                                conv_transpose2d_flops, matmul_flops)
from repro.obs.registry import (Counter, Gauge, Histogram,
                                MetricsRegistry, default_registry)
from repro.obs.trace import Span, Tracer, format_span_table, tracing

__all__ = [
    "trace",
    "profiler",
    "aggregate",
    "health",
    "export",
    "Tracer",
    "Span",
    "tracing",
    "format_span_table",
    "Profiler",
    "conv2d_flops",
    "conv_transpose2d_flops",
    "matmul_flops",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "TaskTelemetry",
    "FleetTelemetry",
    "HeartbeatBoard",
    "Watchdog",
    "StallEvent",
    "ResourceSampler",
    "proc_available",
    "MetricsServer",
    "render_openmetrics",
    "write_openmetrics",
]
