"""Cross-process telemetry aggregation for the worker pool.

`repro.obs` instruments one process; the worker pool runs the actual
compute in several.  This module is the bridge: a worker wraps each
task in its own :class:`~repro.obs.trace.Tracer`/profiler, condenses
what they collected into one small picklable :class:`TaskTelemetry`
(bounded span list + full summaries), and ships it back with the task
result.  The parent merges every report into a
:class:`FleetTelemetry` and — when the parent itself is tracing —
rebases the worker spans onto the parent clock and deposits them as
Chrome events with the *worker's* pid, so ``--trace-dir`` writes one
Perfetto-loadable trace with a lane group per process, nested in time
under the parent's ``parallel.map`` span.

Clock rebasing: span starts are relative to the recording tracer's
``epoch`` (a ``time.perf_counter()`` reading).  On Linux
``perf_counter`` is ``CLOCK_MONOTONIC``, which is system-wide, so a
worker span's parent-relative start is simply
``span.start + worker_epoch - parent_epoch``.

Span shipping is bounded: at most :func:`span_cap` spans (default
2000, env ``REPRO_WORKER_SPAN_CAP``) cross the pickle boundary per
task, keeping the longest spans (the structural parents); the
per-name summary is always complete, so fleet tables never lose
counts even when individual events are dropped from the trace.

Everything here is stdlib-only and operates on plain dicts/tuples —
the same layering rule as the rest of ``repro.obs``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .trace import Tracer

#: ``(name, start, duration, tid, depth)`` — args are dropped from
#: shipped spans; they are free-form and may not pickle compactly.
SpanTuple = Tuple[str, float, float, int, int]

DEFAULT_SPAN_CAP = 2000
SPAN_CAP_ENV = "REPRO_WORKER_SPAN_CAP"

ENGINE_FIELDS = ("forward_calls", "forward_masks", "forward_seconds",
                 "gradient_calls", "gradient_masks", "gradient_seconds")

#: Engine counter -> the span name its call count must reconcile with.
RECONCILE_SPANS = {"forward_calls": "litho.forward",
                   "gradient_calls": "litho.adjoint"}


def span_cap() -> int:
    """Max spans shipped per task (``REPRO_WORKER_SPAN_CAP``, >= 0)."""
    raw = os.environ.get(SPAN_CAP_ENV, "")
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_SPAN_CAP


@dataclass
class TaskTelemetry:
    """One task's worth of worker-side observability, picklable.

    ``spans`` is bounded (see :func:`span_cap`); ``span_summary`` is
    always the complete per-name aggregate.  ``engine_delta`` is the
    task's change in the worker's warm-engine litho counters and ships
    with *every* task (six floats), tracing enabled or not — it is
    what lets ``repro table2 --workers N`` reconcile with serial runs.
    """

    pid: int = 0
    epoch: float = 0.0
    seconds: float = 0.0
    spans: List[SpanTuple] = field(default_factory=list)
    span_summary: Dict[str, Dict[str, float]] = field(default_factory=dict)
    dropped_spans: int = 0
    op_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    module_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    engine_delta: Dict[str, float] = field(default_factory=dict)


def capture_task(tracer: Optional[Tracer], profiler: Optional[Any],
                 engine_delta: Dict[str, float], seconds: float,
                 cap: Optional[int] = None) -> TaskTelemetry:
    """Condense a finished task's tracer/profiler into telemetry.

    Worker-side.  ``tracer``/``profiler`` may be ``None`` (telemetry
    shipping off) — the engine delta still ships.
    """
    telemetry = TaskTelemetry(pid=os.getpid(), seconds=seconds,
                              engine_delta=dict(engine_delta))
    if tracer is not None:
        telemetry.epoch = tracer.epoch
        telemetry.span_summary = tracer.summary()
        spans = tracer.spans()
        limit = span_cap() if cap is None else cap
        if len(spans) > limit:
            keep = sorted(spans, key=lambda s: -s.duration)[:limit]
            telemetry.dropped_spans = len(spans) - limit
            spans = keep
        telemetry.spans = [(s.name, s.start, s.duration, s.tid, s.depth)
                           for s in spans]
    if profiler is not None:
        telemetry.op_stats = profiler.op_stats()
        telemetry.module_stats = profiler.module_stats()
    return telemetry


# ----------------------------------------------------------------------
# Parent-side: Chrome event conversion
# ----------------------------------------------------------------------
def process_metadata_event(pid: int, label: str) -> Dict[str, Any]:
    """Perfetto ``process_name`` metadata event for a worker lane."""
    return {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": label}}


def chrome_events(telemetry: TaskTelemetry,
                  parent_epoch: float) -> List[Dict[str, Any]]:
    """Worker spans as Chrome events on the parent's clock.

    Events keep the worker's real pid and tid, so Perfetto shows one
    process group per worker, time-aligned with (and nested under)
    the parent's ``parallel.map`` span.
    """
    offset = telemetry.epoch - parent_epoch
    return [{
        "name": name,
        "cat": "repro",
        "ph": "X",
        "ts": (start + offset) * 1e6,
        "dur": duration * 1e6,
        "pid": telemetry.pid,
        "tid": tid,
        "args": {"depth": depth},
    } for name, start, duration, tid, depth in telemetry.spans]


# ----------------------------------------------------------------------
# Parent-side: fleet aggregation
# ----------------------------------------------------------------------
def _merge_numeric(into: Dict[str, Dict[str, float]],
                   other: Dict[str, Dict[str, float]]) -> None:
    for name, stats in other.items():
        entry = into.setdefault(name, {})
        for key, value in stats.items():
            if isinstance(value, (int, float)):
                entry[key] = entry.get(key, 0) + value
            else:  # pragma: no cover - non-numeric fields pass through
                entry.setdefault(key, value)


@dataclass
class FleetTelemetry:
    """Running merge of every :class:`TaskTelemetry` a pool has seen."""

    tasks: int = 0
    dropped_spans: int = 0
    engine_totals: Dict[str, float] = field(
        default_factory=lambda: {name: 0.0 for name in ENGINE_FIELDS})
    span_summary: Dict[str, Dict[str, float]] = field(default_factory=dict)
    span_counts: Dict[int, int] = field(default_factory=dict)
    op_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    module_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: per-worker breakdowns (keyed by pid) of the two merges above —
    #: what the ``worker_span_summary`` telemetry records are built from.
    pid_span_summary: Dict[int, Dict[str, Dict[str, float]]] = field(
        default_factory=dict)
    pid_engine: Dict[int, Dict[str, float]] = field(default_factory=dict)

    def add(self, telemetry: Optional[TaskTelemetry]) -> None:
        if telemetry is None:
            return
        self.tasks += 1
        self.dropped_spans += telemetry.dropped_spans
        for name, value in telemetry.engine_delta.items():
            self.engine_totals[name] = (
                self.engine_totals.get(name, 0.0) + value)
        if telemetry.engine_delta:
            pid_totals = self.pid_engine.setdefault(telemetry.pid, {})
            for name, value in telemetry.engine_delta.items():
                pid_totals[name] = pid_totals.get(name, 0.0) + value
        _merge_numeric(self.span_summary, telemetry.span_summary)
        if telemetry.span_summary:
            counted = sum(int(entry.get("count", 0))
                          for entry in telemetry.span_summary.values())
            self.span_counts[telemetry.pid] = (
                self.span_counts.get(telemetry.pid, 0) + counted)
            _merge_numeric(
                self.pid_span_summary.setdefault(telemetry.pid, {}),
                telemetry.span_summary)
        _merge_numeric(self.op_stats, telemetry.op_stats)
        _merge_numeric(self.module_stats, telemetry.module_stats)

    # -- derived views --------------------------------------------------
    @property
    def engine_seconds(self) -> float:
        return (self.engine_totals.get("forward_seconds", 0.0)
                + self.engine_totals.get("gradient_seconds", 0.0))

    def merged_summary(self, parent_summary: Optional[Dict] = None
                       ) -> Dict[str, Dict[str, float]]:
        """Worker span summary merged with a parent tracer summary."""
        merged: Dict[str, Dict[str, float]] = {}
        _merge_numeric(merged, self.span_summary)
        if parent_summary:
            _merge_numeric(merged, parent_summary)
        return merged

    def reconcile(self, parent_summary: Optional[Dict] = None
                  ) -> Dict[str, Dict[str, float]]:
        """Fleet engine counters vs. merged litho span counts, 1:1."""
        return reconcile(self.engine_totals,
                         self.merged_summary(parent_summary))


def reconcile(engine_totals: Dict[str, float],
              span_summary: Dict[str, Dict[str, float]]
              ) -> Dict[str, Dict[str, float]]:
    """Engine call counters vs. litho span counts, 1:1.

    Returns ``{counter: {stats, spans, match}}`` — the fleet-level
    version of the serial EngineStats/tracer reconciliation contract
    (forward_calls == litho.forward count, gradient_calls ==
    litho.adjoint count).  Pass combined totals (worker + parent
    deltas) against a merged summary to check a whole run.
    """
    out: Dict[str, Dict[str, float]] = {}
    for counter, span_name in RECONCILE_SPANS.items():
        stats_count = int(engine_totals.get(counter, 0))
        span_count = int(span_summary.get(span_name, {}).get("count", 0))
        out[counter] = {"stats": stats_count, "spans": span_count,
                        "match": stats_count == span_count}
    return out


def format_engine_table(totals: Dict[str, float],
                        title: str = "fleet litho engine") -> str:
    """Terminal table of summed engine counters (profile/table2)."""
    header = (f"{'stage':<10}  {'calls':>8}  {'masks':>8}  "
              f"{'seconds':>9}  {'masks/s':>9}")
    lines = [f"{title}:", header, "-" * len(header)]
    for stage in ("forward", "gradient"):
        calls = int(totals.get(f"{stage}_calls", 0))
        masks = int(totals.get(f"{stage}_masks", 0))
        seconds = float(totals.get(f"{stage}_seconds", 0.0))
        rate = masks / seconds if seconds > 0 else 0.0
        lines.append(f"{stage:<10}  {calls:>8d}  {masks:>8d}  "
                     f"{seconds:>9.3f}  {rate:>9.1f}")
    return "\n".join(lines)
