"""Shared-memory ndarray transport for the worker pool.

Image batches — target stacks, result masks, ILT parameters — are far
too large to pickle per task: a (4000, 256, 256) float64 target library
is 2 GB, and round-tripping it through the executor's pipes would
swamp the compute being distributed.  Instead the parent allocates one
POSIX shared-memory segment per array (:meth:`SharedArray.create` /
:meth:`SharedArray.from_array`), ships only the tiny :class:`ShmSpec`
(name + shape + dtype) inside each task, and workers map the same
physical pages with :meth:`SharedArray.attach`.  Tasks then read their
input slice and write their output slice in place; nothing but scalars
and histories crosses the pickle boundary.

Lifetime rules:

* the **parent** owns every segment: it calls :meth:`SharedArray.unlink`
  (usually via the context manager) once all tasks have finished;
* **workers** only ever attach and close; attachment is explicitly
  excluded from the ``resource_tracker`` so a worker exiting does not
  tear down (or spuriously warn about) a segment the parent still owns
  — the well-known bpo-38119 behaviour of ``multiprocessing``.

Writers partition output slices by task index, so no two tasks touch
the same bytes and no locking is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class ShmSpec:
    """Picklable handle to a shared ndarray (what tasks receive)."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without registering it with the resource
    tracker.

    Python < 3.13 registers every ``SharedMemory(name=...)`` attachment
    with the resource tracker, which then unlinks the segment when the
    attaching process exits — destroying memory the creating process
    still owns (bpo-38119).  Attachments must not be tracked; only the
    owner unlinks.  3.13+ exposes ``track=False`` for exactly this;
    earlier versions need the registration call suppressed (suppressing
    beats unregistering afterwards, which under ``fork`` double-removes
    the entry from the shared tracker and makes it log spurious
    ``KeyError`` tracebacks at unlink time).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedArray:
    """A numpy array backed by a ``multiprocessing.shared_memory`` segment.

    Use :meth:`create`/:meth:`from_array` in the parent (owner) and
    :meth:`attach` in workers.  The owner's context-manager exit closes
    *and unlinks*; an attached instance only closes.
    """

    def __init__(self, shm: shared_memory.SharedMemory,
                 spec: ShmSpec, owner: bool):
        self._shm = shm
        self.spec = spec
        self.owner = owner
        self.array = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                                buffer=shm.buf)

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, shape: Tuple[int, ...], dtype) -> "SharedArray":
        """Allocate an owned, zero-initialized shared array."""
        dtype = np.dtype(dtype)
        nbytes = max(int(np.prod(shape)) * dtype.itemsize, 1)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        spec = ShmSpec(name=shm.name, shape=tuple(int(s) for s in shape),
                       dtype=dtype.str)
        shared = cls(shm, spec, owner=True)
        shared.array.fill(0)
        return shared

    @classmethod
    def from_array(cls, array: np.ndarray) -> "SharedArray":
        """Allocate an owned shared array holding a copy of ``array``."""
        array = np.asarray(array)
        shared = cls.create(array.shape, array.dtype)
        shared.array[...] = array
        return shared

    @classmethod
    def attach(cls, spec: ShmSpec) -> "SharedArray":
        """Map an existing segment by spec (worker side, non-owning)."""
        return cls(_attach_untracked(spec.name), spec, owner=False)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (the array becomes invalid)."""
        self.array = None
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner only; call after close is fine)."""
        if not self.owner:
            raise RuntimeError("only the owning process may unlink")
        self._shm.unlink()

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self.owner:
            self.unlink()

    def __repr__(self) -> str:
        role = "owner" if self.owner else "attached"
        return (f"SharedArray({self.spec.name}, shape={self.spec.shape}, "
                f"dtype={self.spec.dtype}, {role})")


def copy_out(shared: Optional[SharedArray]) -> Optional[np.ndarray]:
    """Private copy of a shared array's contents (survives unlink)."""
    if shared is None:
        return None
    return np.array(shared.array, copy=True)
