"""Process pool with warm per-worker litho engines.

:class:`WorkerPool` wraps ``concurrent.futures.ProcessPoolExecutor``
with the conventions every parallel workload in this repo shares:

* **warm engines** — each worker process builds (lazily, on first use)
  one :class:`~repro.litho.engine.LithoEngine` for the pool's litho
  config and precision, via :func:`worker_engine`.  Under the default
  ``fork`` start method the parent's in-process kernel cache is
  inherited, so workers never re-decompose kernels; under ``spawn``
  they fall back to the ``REPRO_KERNEL_CACHE`` disk cache.
* **shared-memory transport** — tasks receive
  :class:`~repro.parallel.shm.ShmSpec` handles and map the arrays with
  :func:`attach_array`, which memoizes attachments per segment so a
  worker maps each array once, not once per task.
* **error discipline** — an exception inside a task is captured with
  its traceback and re-raised in the parent as :class:`WorkerTaskError`
  (remaining futures are cancelled); a worker dying outright (segfault,
  ``os._exit``) surfaces promptly as :class:`WorkerCrashError` instead
  of hanging the parent.
* **observability** — every :meth:`WorkerPool.map` runs under a
  ``parallel.map`` span, and per-task ``(pid, seconds)`` reports are
  aggregated into :class:`PoolStats`, whose :meth:`PoolStats.format_table`
  is what ``repro profile --workers N`` prints as per-worker
  utilization.

Task functions must be module-level (picklable); per-task arguments
should be small — ship arrays through shared memory, not arguments.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs import trace

from ..litho.config import LithoConfig
from ..litho.engine import LithoEngine, resolve_precision
from ..litho.kernels import build_kernels
from .shm import ShmSpec, SharedArray


class WorkerTaskError(RuntimeError):
    """A task raised inside a worker; carries the remote traceback."""

    def __init__(self, message: str, remote_traceback: str = ""):
        super().__init__(message)
        self.remote_traceback = remote_traceback


class WorkerCrashError(RuntimeError):
    """A worker process died without reporting a result."""


# ----------------------------------------------------------------------
# Worker-side globals (one copy per worker process)
# ----------------------------------------------------------------------
_WORKER_STATE: Dict[str, Any] = {
    "litho_config": None,
    "precision": None,
    "state": None,
    "arrays": {},
}


def _worker_init(litho_config: Optional[LithoConfig], precision: str,
                 state: Any) -> None:
    """Executor initializer: stash the pool-wide context in this worker."""
    _WORKER_STATE["litho_config"] = litho_config
    _WORKER_STATE["precision"] = precision
    _WORKER_STATE["state"] = state
    _WORKER_STATE["arrays"] = {}


def worker_engine(litho_config: Optional[LithoConfig] = None) -> LithoEngine:
    """The warm per-process engine for the pool's (or given) config."""
    config = litho_config or _WORKER_STATE["litho_config"]
    if config is None:
        raise RuntimeError("pool has no litho config and none was given")
    return LithoEngine.for_kernels(build_kernels(config),
                                   precision=_WORKER_STATE["precision"])


def worker_state() -> Any:
    """Pool-wide broadcast state (e.g. generator weights), if any."""
    return _WORKER_STATE["state"]


def attach_array(spec: ShmSpec):
    """Attach (memoized per worker) a shared array and return the ndarray."""
    shared = _WORKER_STATE["arrays"].get(spec.name)
    if shared is None:
        shared = SharedArray.attach(spec)
        _WORKER_STATE["arrays"][spec.name] = shared
    return shared.array


def _run_task(fn: Callable, args: Tuple) -> Tuple:
    """Worker-side wrapper: time the task and capture failures.

    Failures come back as data (not raised) so the parent never trips
    over an exception type that does not survive pickling.
    """
    started = time.perf_counter()
    try:
        value = fn(*args)
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        return ("error", f"{type(exc).__name__}: {exc}",
                traceback.format_exc(), os.getpid(),
                time.perf_counter() - started)
    return ("ok", value, os.getpid(), time.perf_counter() - started)


# ----------------------------------------------------------------------
# Parent-side pool
# ----------------------------------------------------------------------
@dataclass
class PoolStats:
    """Aggregated per-worker execution accounting for one pool."""

    workers: int = 0
    tasks: int = 0
    wall_seconds: float = 0.0
    busy_seconds: Dict[int, float] = field(default_factory=dict)
    task_counts: Dict[int, int] = field(default_factory=dict)

    def record(self, pid: int, seconds: float) -> None:
        self.tasks += 1
        self.busy_seconds[pid] = self.busy_seconds.get(pid, 0.0) + seconds
        self.task_counts[pid] = self.task_counts.get(pid, 0) + 1

    @property
    def total_busy_seconds(self) -> float:
        return sum(self.busy_seconds.values())

    def utilization(self) -> float:
        """Mean fraction of pool wall-clock each worker spent computing."""
        if self.wall_seconds <= 0.0 or self.workers == 0:
            return 0.0
        return self.total_busy_seconds / (self.wall_seconds * self.workers)

    def format_table(self) -> str:
        """Per-worker utilization table (``repro profile`` output)."""
        lines = [f"{'worker pid':>12s} {'tasks':>6s} {'busy s':>9s} "
                 f"{'util %':>7s}"]
        for pid in sorted(self.busy_seconds):
            busy = self.busy_seconds[pid]
            util = (100.0 * busy / self.wall_seconds
                    if self.wall_seconds > 0 else 0.0)
            lines.append(f"{pid:>12d} {self.task_counts[pid]:>6d} "
                         f"{busy:>9.3f} {util:>6.1f}%")
        lines.append(f"{'total':>12s} {self.tasks:>6d} "
                     f"{self.total_busy_seconds:>9.3f} "
                     f"{100.0 * self.utilization():>6.1f}%")
        return "\n".join(lines)


def default_context() -> str:
    """``fork`` where the platform offers it (warm caches), else ``spawn``."""
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


class WorkerPool:
    """Fixed-size process pool for independent litho/ILT work items.

    Parameters
    ----------
    workers:
        Number of worker processes (>= 1).
    litho_config:
        Config whose engine :func:`worker_engine` builds in each worker.
    precision:
        Engine precision for workers (``None`` = ``REPRO_PRECISION``).
    state:
        Arbitrary picklable broadcast state, shipped once per worker at
        startup and readable via :func:`worker_state` (e.g. generator
        weights for the flow/Table-2 workloads).
    context:
        ``multiprocessing`` start-method name; default prefers ``fork``.
    """

    def __init__(self, workers: int,
                 litho_config: Optional[LithoConfig] = None,
                 precision: Optional[str] = None,
                 state: Any = None,
                 context: Optional[str] = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.litho_config = litho_config
        self.precision = resolve_precision(precision)
        self.state = state
        self.context = context or default_context()
        self.stats = PoolStats(workers=self.workers)
        self._executor: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context(self.context),
                initializer=_worker_init,
                initargs=(self.litho_config, self.precision, self.state))
        return self._executor

    def map(self, fn: Callable, items: Iterable[Tuple],
            label: str = "parallel.map") -> List[Any]:
        """Run ``fn(*item)`` for every item; results in submission order.

        ``fn`` must be a module-level function.  A task exception
        cancels the remaining work and raises :class:`WorkerTaskError`
        with the worker traceback; a dead worker raises
        :class:`WorkerCrashError`.
        """
        items = list(items)
        executor = self._ensure_executor()
        started = time.perf_counter()
        futures = [executor.submit(_run_task, fn, tuple(item))
                   for item in items]
        results: List[Any] = []
        with trace.span(label, tasks=len(items), workers=self.workers):
            try:
                for future in futures:
                    report = future.result()
                    if report[0] == "error":
                        _, message, remote_tb, pid, seconds = report
                        self.stats.record(pid, seconds)
                        raise WorkerTaskError(
                            f"worker task failed: {message}", remote_tb)
                    _, value, pid, seconds = report
                    self.stats.record(pid, seconds)
                    results.append(value)
            except BrokenProcessPool as exc:
                raise WorkerCrashError(
                    "a worker process died before finishing its task "
                    "(pool is no longer usable)") from exc
            finally:
                for future in futures:
                    future.cancel()
                self.stats.wall_seconds += time.perf_counter() - started
        return results

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (f"WorkerPool(workers={self.workers}, "
                f"context={self.context!r}, precision={self.precision!r})")
