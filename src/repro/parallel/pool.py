"""Process pool with warm per-worker litho engines.

:class:`WorkerPool` wraps ``concurrent.futures.ProcessPoolExecutor``
with the conventions every parallel workload in this repo shares:

* **warm engines** — each worker process builds (lazily, on first use)
  one :class:`~repro.litho.engine.LithoEngine` for the pool's litho
  config and precision, via :func:`worker_engine`.  Under the default
  ``fork`` start method the parent's in-process kernel cache is
  inherited, so workers never re-decompose kernels; under ``spawn``
  they fall back to the ``REPRO_KERNEL_CACHE`` disk cache.
* **shared-memory transport** — tasks receive
  :class:`~repro.parallel.shm.ShmSpec` handles and map the arrays with
  :func:`attach_array`, which memoizes attachments per segment so a
  worker maps each array once, not once per task.
* **error discipline** — an exception inside a task is captured with
  its traceback and re-raised in the parent as :class:`WorkerTaskError`
  (remaining futures are cancelled); a worker dying outright (segfault,
  ``os._exit``) surfaces promptly as :class:`WorkerCrashError` instead
  of hanging the parent.
* **observability** — every :meth:`WorkerPool.map` runs under a
  ``parallel.map`` span.  Each task ships back its engine-counter
  delta (always) and, when the parent is tracing, its finished spans
  and profiler tables as a bounded
  :class:`~repro.obs.aggregate.TaskTelemetry`; the parent merges
  these into :class:`PoolStats` (fleet engine/span/op totals) and
  deposits worker spans into the active tracer so ``--trace-dir``
  writes one pid-laned Chrome trace (DESIGN.md §13).
* **health** — workers stamp a shared-memory heartbeat board
  (per-task beacons + a daemon beat thread); while a ``map`` is in
  flight a parent watchdog flags active tasks silent past
  ``stall_after`` seconds into :attr:`PoolStats.stalls`, and a /proc
  resource sampler records per-worker RSS/CPU into the pool's
  :class:`~repro.obs.MetricsRegistry`.  Stragglers (tasks slower
  than k×median) are available post-hoc via
  :meth:`PoolStats.stragglers`.

Task functions must be module-level (picklable); per-task arguments
should be small — ship arrays through shared memory, not arguments.
"""

from __future__ import annotations

import multiprocessing
import os
import statistics
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, List, Optional, Set,
                    Tuple)

from repro.obs import MetricsRegistry, profiler, trace
from repro.obs import aggregate as obs_aggregate
from repro.obs import health as obs_health
from repro.obs.aggregate import FleetTelemetry, TaskTelemetry
from repro.obs.health import (HeartbeatBoard, ResourceSampler, StallEvent,
                              Watchdog, WorkerHeartbeat)

from repro.backend import resolve_backend

from ..litho.config import LithoConfig
from ..litho.engine import LithoEngine, resolve_precision
from ..litho.kernels import build_kernels
from .shm import ShmSpec, SharedArray

HEALTH_ENV = "REPRO_POOL_HEALTH"

#: ``progress`` callback signature for :meth:`WorkerPool.map`:
#: ``(done, total, pid, seconds)`` after every finished task.
ProgressFn = Callable[[int, int, int, float], None]


class WorkerTaskError(RuntimeError):
    """A task raised inside a worker; carries the remote traceback."""

    def __init__(self, message: str, remote_traceback: str = ""):
        super().__init__(message)
        self.remote_traceback = remote_traceback


class WorkerCrashError(RuntimeError):
    """A worker process died without reporting a result."""


# ----------------------------------------------------------------------
# Worker-side globals (one copy per worker process)
# ----------------------------------------------------------------------
_WORKER_STATE: Dict[str, Any] = {
    "litho_config": None,
    "precision": None,
    "backend": None,
    "state": None,
    "arrays": {},
    "engines": [],
    "heartbeat": None,
}


def _worker_init(litho_config: Optional[LithoConfig], precision: str,
                 state: Any,
                 heartbeat: Optional[Tuple[str, int, float]] = None,
                 backend: Optional[str] = None) -> None:
    """Executor initializer: stash the pool-wide context in this worker."""
    # Under ``fork`` the child inherits the parent's active tracer and
    # profiler objects (including an open JSONL file description shared
    # with the parent); drop them so worker telemetry is per-task and
    # the parent's streams stay uncorrupted.
    trace.reset_for_child()
    profiler.ACTIVE = None
    profiler._previous.clear()
    _WORKER_STATE["litho_config"] = litho_config
    _WORKER_STATE["precision"] = precision
    _WORKER_STATE["backend"] = backend
    _WORKER_STATE["state"] = state
    _WORKER_STATE["arrays"] = {}
    _WORKER_STATE["engines"] = []
    _WORKER_STATE["heartbeat"] = None
    if heartbeat is not None:
        name, capacity, interval = heartbeat
        try:
            _WORKER_STATE["heartbeat"] = WorkerHeartbeat(
                name, capacity, interval=interval)
        except Exception:  # board gone / platform quirk: run unmonitored
            _WORKER_STATE["heartbeat"] = None


def worker_engine(litho_config: Optional[LithoConfig] = None) -> LithoEngine:
    """The warm per-process engine for the pool's (or given) config.

    Engines handed out here are registered so :func:`_run_task` can
    snapshot their litho counters around each task and ship the delta
    back to the parent (``for_kernels`` memoizes, so the same warm
    engine — and its cumulative stats — persists across tasks).
    """
    config = litho_config or _WORKER_STATE["litho_config"]
    if config is None:
        raise RuntimeError("pool has no litho config and none was given")
    engine = LithoEngine.for_kernels(build_kernels(config),
                                     precision=_WORKER_STATE["precision"],
                                     backend=_WORKER_STATE["backend"])
    engines = _WORKER_STATE["engines"]
    if all(existing is not engine for existing, _ in engines):
        # Under ``fork`` the memoized engine is inherited with the
        # parent's accumulated counters; baseline them at registration
        # so shipped deltas count only work done in *this* process.
        engines.append((engine, dict(engine.stats.snapshot())))
    return engine


def worker_state() -> Any:
    """Pool-wide broadcast state (e.g. generator weights), if any."""
    return _WORKER_STATE["state"]


def attach_array(spec: ShmSpec):
    """Attach (memoized per worker) a shared array and return the ndarray."""
    shared = _WORKER_STATE["arrays"].get(spec.name)
    if shared is None:
        shared = SharedArray.attach(spec)
        _WORKER_STATE["arrays"][spec.name] = shared
    return shared.array


def _engine_totals() -> Dict[str, float]:
    """Summed litho-counter snapshot over this worker's warm engines.

    Each engine's registration-time baseline is subtracted, so totals
    reflect only calls made in this worker process.
    """
    totals: Dict[str, float] = {}
    for engine, baseline in _WORKER_STATE["engines"]:
        for name, value in engine.stats.snapshot().items():
            totals[name] = (totals.get(name, 0.0) + value
                            - baseline.get(name, 0.0))
    return totals


def _run_task(fn: Callable, args: Tuple, ship_telemetry: bool = False
              ) -> Tuple:
    """Worker-side wrapper: time the task, capture failures + telemetry.

    Failures come back as data (not raised) so the parent never trips
    over an exception type that does not survive pickling.  Every
    report carries a :class:`TaskTelemetry`: the engine-counter delta
    always ships (six floats); spans and profiler tables ship only
    when ``ship_telemetry`` (the parent was tracing at submit time).
    """
    heartbeat = _WORKER_STATE["heartbeat"]
    if heartbeat is not None:
        heartbeat.task_started()
    before = _engine_totals()
    tracer = prof = None
    if ship_telemetry:
        tracer = trace.enable(trace.Tracer())
        prof = profiler.enable()
    started = time.perf_counter()
    failure = None
    value = None
    try:
        try:
            value = fn(*args)
        except BaseException as exc:  # noqa: BLE001 - reported to parent
            failure = (f"{type(exc).__name__}: {exc}",
                       traceback.format_exc())
    finally:
        if ship_telemetry:
            trace.disable()
            profiler.disable()
    seconds = time.perf_counter() - started
    after = _engine_totals()
    delta = {name: after[name] - before.get(name, 0.0) for name in after}
    telemetry = obs_aggregate.capture_task(tracer, prof, delta, seconds)
    if heartbeat is not None:
        heartbeat.task_finished()
    if failure is not None:
        message, remote_tb = failure
        return ("error", message, remote_tb, os.getpid(), seconds,
                telemetry)
    return ("ok", value, os.getpid(), seconds, telemetry)


# ----------------------------------------------------------------------
# Parent-side pool
# ----------------------------------------------------------------------
@dataclass
class PoolStats:
    """Aggregated per-worker execution accounting for one pool."""

    workers: int = 0
    tasks: int = 0
    wall_seconds: float = 0.0
    busy_seconds: Dict[int, float] = field(default_factory=dict)
    task_counts: Dict[int, int] = field(default_factory=dict)
    task_records: List[Tuple[int, float]] = field(default_factory=list)
    stalls: List[StallEvent] = field(default_factory=list)
    fleet: FleetTelemetry = field(default_factory=FleetTelemetry)

    def record(self, pid: int, seconds: float,
               telemetry: Optional[TaskTelemetry] = None) -> None:
        self.tasks += 1
        self.busy_seconds[pid] = self.busy_seconds.get(pid, 0.0) + seconds
        self.task_counts[pid] = self.task_counts.get(pid, 0) + 1
        self.task_records.append((pid, seconds))
        if telemetry is not None:
            self.fleet.add(telemetry)

    def record_stall(self, event: StallEvent) -> None:
        self.stalls.append(event)

    @property
    def total_busy_seconds(self) -> float:
        return sum(self.busy_seconds.values())

    def utilization(self) -> float:
        """Mean fraction of pool wall-clock each worker spent computing."""
        if self.wall_seconds <= 0.0 or self.workers == 0:
            return 0.0
        return self.total_busy_seconds / (self.wall_seconds * self.workers)

    def median_task_seconds(self) -> float:
        if not self.task_records:
            return 0.0
        return statistics.median(seconds for _, seconds in
                                 self.task_records)

    def stragglers(self, k: float = 3.0, min_tasks: int = 4
                   ) -> List[Tuple[int, float]]:
        """Tasks slower than ``k`` × the median task time.

        Judged post-hoc over the whole run (a straggler beats its
        heartbeat, so the watchdog rightly ignores it); needs at
        least ``min_tasks`` records for the median to mean anything.
        """
        if len(self.task_records) < max(min_tasks, 1):
            return []
        median = self.median_task_seconds()
        if median <= 0.0:
            return []
        return [(pid, seconds) for pid, seconds in self.task_records
                if seconds > k * median]

    def format_table(self) -> str:
        """Per-worker utilization table (``repro profile`` output)."""
        straggler_pids: Dict[int, int] = {}
        for pid, _ in self.stragglers():
            straggler_pids[pid] = straggler_pids.get(pid, 0) + 1
        stall_pids: Dict[int, int] = {}
        for event in self.stalls:
            stall_pids[event.pid] = stall_pids.get(event.pid, 0) + 1
        lines = [f"{'worker pid':>12s} {'tasks':>6s} {'busy s':>9s} "
                 f"{'util %':>7s} {'flags':>14s}"]
        for pid in sorted(self.busy_seconds):
            busy = self.busy_seconds[pid]
            util = (100.0 * busy / self.wall_seconds
                    if self.wall_seconds > 0 else 0.0)
            flags = []
            if stall_pids.get(pid):
                flags.append(f"stalls:{stall_pids[pid]}")
            if straggler_pids.get(pid):
                flags.append(f"slow:{straggler_pids[pid]}")
            lines.append(f"{pid:>12d} {self.task_counts[pid]:>6d} "
                         f"{busy:>9.3f} {util:>6.1f}% "
                         f"{','.join(flags) or '-':>14s}")
        lines.append(f"{'total':>12s} {self.tasks:>6d} "
                     f"{self.total_busy_seconds:>9.3f} "
                     f"{100.0 * self.utilization():>6.1f}% "
                     f"{'':>14s}")
        if self.fleet.engine_seconds > 0.0:
            lines.append(obs_aggregate.format_engine_table(
                self.fleet.engine_totals))
        return "\n".join(lines)


def default_context() -> str:
    """``fork`` where the platform offers it (warm caches), else ``spawn``."""
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


def _health_default() -> bool:
    return os.environ.get(HEALTH_ENV, "1") not in ("0", "off", "no", "")


class WorkerPool:
    """Fixed-size process pool for independent litho/ILT work items.

    Parameters
    ----------
    workers:
        Number of worker processes (>= 1).
    litho_config:
        Config whose engine :func:`worker_engine` builds in each worker.
    precision:
        Engine precision for workers (``None`` = ``REPRO_PRECISION``).
    backend:
        Array backend name for worker engines (``None`` = each worker
        resolves ``REPRO_BACKEND``).  Validated in the parent so a
        typo fails fast instead of inside every worker.
    state:
        Arbitrary picklable broadcast state, shipped once per worker at
        startup and readable via :func:`worker_state` (e.g. generator
        weights for the flow/Table-2 workloads).
    context:
        ``multiprocessing`` start-method name; default prefers ``fork``.
    telemetry:
        ``True``/``False`` forces span+profiler shipping per task on or
        off; ``None`` (default) ships whenever the parent has an active
        tracer at :meth:`map` time.  Engine-counter deltas always ship.
    health:
        Heartbeat board + watchdog + /proc sampler.  ``None`` follows
        ``REPRO_POOL_HEALTH`` (default on).
    stall_after:
        Watchdog threshold: an *active* task whose heartbeat is older
        than this many seconds is flagged into :attr:`PoolStats.stalls`.
    heartbeat_interval:
        Worker beat (and parent scan) period in seconds.
    registry:
        Metrics registry for pool gauges and resource samples; a fresh
        one per pool by default (export via ``repro.obs.export``).
    """

    def __init__(self, workers: int,
                 litho_config: Optional[LithoConfig] = None,
                 precision: Optional[str] = None,
                 backend: Optional[str] = None,
                 state: Any = None,
                 context: Optional[str] = None,
                 telemetry: Optional[bool] = None,
                 health: Optional[bool] = None,
                 stall_after: float = 5.0,
                 heartbeat_interval: float = 0.25,
                 registry: Optional[MetricsRegistry] = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.litho_config = litho_config
        self.precision = resolve_precision(precision)
        self.backend = (None if backend is None
                        else resolve_backend(backend).name)
        self.state = state
        self.context = context or default_context()
        self.telemetry = telemetry
        self.health = _health_default() if health is None else bool(health)
        self.stall_after = float(stall_after)
        self.heartbeat_interval = float(heartbeat_interval)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.stats = PoolStats(workers=self.workers)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._board: Optional[HeartbeatBoard] = None
        self._watchdog: Optional[Watchdog] = None
        self._traced_pids: Set[int] = set()

    # ------------------------------------------------------------------
    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            heartbeat_spec = None
            if self.health:
                try:
                    self._board = HeartbeatBoard(
                        capacity=max(4 * self.workers, 8), create=True)
                except Exception:  # no shared memory: run unmonitored
                    self._board = None
                if self._board is not None:
                    heartbeat_spec = (self._board.name, self._board.capacity,
                                      self.heartbeat_interval)
                    sampler = (ResourceSampler(self.registry)
                               if obs_health.proc_available() else None)
                    self._watchdog = Watchdog(
                        self._board, stall_after=self.stall_after,
                        interval=self.heartbeat_interval,
                        on_stall=self.stats.record_stall,
                        sampler=sampler)
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context(self.context),
                initializer=_worker_init,
                initargs=(self.litho_config, self.precision, self.state,
                          heartbeat_spec, self.backend))
        return self._executor

    def _absorb(self, pid: int, seconds: float,
                telemetry: Optional[TaskTelemetry]) -> None:
        """Fold one task report into stats and the active tracer."""
        self.stats.record(pid, seconds, telemetry)
        tracer = trace.active()
        if tracer is None or telemetry is None or not telemetry.spans:
            return
        if pid not in self._traced_pids:
            self._traced_pids.add(pid)
            tracer.add_external_events([
                obs_aggregate.process_metadata_event(
                    pid, f"repro worker {pid}")])
        tracer.add_external_events(
            obs_aggregate.chrome_events(telemetry, tracer.epoch))

    def map(self, fn: Callable, items: Iterable[Tuple],
            label: str = "parallel.map",
            progress: Optional[ProgressFn] = None) -> List[Any]:
        """Run ``fn(*item)`` for every item; results in submission order.

        ``fn`` must be a module-level function.  A task exception
        cancels the remaining work and raises :class:`WorkerTaskError`
        with the worker traceback; a dead worker raises
        :class:`WorkerCrashError`.  ``progress`` (if given) is called
        as ``progress(done, total, pid, seconds)`` after every
        finished task, in completion order.
        """
        items = list(items)
        executor = self._ensure_executor()
        ship = (trace.is_enabled() if self.telemetry is None
                else bool(self.telemetry))
        total = len(items)
        self.registry.gauge("pool.tasks_total").set(
            self.registry.gauge("pool.tasks_total").value + total)
        done_gauge = self.registry.gauge("pool.tasks_done")
        started = time.perf_counter()
        futures: Dict[Any, int] = {}
        results: List[Any] = [None] * total
        if self._watchdog is not None:
            self._watchdog.start()
        with trace.span(label, tasks=total, workers=self.workers):
            try:
                for index, item in enumerate(items):
                    futures[executor.submit(
                        _run_task, fn, tuple(item), ship)] = index
                done = 0
                for future in as_completed(futures):
                    report = future.result()
                    if report[0] == "error":
                        _, message, remote_tb, pid, seconds, telemetry = (
                            report)
                        self._absorb(pid, seconds, telemetry)
                        raise WorkerTaskError(
                            f"worker task failed: {message}", remote_tb)
                    _, value, pid, seconds, telemetry = report
                    self._absorb(pid, seconds, telemetry)
                    results[futures[future]] = value
                    done += 1
                    done_gauge.set(done_gauge.value + 1)
                    self.registry.histogram(
                        "pool.task_seconds").observe(seconds)
                    if progress is not None:
                        progress(done, total, pid, seconds)
            except BrokenProcessPool as exc:
                raise WorkerCrashError(
                    "a worker process died before finishing its task "
                    "(pool is no longer usable)") from exc
            finally:
                for future in futures:
                    future.cancel()
                if self._watchdog is not None:
                    self._watchdog.stop()
                self.stats.wall_seconds += time.perf_counter() - started
                self.registry.gauge("pool.utilization").set(
                    self.stats.utilization())
        return results

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        if self._watchdog is not None:
            self._watchdog.stop()
            self._watchdog = None
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        if self._board is not None:
            try:
                self._board.close()
                self._board.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._board = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __del__(self):  # last-resort board cleanup
        try:
            self.shutdown()
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    def __repr__(self) -> str:
        return (f"WorkerPool(workers={self.workers}, "
                f"context={self.context!r}, precision={self.precision!r})")
