"""Parallel dataset construction: clip synthesis, rasterization, ILT.

Building the training library (Section 4: thousands of target/mask
pairs) is the dominant offline cost of the GAN-OPC flow: every pair
needs a layout synthesized, rasterized to the litho grid, and run
through a full ILT optimization for its reference mask.  Instances are
seeded independently (``SeedSequence(seed).spawn(size)``), so the work
is order-independent and fans cleanly across workers.

Determinism: each task receives the *same* spawned child seed the
serial dataset would use for that index, so targets and reference
masks are bit-exact equal to serial construction — parallelism changes
wall-clock, never data.

Images travel through shared memory (targets and masks written into a
``(2, len(indices), grid, grid)`` output segment); the only pickled
payloads are the small clip geometries coming back for the dataset's
layout cache.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..ilt.optimizer import ILTConfig, ILTOptimizer
from ..litho.config import LithoConfig
from .pool import attach_array, worker_engine
from .shm import ShmSpec


def _dataset_pair_task(slot: int, index: int, out_spec: ShmSpec,
                       child_seed, topology, litho_config: LithoConfig,
                       ilt_config: Optional[ILTConfig]):
    """Build one (target, reference-mask) pair; returns the layout."""
    from ..geometry.raster import rasterize
    from ..layoutgen.topology import LayoutSynthesizer

    rng = np.random.default_rng(child_seed)
    layout = LayoutSynthesizer(topology).generate(
        rng, name=f"train-{index:04d}")
    target = (rasterize(layout, litho_config.grid) >= 0.5).astype(float)
    optimizer = ILTOptimizer(litho_config, ilt_config,
                             engine=worker_engine(litho_config))
    result = optimizer.optimize(target)
    out = attach_array(out_spec)
    out[0, slot] = target
    out[1, slot] = result.mask
    return (slot, index, layout)


def _benchmark_clip_task(clip_id: int, litho_config: LithoConfig,
                         tolerance: float):
    """Synthesize one ICCAD-13 substitute clip (pure geometry)."""
    from ..bench.iccad13 import make_clip
    return make_clip(clip_id, litho_config, tolerance)
