"""``repro.parallel`` — multiprocess execution for independent work.

The litho/ILT workloads downstream of Algorithm 2 and the Fig. 6 flow
are dominated by per-clip computations that share nothing but the
kernel set: reference-mask generation for the training library, the
Table 2 / ICCAD-benchmark evaluation, and batch inference.  This
package fans them across a process pool (:class:`WorkerPool`), with

* one warm :class:`~repro.litho.engine.LithoEngine` per worker
  (kernels loaded once; inherited from the parent under ``fork``),
* shared-memory ndarray transport (:class:`SharedArray` /
  :class:`ShmSpec`) so image batches are never pickled,
* strict error discipline (:class:`WorkerTaskError` carries remote
  tracebacks; a dead worker raises :class:`WorkerCrashError`, never a
  hang), and
* per-worker utilization accounting (:class:`PoolStats`) surfaced by
  ``repro profile --workers N``.

Float64 parallel results are bit-exact versus their serial
counterparts; float32 precision mode is covered by the documented
tolerance in DESIGN.md §10.
"""

from .ilt import (ParallelILTResult, parallel_batched_ilt, parallel_ilt,
                  shard_bounds)
from .flow import generator_payload, parallel_flow
from .pool import (PoolStats, WorkerCrashError, WorkerPool, WorkerTaskError,
                   attach_array, default_context, worker_engine, worker_state)
from .shm import SharedArray, ShmSpec

__all__ = [
    "WorkerPool", "PoolStats", "WorkerTaskError", "WorkerCrashError",
    "SharedArray", "ShmSpec",
    "parallel_ilt", "parallel_batched_ilt", "ParallelILTResult",
    "parallel_flow", "generator_payload", "shard_bounds",
    "attach_array", "worker_engine", "worker_state", "default_context",
]
