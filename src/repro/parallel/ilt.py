"""Parallel ILT: fan independent clips across the worker pool.

Per-clip ILT runs (reference-mask generation, the Table 2 baseline
column, Fig. 6 refinement over a benchmark suite) are embarrassingly
parallel: each clip's descent touches nothing but its own target.
:func:`parallel_ilt` distributes them one clip per task, with targets
(and optional warm-start masks) shipped through one shared-memory
segment and the image-shaped outputs — best mask, relaxed mask, final
parameters — written into another.  Only scalars and histories cross
the pickle boundary, so the transported bytes are independent of grid
size.

Determinism: ILT is noise-free steepest descent, and each worker runs
the identical :class:`~repro.ilt.optimizer.ILTOptimizer` code on the
identical float64 inputs, so parallel results are **bit-exact** equal
to a serial per-clip loop (asserted in ``tests/parallel``).  In f32
precision mode the documented tolerance is a litho-error delta of at
most 1e-3 versus f64 (see DESIGN.md §10).

:func:`parallel_batched_ilt` is the sharded variant of
:class:`~repro.ilt.batched.BatchedILTOptimizer`: each worker runs the
lockstep batched descent on a contiguous shard.  Per-sample math is
independent, so masks and per-clip L2 are bit-exact versus the
single-process batched run; only the (reporting-only) mean relaxed
history is recombined as a shard-size-weighted mean.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..ilt.batched import BatchedILTOptimizer, BatchedILTResult
from ..ilt.optimizer import ILTConfig, ILTOptimizer, ILTResult
from ..litho.conditions import ConditionSet
from ..litho.config import LithoConfig
from .pool import PoolStats, WorkerPool, attach_array, worker_engine
from .shm import ShmSpec, SharedArray


@dataclass
class ParallelILTResult:
    """Outcome of a parallel per-clip ILT run."""

    results: List[ILTResult]
    runtime_seconds: float
    workers: int
    pool_stats: Optional[PoolStats] = None

    @property
    def masks(self) -> np.ndarray:
        return np.stack([r.mask for r in self.results])

    @property
    def l2(self) -> np.ndarray:
        return np.array([r.l2 for r in self.results])


# ----------------------------------------------------------------------
# Worker tasks (module-level: must be picklable)
# ----------------------------------------------------------------------
def _ilt_clip_task(index: int, targets_spec: ShmSpec,
                   initial_spec: Optional[ShmSpec], out_spec: ShmSpec,
                   litho_config: LithoConfig, ilt_config: ILTConfig,
                   max_iterations: Optional[int],
                   conditions: Optional[ConditionSet] = None):
    """Optimize one clip; images go to shared memory, scalars return."""
    targets = attach_array(targets_spec)
    initial = (attach_array(initial_spec)[index]
               if initial_spec is not None else None)
    optimizer = ILTOptimizer(litho_config, ilt_config,
                             engine=worker_engine(litho_config),
                             conditions=conditions)
    result = optimizer.optimize(targets[index], initial_mask=initial,
                                max_iterations=max_iterations)
    out = attach_array(out_spec)
    out[0, index] = result.mask
    out[1, index] = result.mask_relaxed
    out[2, index] = result.params
    return (index, result.l2, result.relaxed_history, result.l2_history,
            result.iterations, result.runtime_seconds, result.converged)


def _ilt_shard_task(start: int, stop: int, targets_spec: ShmSpec,
                    out_spec: ShmSpec, litho_config: LithoConfig,
                    ilt_config: ILTConfig, max_iterations: Optional[int],
                    conditions: Optional[ConditionSet] = None):
    """Run the lockstep batched descent on ``targets[start:stop]``."""
    targets = attach_array(targets_spec)
    optimizer = BatchedILTOptimizer(litho_config, ilt_config,
                                    engine=worker_engine(litho_config),
                                    conditions=conditions)
    result = optimizer.optimize(targets[start:stop],
                                max_iterations=max_iterations)
    out = attach_array(out_spec)
    out[0, start:stop] = result.masks
    return (start, stop, result.l2.tolist(), result.relaxed_history,
            result.iterations, result.runtime_seconds)


# ----------------------------------------------------------------------
# Parent-side drivers
# ----------------------------------------------------------------------
def parallel_ilt(targets: np.ndarray,
                 litho_config: Optional[LithoConfig] = None,
                 ilt_config: Optional[ILTConfig] = None,
                 workers: int = 1,
                 precision: Optional[str] = None,
                 initial_masks: Optional[np.ndarray] = None,
                 max_iterations: Optional[int] = None,
                 pool: Optional[WorkerPool] = None,
                 conditions: Optional[ConditionSet] = None,
                 progress=None) -> ParallelILTResult:
    """Per-clip ILT over a target stack, fanned across worker processes.

    Parameters
    ----------
    targets:
        Binary target stack ``(N, grid, grid)``.
    workers:
        Worker processes; ``1`` runs serially in-process (the parity
        reference — identical code path, no pool).
    precision:
        Worker engine precision (``None`` = environment default).
    initial_masks:
        Optional per-clip warm starts ``(N, grid, grid)``.
    pool:
        Reuse an existing pool (its config/precision win); otherwise a
        pool is created and torn down inside this call.
    progress:
        Optional ``(done, total, pid, seconds)`` callback forwarded to
        :meth:`WorkerPool.map` — what ``repro monitor`` renders live.
    """
    litho_config = litho_config or LithoConfig.paper()
    ilt_config = ilt_config or ILTConfig()
    targets = np.asarray(targets, dtype=float)
    if targets.ndim != 3:
        raise ValueError(f"targets must be (N, g, g), got {targets.shape}")
    n = targets.shape[0]
    started = time.perf_counter()

    if workers <= 1 and pool is None:
        from ..litho.engine import LithoEngine
        from ..litho.kernels import build_kernels
        engine = LithoEngine.for_kernels(build_kernels(litho_config),
                                         precision=precision)
        optimizer = ILTOptimizer(litho_config, ilt_config, engine=engine,
                                 conditions=conditions)
        results = [optimizer.optimize(
                       targets[i],
                       initial_mask=(initial_masks[i]
                                     if initial_masks is not None else None),
                       max_iterations=max_iterations)
                   for i in range(n)]
        return ParallelILTResult(results=results,
                                 runtime_seconds=time.perf_counter() - started,
                                 workers=1)

    grid = targets.shape[-1]
    own_pool = pool is None
    if own_pool:
        pool = WorkerPool(workers, litho_config=litho_config,
                          precision=precision)
    shared_targets = SharedArray.from_array(targets)
    shared_initial = (SharedArray.from_array(np.asarray(initial_masks,
                                                        dtype=float))
                      if initial_masks is not None else None)
    shared_out = SharedArray.create((3, n, grid, grid), np.float64)
    try:
        reports = pool.map(
            _ilt_clip_task,
            [(i, shared_targets.spec,
              shared_initial.spec if shared_initial is not None else None,
              shared_out.spec, litho_config, ilt_config, max_iterations,
              conditions)
             for i in range(n)],
            label="parallel.ilt", progress=progress)
        out = np.array(shared_out.array, copy=True)
    finally:
        shared_targets.close()
        shared_targets.unlink()
        if shared_initial is not None:
            shared_initial.close()
            shared_initial.unlink()
        shared_out.close()
        shared_out.unlink()
        if own_pool:
            pool.shutdown()

    results: List[Optional[ILTResult]] = [None] * n
    for (index, l2, relaxed_history, l2_history, iterations,
         runtime_seconds, converged) in reports:
        results[index] = ILTResult(
            mask=out[0, index], mask_relaxed=out[1, index],
            params=out[2, index], l2=l2,
            relaxed_history=relaxed_history, l2_history=l2_history,
            iterations=iterations, runtime_seconds=runtime_seconds,
            converged=converged)
    return ParallelILTResult(results=results,
                             runtime_seconds=time.perf_counter() - started,
                             workers=pool.workers, pool_stats=pool.stats)


def shard_bounds(n: int, shards: int) -> List[tuple]:
    """Contiguous near-equal ``(start, stop)`` shards covering ``range(n)``."""
    shards = max(1, min(shards, n))
    base, extra = divmod(n, shards)
    bounds = []
    start = 0
    for s in range(shards):
        stop = start + base + (1 if s < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def parallel_batched_ilt(targets: np.ndarray,
                         litho_config: Optional[LithoConfig] = None,
                         ilt_config: Optional[ILTConfig] = None,
                         workers: int = 1,
                         precision: Optional[str] = None,
                         max_iterations: Optional[int] = None,
                         pool: Optional[WorkerPool] = None,
                         conditions: Optional[ConditionSet] = None
                         ) -> BatchedILTResult:
    """Sharded :class:`BatchedILTOptimizer` run (same result contract).

    Masks and per-clip L2 are bit-exact versus the single-process
    batched optimizer; the mean relaxed history is recombined as a
    shard-size-weighted average.
    """
    litho_config = litho_config or LithoConfig.paper()
    ilt_config = ilt_config or ILTConfig()
    targets = np.asarray(targets, dtype=float)
    n = targets.shape[0]

    if workers <= 1 and pool is None:
        from ..litho.engine import LithoEngine
        from ..litho.kernels import build_kernels
        engine = LithoEngine.for_kernels(build_kernels(litho_config),
                                         precision=precision)
        return BatchedILTOptimizer(
            litho_config, ilt_config, engine=engine,
            conditions=conditions).optimize(targets,
                                            max_iterations=max_iterations)

    started = time.perf_counter()
    grid = targets.shape[-1]
    own_pool = pool is None
    if own_pool:
        pool = WorkerPool(workers, litho_config=litho_config,
                          precision=precision)
    shared_targets = SharedArray.from_array(targets)
    shared_out = SharedArray.create((1, n, grid, grid), np.float64)
    try:
        reports = pool.map(
            _ilt_shard_task,
            [(start, stop, shared_targets.spec, shared_out.spec,
              litho_config, ilt_config, max_iterations, conditions)
             for start, stop in shard_bounds(n, pool.workers)],
            label="parallel.batched_ilt")
        masks = np.array(shared_out.array[0], copy=True)
    finally:
        shared_targets.close()
        shared_targets.unlink()
        shared_out.close()
        shared_out.unlink()
        if own_pool:
            pool.shutdown()

    l2 = np.empty(n)
    iterations = 0
    history_parts = []
    for start, stop, shard_l2, shard_history, shard_iters, _ in reports:
        l2[start:stop] = shard_l2
        iterations = max(iterations, shard_iters)
        history_parts.append((stop - start, shard_history))
    # Weighted recombination of the per-shard mean histories.
    steps = max(len(h) for _, h in history_parts)
    history = []
    for step in range(steps):
        num = sum(w * h[step] for w, h in history_parts if step < len(h))
        den = sum(w for w, h in history_parts if step < len(h))
        history.append(num / den)
    return BatchedILTResult(masks=masks, l2=l2, relaxed_history=history,
                            iterations=iterations,
                            runtime_seconds=time.perf_counter() - started)
