"""Parallel GAN-OPC flow and Table 2 evaluation.

The generate-then-refine flow (Fig. 6) is per-clip independent, so a
batch of targets fans one clip per task.  Generator weights are
broadcast once per worker through the pool's ``state`` channel (the
executor initializer), never per task; targets and all image-shaped
outputs travel through shared memory.  Each worker rebuilds the
generator from the broadcast ``state_dict`` and runs the identical
:class:`~repro.core.flow.GanOpcFlow` code on its warm engine, so
float64 parallel flow results are bit-exact versus a serial loop.

:func:`_table2_clip_task` is the same idea for the full Table 2
experiment: one task evaluates all three methods (ILT from scratch,
GAN-OPC, PGAN-OPC) on one benchmark clip.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from ..core.flow import FlowResult, GanOpcFlow
from ..core.generator import MaskGenerator
from ..ilt.optimizer import ILTConfig, ILTOptimizer, ILTResult
from ..litho.conditions import ConditionSet
from ..litho.config import LithoConfig
from ..litho.engine import LithoEngine
from .pool import WorkerPool, attach_array, worker_engine, worker_state
from .shm import ShmSpec, SharedArray


def generator_payload(generator: MaskGenerator) -> Dict:
    """Broadcastable reconstruction recipe for a generator."""
    return {"channels": generator.channels,
            "residual_scale": generator.residual_scale,
            "weights": generator.state_dict()}


def _rebuild_generator(payload: Dict) -> MaskGenerator:
    generator = MaskGenerator(payload["channels"],
                              residual_scale=payload["residual_scale"],
                              rng=np.random.default_rng(0))
    generator.load_state_dict(payload["weights"])
    generator.eval()
    return generator


# ----------------------------------------------------------------------
# Worker tasks
# ----------------------------------------------------------------------
def _flow_task(index: int, targets_spec: ShmSpec, out_spec: ShmSpec,
               litho_config: LithoConfig, refine_config: ILTConfig,
               refine_iterations: Optional[int],
               conditions: Optional[ConditionSet] = None):
    """Run the full flow on one target of the shared stack."""
    generator = _rebuild_generator(worker_state())
    flow = GanOpcFlow(generator, litho_config, refine_config,
                      engine=worker_engine(litho_config),
                      conditions=conditions)
    targets = attach_array(targets_spec)
    result = flow.optimize(targets[index],
                           refine_iterations=refine_iterations)
    out = attach_array(out_spec)
    out[0, index] = result.mask
    out[1, index] = result.generated_mask
    out[2, index] = result.ilt_result.mask_relaxed
    out[3, index] = result.ilt_result.params
    ilt = result.ilt_result
    return (index, result.l2, result.generation_seconds,
            result.refinement_seconds, ilt.relaxed_history, ilt.l2_history,
            ilt.iterations, ilt.runtime_seconds, ilt.converged)


def _table2_clip_task(slot: int, masks_spec: ShmSpec, grid: int,
                      litho_config: LithoConfig, ilt_iterations: int,
                      refine_iterations: int,
                      conditions: Optional[ConditionSet] = None,
                      pw_objective: str = "nominal"):
    """Evaluate ILT / GAN-OPC / PGAN-OPC on one benchmark clip."""
    from ..geometry.raster import rasterize
    from ..litho.simulator import LithoSimulator
    from ..metrics.report import evaluate_mask

    state = worker_state()
    clip = state["clips"][slot]
    engine = worker_engine(litho_config)
    simulator = LithoSimulator(litho_config, engine=engine)
    condition_engine = (LithoEngine.for_conditions(engine.kernels, conditions,
                                                   engine.precision)
                        if conditions is not None else None)
    # With a nominal objective the corner stack is reporting-only (the
    # optimizers keep the paper's nominal descent), matching the serial
    # run_table2 path bit for bit.
    descend_conditions = conditions if pw_objective != "nominal" else None
    target = (rasterize(clip.layout, grid) >= 0.5).astype(float)
    masks_out = attach_array(masks_spec)

    evaluations: Dict[str, object] = {}
    stages: Dict[str, Dict[str, float]] = {}

    ilt = ILTOptimizer(litho_config,
                       ILTConfig(max_iterations=ilt_iterations,
                                 pw_objective=pw_objective),
                       engine=engine, conditions=descend_conditions)
    started = time.perf_counter()
    ilt_result = ilt.optimize(target)
    ilt_runtime = time.perf_counter() - started
    evaluations["ILT"] = evaluate_mask(
        simulator, ilt_result.mask, target, layout=clip.layout,
        name=clip.name, runtime_seconds=ilt_runtime,
        condition_engine=condition_engine)
    stages["ILT"] = {"generation": 0.0, "refinement": ilt_runtime}
    masks_out[0, slot] = ilt_result.mask

    refine_cfg = ILTConfig(max_iterations=refine_iterations, patience=4,
                           pw_objective=pw_objective)
    for method_index, method in enumerate(("GAN-OPC", "PGAN-OPC"), start=1):
        generator = _rebuild_generator(state[method])
        flow = GanOpcFlow(generator, litho_config, refine_cfg, engine=engine,
                          conditions=descend_conditions)
        flow_result = flow.optimize(target)
        evaluations[method] = evaluate_mask(
            simulator, flow_result.mask, target, layout=clip.layout,
            name=clip.name, runtime_seconds=flow_result.runtime_seconds,
            condition_engine=condition_engine)
        stages[method] = {"generation": flow_result.generation_seconds,
                          "refinement": flow_result.refinement_seconds}
        masks_out[method_index, slot] = flow_result.mask

    return (slot, evaluations, stages)


# ----------------------------------------------------------------------
# Parent-side driver
# ----------------------------------------------------------------------
def parallel_flow(generator: MaskGenerator, targets: np.ndarray,
                  litho_config: LithoConfig, refine_config: ILTConfig,
                  refine_iterations: Optional[int] = None,
                  workers: int = 2,
                  precision: Optional[str] = None,
                  pool: Optional[WorkerPool] = None,
                  conditions: Optional[ConditionSet] = None,
                  progress=None) -> List[FlowResult]:
    """Fan :meth:`GanOpcFlow.optimize` over a target stack.

    ``progress`` (``(done, total, pid, seconds)``) is forwarded to
    :meth:`WorkerPool.map`; pass an external ``pool`` to read fleet
    telemetry (``pool.stats.fleet``) after the run.
    """
    targets = np.asarray(targets, dtype=float)
    if targets.ndim != 3:
        raise ValueError(f"targets must be (N, g, g), got {targets.shape}")
    n, grid = targets.shape[0], targets.shape[-1]

    own_pool = pool is None
    if own_pool:
        pool = WorkerPool(workers, litho_config=litho_config,
                          precision=precision,
                          state=generator_payload(generator))
    shared_targets = SharedArray.from_array(targets)
    shared_out = SharedArray.create((4, n, grid, grid), np.float64)
    try:
        reports = pool.map(
            _flow_task,
            [(i, shared_targets.spec, shared_out.spec, litho_config,
              refine_config, refine_iterations, conditions)
             for i in range(n)],
            label="parallel.flow", progress=progress)
        out = np.array(shared_out.array, copy=True)
    finally:
        shared_targets.close()
        shared_targets.unlink()
        shared_out.close()
        shared_out.unlink()
        if own_pool:
            pool.shutdown()

    results: List[Optional[FlowResult]] = [None] * n
    for (index, l2, generation_seconds, refinement_seconds,
         relaxed_history, l2_history, iterations, ilt_runtime,
         converged) in reports:
        ilt_result = ILTResult(
            mask=out[0, index], mask_relaxed=out[2, index],
            params=out[3, index], l2=l2,
            relaxed_history=relaxed_history, l2_history=l2_history,
            iterations=iterations, runtime_seconds=ilt_runtime,
            converged=converged)
        results[index] = FlowResult(
            mask=out[0, index], generated_mask=out[1, index], l2=l2,
            generation_seconds=generation_seconds,
            refinement_seconds=refinement_seconds, ilt_result=ilt_result)
    return results
