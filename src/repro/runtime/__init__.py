"""``repro.runtime`` — training robustness and observability substrate.

Checkpoint/resume (:mod:`~repro.runtime.checkpoint`), divergence guard
rails (:mod:`~repro.runtime.guards`), structured JSONL telemetry
(:mod:`~repro.runtime.telemetry`) and the :class:`TrainingHarness` that
wires all three into the Algorithm 1 / Algorithm 2 training loops and
the inference flow.
"""

from .checkpoint import (CheckpointError, Checkpointer, TrainingState,
                         capture_state, restore_state)
from .guards import POLICIES, DivergenceError, nonfinite_entries
from .harness import RunConfig, TrainingHarness
from .telemetry import (RunLogger, TelemetrySchemaError, sanitize,
                        telemetry_schema, validate_record)

__all__ = [
    "CheckpointError", "Checkpointer", "TrainingState",
    "capture_state", "restore_state",
    "POLICIES", "DivergenceError", "nonfinite_entries",
    "RunConfig", "TrainingHarness",
    "RunLogger", "TelemetrySchemaError", "sanitize",
    "telemetry_schema", "validate_record",
]
