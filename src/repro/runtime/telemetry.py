"""Structured JSONL run telemetry.

:class:`RunLogger` appends one strict-JSON object per line to a
telemetry file: per-iteration losses and gradient norms, wall-clock per
phase, lithography-engine call counts, checkpoint/divergence/resume
events.  The record layout is pinned by the checked-in schema
``telemetry_schema.json`` and *every* record is validated against it
before it is written — the schema is a contract for downstream
consumers (dashboards, regression tests), not documentation.

Non-finite floats are encoded as the strings ``"nan"`` / ``"inf"`` /
``"-inf"`` so emitted lines always parse under strict JSON (a NaN
iteration is precisely when telemetry matters most).
"""

from __future__ import annotations

import json
import math
import os
import time
from typing import Dict, Optional

import numpy as np

SCHEMA_VERSION = 1
SCHEMA_PATH = os.path.join(os.path.dirname(__file__),
                           "telemetry_schema.json")

_schema_cache: Optional[dict] = None


class TelemetrySchemaError(ValueError):
    """A telemetry record does not conform to the checked-in schema."""


def telemetry_schema() -> dict:
    """The parsed contents of ``telemetry_schema.json`` (cached)."""
    global _schema_cache
    if _schema_cache is None:
        with open(SCHEMA_PATH, "r", encoding="utf-8") as fh:
            _schema_cache = json.load(fh)
    return _schema_cache


# ----------------------------------------------------------------------
# value sanitization
# ----------------------------------------------------------------------
def sanitize(value):
    """Convert a value into strict-JSON-safe primitives.

    numpy scalars become Python scalars; non-finite floats become the
    strings ``"nan"`` / ``"inf"`` / ``"-inf"``; dicts are sanitized
    recursively.
    """
    if isinstance(value, dict):
        return {str(key): sanitize(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize(entry) for entry in value]
    if isinstance(value, (bool, str)) or value is None:
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        value = float(value)
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return value
    raise TypeError(f"cannot serialize {type(value).__name__} into telemetry")


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
_NONFINITE_STRINGS = ("nan", "inf", "-inf")


def _check_type(name: str, value, type_name: str) -> None:
    if type_name == "integer":
        ok = isinstance(value, int) and not isinstance(value, bool)
    elif type_name == "number":
        ok = (isinstance(value, (int, float))
              and not isinstance(value, bool)
              and math.isfinite(value))
    elif type_name == "string":
        ok = isinstance(value, str)
    elif type_name == "maybe_number":
        ok = (value is None
              or (isinstance(value, str) and value in _NONFINITE_STRINGS)
              or (isinstance(value, (int, float))
                  and not isinstance(value, bool)
                  and math.isfinite(value)))
    elif type_name == "loss_map":
        ok = isinstance(value, dict)
        if ok:
            for key, entry in value.items():
                _check_type(f"{name}[{key!r}]", entry, "maybe_number")
    elif type_name == "stats_map":
        ok = isinstance(value, dict)
        if ok:
            for key, entry in value.items():
                _check_type(f"{name}[{key!r}]", entry, "number")
    elif type_name == "span_map":
        ok = isinstance(value, dict)
        if ok:
            for key, entry in value.items():
                if not isinstance(entry, dict) or set(entry) != {"count",
                                                                 "seconds"}:
                    raise TelemetrySchemaError(
                        f"field {name}[{key!r}] must be an object with "
                        f"exactly 'count' and 'seconds', got {entry!r}")
                _check_type(f"{name}[{key!r}]['count']", entry["count"],
                            "integer")
                _check_type(f"{name}[{key!r}]['seconds']", entry["seconds"],
                            "number")
    elif type_name == "string_list":
        ok = isinstance(value, list)
        if ok:
            for i, entry in enumerate(value):
                _check_type(f"{name}[{i}]", entry, "string")
    elif type_name == "string_map":
        ok = isinstance(value, dict)
        if ok:
            for key, entry in value.items():
                _check_type(f"{name}[{key!r}]", entry, "string")
    elif type_name == "hotspot_list":
        ok = isinstance(value, list)
        if ok:
            for i, entry in enumerate(value):
                if not isinstance(entry, dict) or set(entry) != {"x", "y",
                                                                 "epe"}:
                    raise TelemetrySchemaError(
                        f"field {name}[{i}] must be an object with exactly "
                        f"'x', 'y' and 'epe', got {entry!r}")
                _check_type(f"{name}[{i}]['x']", entry["x"], "number")
                _check_type(f"{name}[{i}]['y']", entry["y"], "number")
                _check_type(f"{name}[{i}]['epe']", entry["epe"],
                            "maybe_number")
    else:
        raise TelemetrySchemaError(
            f"schema references unknown type {type_name!r}")
    if not ok:
        raise TelemetrySchemaError(
            f"field {name!r} = {value!r} is not a valid {type_name}")


def validate_record(record: dict) -> None:
    """Raise :class:`TelemetrySchemaError` unless ``record`` conforms."""
    if not isinstance(record, dict):
        raise TelemetrySchemaError(
            f"telemetry record must be an object, got "
            f"{type(record).__name__}")
    schema = telemetry_schema()
    common = schema["common"]["required"]
    for key, type_name in common.items():
        if key not in record:
            raise TelemetrySchemaError(f"missing required field {key!r}")
        _check_type(key, record[key], type_name)
    if record["schema"] != schema["version"]:
        raise TelemetrySchemaError(
            f"record schema version {record['schema']!r} != "
            f"{schema['version']}")
    event = record["event"]
    if event not in schema["events"]:
        raise TelemetrySchemaError(f"unknown event type {event!r}")
    spec = schema["events"][event]
    for key, type_name in spec["required"].items():
        if key not in record:
            raise TelemetrySchemaError(
                f"event {event!r} missing required field {key!r}")
        _check_type(key, record[key], type_name)
    allowed = set(common) | set(spec["required"]) | set(spec["optional"])
    for key in record:
        if key not in allowed:
            raise TelemetrySchemaError(
                f"event {event!r} does not allow field {key!r}")
        if key in spec["optional"] and record[key] is not None:
            _check_type(key, record[key], spec["optional"][key])


# ----------------------------------------------------------------------
class RunLogger:
    """Append-only JSONL telemetry writer for one run phase.

    Parameters
    ----------
    path:
        Telemetry file; parent directories are created on demand.
    phase:
        Stamped on every record (``"pretrain"``, ``"gan"``, ``"flow"``).
    append:
        Open in append mode (used when resuming a run) instead of
        truncating.
    """

    def __init__(self, path: str, phase: str, append: bool = False):
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self.path = path
        self.phase = phase
        self._fh = open(path, "a" if append else "w", encoding="utf-8")

    def event(self, event: str, **fields) -> None:
        """Validate and write one telemetry record."""
        record = {"schema": SCHEMA_VERSION, "event": event,
                  "phase": self.phase, "ts": time.time()}
        for key, value in fields.items():
            if value is None:
                continue
            record[key] = sanitize(value)
        validate_record(record)
        self._fh.write(json.dumps(record, sort_keys=True,
                                  allow_nan=False) + "\n")
        self._fh.flush()

    def span_summary(self, spans: Dict[str, Dict[str, float]],
                     wall_seconds: Optional[float] = None,
                     coverage: Optional[float] = None,
                     trace_file: Optional[str] = None) -> None:
        """Record an aggregated tracer summary (``{name: {count, seconds}}``).

        ``spans`` is exactly the shape :meth:`repro.obs.Tracer.summary`
        returns; ``coverage`` is the fraction of wall time accounted
        for by top-level spans and ``trace_file`` points at the Chrome
        trace JSON sharing the run directory.
        """
        spans = {name: {"count": int(entry["count"]),
                        "seconds": float(entry["seconds"])}
                 for name, entry in spans.items()}
        self.event("span_summary", spans=spans, wall_seconds=wall_seconds,
                   coverage=coverage, trace_file=trace_file)

    def worker_span_summary(self, pid: int,
                            spans: Dict[str, Dict[str, float]],
                            tasks: Optional[int] = None,
                            busy_seconds: Optional[float] = None,
                            dropped_spans: Optional[int] = None,
                            litho: Optional[Dict[str, float]] = None) -> None:
        """Record one worker process's aggregated span summary.

        The pool parent emits one of these per worker pid after a
        parallel/tiled run, from the shipped
        :class:`~repro.obs.aggregate.TaskTelemetry` merges; ``litho``
        carries the worker's summed engine-counter deltas.
        """
        spans = {name: {"count": int(entry["count"]),
                        "seconds": float(entry["seconds"])}
                 for name, entry in spans.items()}
        self.event("worker_span_summary", pid=int(pid), spans=spans,
                   tasks=tasks, busy_seconds=busy_seconds,
                   dropped_spans=dropped_spans, litho=litho)

    def resource_sample(self, pid: int, rss_bytes: float,
                        cpu_seconds: float,
                        num_threads: Optional[int] = None,
                        cpu_utilization: Optional[float] = None) -> None:
        """Record one /proc resource reading for a worker process."""
        self.event("resource_sample", pid=int(pid),
                   rss_bytes=float(rss_bytes),
                   cpu_seconds=float(cpu_seconds),
                   num_threads=num_threads,
                   cpu_utilization=cpu_utilization)

    def quality_sample(self, iteration: int, objective: float,
                       l2: Optional[float] = None,
                       clip: Optional[str] = None,
                       method: Optional[str] = None,
                       stage: Optional[str] = None,
                       seconds: Optional[float] = None) -> None:
        """Record one point of a convergence curve.

        ``objective`` is the quantity the loop descends (relaxed litho
        error for ILT, the phase's main loss for training); ``l2`` is
        the discrete metric at evaluation points.
        """
        self.event("quality_sample", iteration=int(iteration),
                   objective=objective, l2=l2, clip=clip, method=method,
                   stage=stage, seconds=seconds)

    def clip_result(self, clip: str, method: str,
                    metrics: Dict[str, float],
                    runtime_seconds: Optional[float] = None,
                    stage_seconds: Optional[Dict[str, float]] = None,
                    epe_hotspots: Optional[list] = None) -> None:
        """Record one clip's final quality metrics for one method.

        ``metrics`` is the :meth:`MaskEvaluation.as_dict` numeric subset
        (L2/PVB/EPE plus window metrics when a corner stack ran);
        ``epe_hotspots`` carries the violating control points
        (``{x, y, epe}`` in nm) that feed the report's hotspot overlay.
        """
        self.event("clip_result", clip=clip, method=method,
                   metrics=metrics, runtime_seconds=runtime_seconds,
                   stage_seconds=stage_seconds or None,
                   epe_hotspots=epe_hotspots or None)

    def anomaly(self, kind: str, **fields) -> None:
        """Record one anomaly (divergence, stall, straggler, ...).

        Divergence-guard interventions and watchdog findings are
        recorded through this one event type so a run's health problems
        are queryable from its telemetry instead of scraped from logs.
        """
        self.event("anomaly", kind=kind, **fields)

    def iteration(self, iteration: int, losses: Dict[str, float],
                  seconds: float,
                  grad_norms: Optional[Dict[str, float]] = None,
                  action: Optional[str] = None,
                  litho: Optional[Dict[str, float]] = None) -> None:
        self.event("iteration", iteration=iteration, losses=losses,
                   seconds=seconds, grad_norms=grad_norms or None,
                   action=action, litho=litho)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "RunLogger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
