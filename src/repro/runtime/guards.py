"""Divergence guard rails for the training loops.

Long CPU training runs of Algorithms 1 and 2 occasionally produce a
non-finite loss (saturated discriminator log, exploding litho
gradient).  The substrate offers three configurable reactions, chosen
by ``RunConfig.policy``:

* ``"raise"``    — abort immediately with :class:`DivergenceError`
  (the default: fail loudly rather than train on garbage);
* ``"rollback"`` — restore the last checkpoint snapshot (weights and
  optimizer moments), multiply every learning rate by ``lr_backoff``
  and continue with the next mini-batch;
* ``"skip"``     — leave the weights untouched, skip this update and
  continue.

Every recovery is counted; exceeding ``max_recoveries`` escalates to
:class:`DivergenceError` regardless of policy, so a run that keeps
diverging cannot loop forever.
"""

from __future__ import annotations

import math
from typing import Dict

POLICIES = ("raise", "rollback", "skip")


class DivergenceError(RuntimeError):
    """Training produced a non-finite loss/gradient and cannot continue."""

    def __init__(self, phase: str, iteration, values: Dict[str, float],
                 recoveries: int = 0):
        self.phase = phase
        self.iteration = iteration
        self.values = dict(values)
        self.recoveries = recoveries
        rendered = ", ".join(f"{k}={v!r}" for k, v in self.values.items())
        suffix = (f" after {recoveries} recovery attempts"
                  if recoveries else "")
        super().__init__(
            f"non-finite training signal in phase {phase!r} at iteration "
            f"{iteration}: {rendered}{suffix}")


def nonfinite_entries(values: Dict[str, float]) -> Dict[str, float]:
    """The subset of ``values`` that is NaN or infinite."""
    return {key: float(value) for key, value in values.items()
            if not math.isfinite(value)}
