"""Shared robustness harness for the training loops.

:class:`TrainingHarness` wraps one training run (Algorithm 1 or
Algorithm 2) with the three substrate services in one place:

* **checkpoint/resume** — periodic atomic checkpoints of module
  weights, optimizer moments, RNG state, iteration counter and loss
  history; ``RunConfig.resume`` continues bit-exactly from the latest
  checkpoint in ``checkpoint_dir``;
* **guard rails** — non-finite loss / gradient detection with the
  configurable divergence policy of :mod:`repro.runtime.guards`,
  plus optional global gradient-norm clipping;
* **telemetry** — structured JSONL records via
  :class:`~repro.runtime.telemetry.RunLogger`, including per-iteration
  wall-clock and :class:`~repro.litho.engine.LithoEngine` call deltas.

The trainers call four hooks: ``begin`` (once), ``begin_iteration`` /
``end_iteration`` (per loop body) and ``finish`` (once); weight updates
go through :meth:`apply_update`, which is where guarding and clipping
happen.  A trainer used without a harness behaves exactly as before —
the substrate is strictly additive.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.obs import trace

from ..nn.modules import Module
from ..nn.optim import Optimizer, clip_grad_norm_
from .checkpoint import Checkpointer, capture_state, restore_state
from .guards import POLICIES, DivergenceError, nonfinite_entries
from .telemetry import RunLogger


@dataclass
class RunConfig:
    """Configuration of the robustness substrate for one training run.

    Attributes
    ----------
    checkpoint_dir:
        Directory for ``ckpt-*.npz`` files; ``None`` disables disk
        checkpoints (rollback then restores the in-memory snapshot
        taken at run start).
    checkpoint_every:
        Save every N iterations (0 = only the final checkpoint written
        by ``finish``).
    keep_last:
        Checkpoints retained on disk.
    resume:
        Continue from the latest checkpoint in ``checkpoint_dir``
        (weights, optimizer moments, RNG state and history are all
        restored, so the continuation is bit-identical to an
        uninterrupted run).
    telemetry_dir:
        Directory for ``<phase>.jsonl`` telemetry; ``None`` disables.
    policy:
        Divergence policy: ``"raise"``, ``"rollback"`` or ``"skip"``.
    max_grad_norm:
        Clip the global gradient norm of each update to this value
        (``None`` disables clipping; the norm is still measured and
        logged).
    lr_backoff:
        Learning-rate multiplier applied to every optimizer on
        rollback.
    max_recoveries:
        Divergence recoveries allowed before escalating to
        :class:`DivergenceError` regardless of policy.
    """

    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 0
    keep_last: int = 3
    resume: bool = False
    telemetry_dir: Optional[str] = None
    policy: str = "raise"
    max_grad_norm: Optional[float] = None
    lr_backoff: float = 0.5
    max_recoveries: int = 8

    def __post_init__(self):
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown divergence policy {self.policy!r}; "
                f"expected one of {POLICIES}")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        if not 0.0 < self.lr_backoff <= 1.0:
            raise ValueError("lr_backoff must be in (0, 1]")
        if self.max_recoveries < 0:
            raise ValueError("max_recoveries must be >= 0")
        if self.max_grad_norm is not None and self.max_grad_norm <= 0:
            raise ValueError("max_grad_norm must be positive")
        if self.resume and self.checkpoint_dir is None:
            raise ValueError("resume=True requires a checkpoint_dir")


class TrainingHarness:
    """Checkpoint/guard/telemetry services around one training loop."""

    def __init__(self, phase: str, modules: Dict[str, Module],
                 optimizers: Dict[str, Optimizer],
                 config: Optional[RunConfig] = None,
                 engine=None):
        self.phase = phase
        self.modules = dict(modules)
        self.optimizers = dict(optimizers)
        self.config = config or RunConfig()
        self.engine = engine

        self.checkpointer = (
            Checkpointer(self.config.checkpoint_dir, self.config.keep_last)
            if self.config.checkpoint_dir else None)
        self.logger = (
            RunLogger(os.path.join(self.config.telemetry_dir,
                                   f"{phase}.jsonl"),
                      phase, append=self.config.resume)
            if self.config.telemetry_dir else None)

        self.recoveries = 0
        self.last_action = "ok"
        self._grad_norms: Dict[str, float] = {}
        self._snapshot = None
        self._iteration: Optional[int] = None
        self._last_saved_iteration: Optional[int] = None
        self._litho_prev = (engine.stats.snapshot()
                            if engine is not None else None)
        self._run_started = time.perf_counter()
        self._iter_started = self._run_started

    # ------------------------------------------------------------------
    # lifecycle hooks
    # ------------------------------------------------------------------
    def begin(self, rng: Optional[np.random.Generator],
              history: Dict[str, List[float]],
              total_iterations: int) -> int:
        """Resume if configured; returns the first iteration to run."""
        start_iteration = 0
        if self.config.resume and self.checkpointer is not None:
            path = self.checkpointer.latest_path()
            if path is not None:
                state = self.checkpointer.load(path)
                restore_state(state, self.modules, self.optimizers, rng)
                for name, series in history.items():
                    series.clear()
                    series.extend(state.history.get(name, []))
                start_iteration = state.iteration
                self._last_saved_iteration = state.iteration
                if self.logger:
                    self.logger.event("resume", iteration=start_iteration,
                                      checkpoint=path)
        self._snapshot = capture_state(start_iteration, self.modules,
                                       self.optimizers, phase=self.phase)
        self._run_started = time.perf_counter()
        self._iter_started = self._run_started
        if self.logger:
            self.logger.event("run_start", iteration=start_iteration,
                              total_iterations=int(total_iterations),
                              policy=self.config.policy)
        return start_iteration

    def begin_iteration(self, iteration: int) -> None:
        self._iteration = iteration
        self._grad_norms = {}
        self.last_action = "ok"
        self._iter_started = time.perf_counter()

    #: loss keys that define a phase's quality objective, in preference
    #: order: the litho error for Algorithm 2 pre-training, the L2 to
    #: the reference mask for Algorithm 1 GAN training.
    QUALITY_KEYS = ("litho_error", "l2_to_reference")

    def end_iteration(self, iteration: int,
                      rng: Optional[np.random.Generator],
                      history: Dict[str, List[float]],
                      losses: Dict[str, float]) -> None:
        """Record telemetry and checkpoint at the configured cadence."""
        seconds = time.perf_counter() - self._iter_started
        if self.logger:
            self.logger.iteration(
                iteration=iteration, losses=losses, seconds=seconds,
                grad_norms=self._grad_norms or None,
                action=self.last_action, litho=self._litho_delta())
            objective = next(
                (losses[key] for key in self.QUALITY_KEYS if key in losses),
                next(iter(losses.values())) if losses else float("nan"))
            self.logger.quality_sample(iteration, objective,
                                       stage=self.phase, seconds=seconds)
        every = self.config.checkpoint_every
        if self.checkpointer and every and (iteration + 1) % every == 0:
            self._save(iteration + 1, rng, history)

    def finish(self, iteration: int,
               rng: Optional[np.random.Generator],
               history: Dict[str, List[float]]) -> None:
        """Write the final checkpoint and close out telemetry."""
        if self.checkpointer and self._last_saved_iteration != iteration:
            self._save(iteration, rng, history)
        if self.logger:
            tracer = trace.active()
            if tracer is not None and tracer.spans():
                self.logger.span_summary(
                    tracer.summary(),
                    wall_seconds=tracer.wall_seconds(),
                    coverage=tracer.coverage())
            self.logger.event(
                "run_end", iteration=iteration,
                seconds=time.perf_counter() - self._run_started,
                recoveries=self.recoveries, litho=self._litho_delta())
            self.logger.close()

    # ------------------------------------------------------------------
    # guarded weight updates
    # ------------------------------------------------------------------
    def apply_update(self, losses: Dict[str, float],
                     backward: Callable[[], None],
                     optimizer: Optimizer,
                     tag: str = "update") -> str:
        """Guard a loss, back-propagate, clip and step.

        Returns the guard action taken: ``"ok"`` when the update was
        applied, ``"skip"`` / ``"rollback"`` when the divergence policy
        intervened (the optimizer step is not taken in either case).
        """
        bad = nonfinite_entries(losses)
        if bad:
            self.last_action = self._diverged(bad)
            return self.last_action
        backward()
        # Clip exactly what this step updates: the generator backward
        # also deposits incidental gradients on the discriminator (via
        # D(G(z))), which must not contaminate the measured norm.
        grad_norm = clip_grad_norm_(optimizer.parameters,
                                    self.config.max_grad_norm)
        self._grad_norms[tag] = grad_norm
        if not math.isfinite(grad_norm):
            self.last_action = self._diverged({f"{tag}_grad_norm": grad_norm})
            return self.last_action
        optimizer.step()
        self.last_action = "ok"
        return "ok"

    def _diverged(self, values: Dict[str, float]) -> str:
        self.recoveries += 1
        policy = self.config.policy
        if policy == "raise" or self.recoveries > self.config.max_recoveries:
            if self.logger:
                self.logger.anomaly(
                    "divergence", iteration=self._iteration or 0,
                    action="raise", values=values,
                    recoveries=self.recoveries)
                self.logger.close()
            raise DivergenceError(self.phase, self._iteration, values,
                                  self.recoveries - 1)
        if policy == "rollback":
            restore_state(self._snapshot, self.modules, self.optimizers)
            for optimizer in self.optimizers.values():
                optimizer.lr *= self.config.lr_backoff
            action = "rollback"
        else:
            action = "skip"
        if self.logger:
            self.logger.anomaly(
                "divergence", iteration=self._iteration or 0,
                action=action, values=values, recoveries=self.recoveries,
                learning_rates={name: opt.lr for name, opt
                                in self.optimizers.items()})
        return action

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _save(self, next_iteration: int,
              rng: Optional[np.random.Generator],
              history: Dict[str, List[float]]) -> None:
        state = capture_state(next_iteration, self.modules, self.optimizers,
                              rng=rng, history=history, phase=self.phase)
        path = self.checkpointer.save(state)
        self._last_saved_iteration = next_iteration
        # Rollback targets the last durable state, so refresh the
        # in-memory snapshot to match what just hit disk.
        self._snapshot = state
        if self.logger:
            self.logger.event("checkpoint", iteration=next_iteration,
                              path=path)

    def _litho_delta(self) -> Optional[Dict[str, float]]:
        if self.engine is None:
            return None
        now = self.engine.stats.snapshot()
        delta = {key: now[key] - self._litho_prev[key] for key in now}
        self._litho_prev = now
        return delta
