"""Full-fidelity training checkpoints (module + optimizer + RNG state).

``repro.nn.serialization`` round-trips a *module*; resuming a training
run bit-exactly needs more: the Adam moment estimates and step counter,
the numpy bit-generator state that drives mini-batch sampling, the
iteration counter, and the loss history accumulated so far.
:class:`Checkpointer` persists all of it in one dependency-free ``.npz``
archive:

* every ndarray (module parameters/buffers, optimizer moment tensors)
  is stored as its own array entry under a namespaced key;
* everything scalar or structural (iteration, RNG state, histories,
  optimizer hyper-parameters) lives in one JSON blob stored as a
  ``uint8`` array under ``__meta__``.

Writes are atomic (write to a ``.tmp`` sibling, ``fsync``, then
``os.replace``), so a run killed mid-save never leaves a truncated
checkpoint behind as the latest file; corrupt or truncated archives
raise :class:`CheckpointError` instead of loading garbage weights.
Only the newest ``keep_last`` checkpoints are retained.
"""

from __future__ import annotations

import json
import os
import re
import zipfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..nn.modules import Module
from ..nn.optim import Optimizer
from ..nn.utils import to_dtype

CHECKPOINT_VERSION = 1
_META_KEY = "__meta__"
_SEP = "::"
_FILE_RE = re.compile(r"^ckpt-(\d{8})\.npz$")


class CheckpointError(RuntimeError):
    """A checkpoint file is corrupt, truncated or structurally invalid."""


@dataclass
class TrainingState:
    """Everything needed to continue a training run bit-exactly.

    ``iteration`` is the *next* iteration to execute — a checkpoint
    written after finishing iteration ``k`` stores ``k + 1``.
    """

    iteration: int
    modules: Dict[str, Dict[str, np.ndarray]] = field(default_factory=dict)
    optimizers: Dict[str, Dict] = field(default_factory=dict)
    rng_state: Optional[dict] = None
    history: Dict[str, List[float]] = field(default_factory=dict)
    phase: str = "train"


def capture_state(iteration: int, modules: Dict[str, Module],
                  optimizers: Dict[str, Optimizer],
                  rng: Optional[np.random.Generator] = None,
                  history: Optional[Dict[str, List[float]]] = None,
                  phase: str = "train") -> TrainingState:
    """Snapshot live training objects into a :class:`TrainingState`."""
    return TrainingState(
        iteration=int(iteration),
        modules={name: module.state_dict()
                 for name, module in modules.items()},
        optimizers={name: opt.state_dict()
                    for name, opt in optimizers.items()},
        rng_state=None if rng is None else rng.bit_generator.state,
        history={name: list(series)
                 for name, series in (history or {}).items()},
        phase=phase,
    )


def restore_state(state: TrainingState, modules: Dict[str, Module],
                  optimizers: Dict[str, Optimizer],
                  rng: Optional[np.random.Generator] = None) -> None:
    """Load a :class:`TrainingState` back into live training objects.

    Module/optimizer names must match what was captured; a missing name
    raises :class:`CheckpointError` rather than silently leaving a
    network at its random initialization.

    Restoring is dtype-faithful: the checkpoint's arrays carry their
    compute dtype, and the live module is cast to it *before* loading
    (``Module.load_state_dict`` adopts the live parameter dtype, so
    without the cast an f32 checkpoint loaded into a freshly built f64
    module would silently resume in double precision — no longer
    dtype-consistent with the run that wrote it).  Optimizer moments
    round-trip their stored dtype already.
    """
    for name, module in modules.items():
        if name not in state.modules:
            raise CheckpointError(
                f"checkpoint has no state for module {name!r} "
                f"(available: {sorted(state.modules)})")
        float_dtypes = {np.dtype(array.dtype)
                        for array in state.modules[name].values()
                        if np.dtype(array.dtype).kind == "f"}
        if len(float_dtypes) == 1:
            stored = float_dtypes.pop()
            if stored in (np.dtype(np.float32), np.dtype(np.float64)):
                to_dtype(module, stored)
        module.load_state_dict(state.modules[name])
    for name, optimizer in optimizers.items():
        if name not in state.optimizers:
            raise CheckpointError(
                f"checkpoint has no state for optimizer {name!r} "
                f"(available: {sorted(state.optimizers)})")
        optimizer.load_state_dict(state.optimizers[name])
    if rng is not None and state.rng_state is not None:
        rng.bit_generator.state = state.rng_state


# ----------------------------------------------------------------------
# npz encoding
# ----------------------------------------------------------------------
def _encode(state: TrainingState):
    arrays: Dict[str, np.ndarray] = {}
    meta = {
        "version": CHECKPOINT_VERSION,
        "phase": state.phase,
        "iteration": state.iteration,
        "rng_state": state.rng_state,
        "history": {k: [float(v) for v in series]
                    for k, series in state.history.items()},
        "modules": {},
        "optimizers": {},
    }
    for name, module_state in state.modules.items():
        meta["modules"][name] = sorted(module_state)
        for param, array in module_state.items():
            arrays[f"m{_SEP}{name}{_SEP}{param}"] = np.asarray(array)
    for name, opt_state in state.optimizers.items():
        scalars, array_fields = {}, {}
        for key, value in opt_state.items():
            if isinstance(value, list):
                array_fields[key] = [entry is not None for entry in value]
                for i, entry in enumerate(value):
                    if entry is not None:
                        arrays[f"o{_SEP}{name}{_SEP}{key}{_SEP}{i}"] = \
                            np.asarray(entry)
            else:
                scalars[key] = value
        meta["optimizers"][name] = {"scalars": scalars,
                                    "arrays": array_fields}
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    return arrays


def _decode(data: Dict[str, np.ndarray], path: str) -> TrainingState:
    if _META_KEY not in data:
        raise CheckpointError(
            f"checkpoint {path!r} has no {_META_KEY} entry — not a "
            "repro.runtime checkpoint (or written by an older format)")
    try:
        meta = json.loads(bytes(data[_META_KEY]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"checkpoint {path!r} metadata is unreadable: {exc}") from exc
    version = meta.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has format version {version!r}, "
            f"expected {CHECKPOINT_VERSION}")

    def _array(key: str) -> np.ndarray:
        if key not in data:
            raise CheckpointError(
                f"checkpoint {path!r} is missing array {key!r} "
                "(truncated or tampered archive)")
        return data[key]

    modules = {
        name: {param: _array(f"m{_SEP}{name}{_SEP}{param}")
               for param in params}
        for name, params in meta["modules"].items()
    }
    optimizers = {}
    for name, spec in meta["optimizers"].items():
        opt_state: Dict = dict(spec["scalars"])
        for key, mask in spec["arrays"].items():
            opt_state[key] = [
                _array(f"o{_SEP}{name}{_SEP}{key}{_SEP}{i}") if present
                else None for i, present in enumerate(mask)]
        optimizers[name] = opt_state
    return TrainingState(
        iteration=int(meta["iteration"]),
        modules=modules,
        optimizers=optimizers,
        rng_state=meta.get("rng_state"),
        history={k: list(v) for k, v in meta.get("history", {}).items()},
        phase=meta.get("phase", "train"),
    )


# ----------------------------------------------------------------------
class Checkpointer:
    """Atomic, pruned checkpoint store for one training run.

    Parameters
    ----------
    directory:
        Where ``ckpt-<iteration>.npz`` files live; created on demand.
    keep_last:
        Number of most-recent checkpoints to retain (older ones are
        deleted after each successful save).
    """

    def __init__(self, directory: str, keep_last: int = 3):
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        self.directory = directory
        self.keep_last = keep_last

    # -- paths ----------------------------------------------------------
    def path_for(self, iteration: int) -> str:
        return os.path.join(self.directory, f"ckpt-{iteration:08d}.npz")

    def paths(self) -> List[str]:
        """Existing checkpoint paths, oldest first."""
        if not os.path.isdir(self.directory):
            return []
        names = sorted(n for n in os.listdir(self.directory)
                       if _FILE_RE.match(n))
        return [os.path.join(self.directory, n) for n in names]

    def latest_path(self) -> Optional[str]:
        paths = self.paths()
        return paths[-1] if paths else None

    # -- save / load ----------------------------------------------------
    def save(self, state: TrainingState) -> str:
        """Atomically write ``state``; returns the checkpoint path."""
        os.makedirs(self.directory, exist_ok=True)
        path = self.path_for(state.iteration)
        tmp = path + ".tmp"
        arrays = _encode(state)
        try:
            with open(tmp, "wb") as fh:
                np.savez(fh, **arrays)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        self._prune()
        return path

    def load(self, path: Optional[str] = None) -> TrainingState:
        """Load a checkpoint (the latest one when ``path`` is omitted)."""
        if path is None:
            path = self.latest_path()
            if path is None:
                raise CheckpointError(
                    f"no checkpoints found in {self.directory!r}")
        if not os.path.exists(path):
            raise FileNotFoundError(f"checkpoint {path!r} does not exist")
        try:
            with np.load(path, allow_pickle=False) as archive:
                data = {key: archive[key] for key in archive.files}
        except (zipfile.BadZipFile, ValueError, OSError, EOFError,
                KeyError) as exc:
            raise CheckpointError(
                f"checkpoint {path!r} is corrupt or truncated: "
                f"{exc}") from exc
        return _decode(data, path)

    # -- retention ------------------------------------------------------
    def _prune(self) -> None:
        paths = self.paths()
        for stale in paths[:-self.keep_last]:
            os.unlink(stale)
