"""GAN-OPC reproduction: mask optimization with lithography-guided GANs.

A full-stack, pure-Python reproduction of "GAN-OPC: Mask Optimization
with Lithography-guided Generative Adversarial Nets" (Yang et al., DAC
2018), including every substrate the paper depends on:

* :mod:`repro.nn` -- numpy autograd + CNN framework,
* :mod:`repro.litho` -- Hopkins coherent-kernel lithography simulation,
* :mod:`repro.geometry` -- layout geometry, raster bridge, design rules,
* :mod:`repro.layoutgen` -- synthetic training-layout library,
* :mod:`repro.ilt` -- inverse lithography engine (baseline + refiner),
* :mod:`repro.opc` -- model-based OPC baseline,
* :mod:`repro.metrics` -- L2 / PV band / EPE / neck / bridge,
* :mod:`repro.core` -- the GAN-OPC networks, training flows and the
  end-to-end inference flow,
* :mod:`repro.bench` -- ICCAD-2013-substitute benchmark suite and the
  experiment harness regenerating the paper\'s tables and figures.
"""

__version__ = "0.1.0"

__all__ = ["nn", "litho", "geometry", "layoutgen", "ilt", "opc",
           "metrics", "core", "bench", "__version__"]
