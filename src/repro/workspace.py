"""Reusable scratch-buffer arenas for hot numeric loops.

The profiler (PR 3) shows that the litho/ILT hot loop spends a
measurable slice of its time in the allocator: every
forward/adjoint call re-allocates the same handful of large
intermediates — the ``(K, N, H, W)`` field tensor, the full mask
spectrum, the adjoint accumulation buffer, im2col padding scratch —
with shapes that are identical from one iteration to the next.

:class:`Workspace` is a tiny keyed arena fixing that: ``get(key,
shape, dtype)`` returns a preallocated buffer when one with the same
key/shape/dtype exists, else allocates and remembers it.  Buffers are
handed out *uninitialized* (callers must fully overwrite or
explicitly ``fill``), and a buffer obtained under some key must never
escape the call that requested it — the next iteration will overwrite
it.  Anything returned to user code must therefore be freshly
allocated, never arena-backed; the litho engine and ``repro.nn``
observe this rule by only passing workspace buffers through internal
code paths.

Workspaces are intentionally not thread-safe: each
:class:`~repro.litho.engine.LithoEngine` (and the ``repro.nn``
functional layer) owns one and is driven from a single thread per
process; the multiprocess execution layer (``repro.parallel``) gives
every worker its own engine and hence its own arena.

Set ``REPRO_WORKSPACE=off`` (or construct with ``enabled=False``) to
disable reuse globally — every ``get`` then returns a fresh array,
which is the simplest way to rule the arena out when debugging an
aliasing suspicion.
"""

from __future__ import annotations

import os
from typing import Dict, Hashable, Tuple

import numpy as np


def _env_enabled() -> bool:
    value = os.environ.get("REPRO_WORKSPACE", "").strip().lower()
    return value not in ("0", "off", "none", "false")


class Workspace:
    """Keyed arena of reusable numpy scratch buffers.

    Parameters
    ----------
    enabled:
        ``False`` makes :meth:`get` always allocate (no reuse).  The
        default consults ``REPRO_WORKSPACE`` (anything but
        ``0/off/none/false`` enables).
    """

    __slots__ = ("enabled", "_buffers", "hits", "misses")

    def __init__(self, enabled: bool = None):
        self.enabled = _env_enabled() if enabled is None else bool(enabled)
        self._buffers: Dict[Hashable, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable, shape: Tuple[int, ...],
            dtype) -> np.ndarray:
        """Uninitialized buffer of ``shape``/``dtype`` for ``key``.

        Reuses the previous buffer for ``key`` when shape and dtype
        match; otherwise (or when disabled) allocates.  Contents are
        arbitrary — treat like ``np.empty``.
        """
        if not self.enabled:
            return np.empty(shape, dtype=dtype)
        buffer = self._buffers.get(key)
        if (buffer is not None and buffer.shape == tuple(shape)
                and buffer.dtype == np.dtype(dtype)):
            self.hits += 1
            return buffer
        self.misses += 1
        buffer = np.empty(shape, dtype=dtype)
        self._buffers[key] = buffer
        return buffer

    def zeros(self, key: Hashable, shape: Tuple[int, ...],
              dtype) -> np.ndarray:
        """Like :meth:`get` but zero-filled (reused buffers are wiped)."""
        buffer = self.get(key, shape, dtype)
        buffer.fill(0)
        return buffer

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena."""
        return sum(b.nbytes for b in self._buffers.values())

    def clear(self) -> None:
        """Drop every held buffer (frees the memory)."""
        self._buffers.clear()

    def __repr__(self) -> str:
        return (f"Workspace(enabled={self.enabled}, "
                f"buffers={len(self._buffers)}, nbytes={self.nbytes}, "
                f"hits={self.hits}, misses={self.misses})")
