"""Reusable scratch-buffer arenas for hot numeric loops.

The profiler (PR 3) shows that the litho/ILT hot loop spends a
measurable slice of its time in the allocator: every
forward/adjoint call re-allocates the same handful of large
intermediates — the ``(K, N, H, W)`` field tensor, the full mask
spectrum, the adjoint accumulation buffer, im2col padding scratch —
with shapes that are identical from one iteration to the next.

:class:`Workspace` is a tiny keyed arena fixing that: ``get(key,
shape, dtype)`` returns a preallocated buffer when one with the same
key/shape/dtype exists, else allocates and remembers it.  Buffers are
handed out *uninitialized* (callers must fully overwrite or
explicitly ``fill``), and a buffer obtained under some key must never
escape the call that requested it — the next iteration will overwrite
it.  Anything returned to user code must therefore be freshly
allocated, never arena-backed; the litho engine and ``repro.nn``
observe this rule by only passing workspace buffers through internal
code paths.

Buffers are stored under ``(key, dtype, backend)`` composite keys, so
an arena shared by f32 and f64 call paths (or by numpy and cupy
engines) keeps one live buffer per dtype/backend instead of
thrashing a single slot — and, more importantly, an f32 caller can
never be handed a view aliasing an f64 caller's live data.  Arenas
constructed with a :class:`repro.backend.ArrayBackend` allocate on
that backend (GPU arenas hold device memory).

Workspaces are intentionally not thread-safe: each
:class:`~repro.litho.engine.LithoEngine` (and the ``repro.nn``
functional layer) owns one and is driven from a single thread per
process; the multiprocess execution layer (``repro.parallel``) gives
every worker its own engine and hence its own arena.

Set ``REPRO_WORKSPACE=off`` (or construct with ``enabled=False``) to
disable reuse globally — every ``get`` then returns a fresh array,
which is the simplest way to rule the arena out when debugging an
aliasing suspicion.
"""

from __future__ import annotations

import os
from typing import Dict, Hashable, Optional, Tuple

import numpy as np


def _env_enabled() -> bool:
    value = os.environ.get("REPRO_WORKSPACE", "").strip().lower()
    return value not in ("0", "off", "none", "false")


class Workspace:
    """Keyed arena of reusable scratch buffers.

    Parameters
    ----------
    enabled:
        ``False`` makes :meth:`get` always allocate (no reuse).  The
        default consults ``REPRO_WORKSPACE`` (anything but
        ``0/off/none/false`` enables).
    backend:
        Optional :class:`repro.backend.ArrayBackend` the arena
        allocates on; ``None`` means host numpy.  The backend name is
        part of every storage key, so one arena can serve mixed
        numpy/cupy callers without ever aliasing buffers across
        backends.
    """

    __slots__ = ("enabled", "backend", "_backend_name", "_buffers",
                 "hits", "misses")

    def __init__(self, enabled: Optional[bool] = None, backend=None):
        self.enabled = _env_enabled() if enabled is None else bool(enabled)
        self.backend = backend
        self._backend_name = "numpy" if backend is None else backend.name
        self._buffers: Dict[Hashable, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def _alloc(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        if self.backend is None:
            return np.empty(shape, dtype=dtype)
        return self.backend.empty(shape, dtype=dtype)

    def get(self, key: Hashable, shape: Tuple[int, ...],
            dtype) -> np.ndarray:
        """Uninitialized buffer of ``shape``/``dtype`` for ``key``.

        Reuses the previous buffer for ``(key, dtype, backend)`` when
        the shape matches; otherwise (or when disabled) allocates.
        Contents are arbitrary — treat like ``np.empty``.  Requests
        for the same ``key`` under different dtypes coexist: each
        dtype owns its own slot, so cross-dtype callers never alias
        (and never thrash) each other's buffers.
        """
        dtype = np.dtype(dtype)
        if not self.enabled:
            return self._alloc(shape, dtype)
        storage_key = (key, dtype, self._backend_name)
        buffer = self._buffers.get(storage_key)
        if buffer is not None and buffer.shape == tuple(shape):
            self.hits += 1
            return buffer
        self.misses += 1
        buffer = self._alloc(shape, dtype)
        self._buffers[storage_key] = buffer
        return buffer

    def zeros(self, key: Hashable, shape: Tuple[int, ...],
              dtype) -> np.ndarray:
        """Like :meth:`get` but zero-filled (reused buffers are wiped)."""
        buffer = self.get(key, shape, dtype)
        buffer.fill(0)
        return buffer

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena."""
        return sum(b.nbytes for b in self._buffers.values())

    def clear(self) -> None:
        """Drop every held buffer (frees the memory)."""
        self._buffers.clear()

    def __repr__(self) -> str:
        return (f"Workspace(enabled={self.enabled}, "
                f"backend={self._backend_name!r}, "
                f"buffers={len(self._buffers)}, nbytes={self.nbytes}, "
                f"hits={self.hits}, misses={self.misses})")
