"""Self-contained static HTML report for a run (``repro report``).

Everything is rendered with the stdlib: convergence curves and
per-clip metric bars are inline SVG, EPE-hotspot overlays are
base64 PNG data URIs produced by a minimal zlib/struct encoder — the
resulting file has zero external references and can be archived as a
CI artifact or mailed around.

The renderer only *reads* the run directory (``manifest.json``,
``quality.jsonl`` and, when present, the persisted ``table2.json``);
it never re-runs lithography.  Hotspot coordinates were captured at
evaluation time into ``clip_result`` records, and the target raster
for the overlay comes from the clip geometry persisted with the
Table 2 result.
"""

from __future__ import annotations

import base64
import html
import json
import math
import os
import struct
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .quality import GATE_METRICS, RunQuality, run_quality
from .store import RunHandle, utc_iso

#: Metrics charted per clip (subset of the gate metrics that every
#: evaluation carries).
CHART_METRICS = ("l2_nm2", "pvband_nm2", "epe_violations")

_PALETTE = ("#2563eb", "#dc2626", "#059669", "#d97706", "#7c3aed",
            "#0891b2")


# ----------------------------------------------------------------------
# stdlib PNG encoding
# ----------------------------------------------------------------------
def png_bytes(rgb: np.ndarray) -> bytes:
    """Encode an ``(H, W, 3)`` uint8 image as an uncompressed-filter PNG."""
    rgb = np.ascontiguousarray(rgb, dtype=np.uint8)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) uint8, got {rgb.shape}")
    height, width = rgb.shape[:2]
    raw = b"".join(b"\x00" + rgb[row].tobytes() for row in range(height))

    def chunk(tag: bytes, data: bytes) -> bytes:
        block = tag + data
        return (struct.pack(">I", len(data)) + block
                + struct.pack(">I", zlib.crc32(block) & 0xFFFFFFFF))

    header = struct.pack(">IIBBBBB", width, height, 8, 2, 0, 0, 0)
    return (b"\x89PNG\r\n\x1a\n" + chunk(b"IHDR", header)
            + chunk(b"IDAT", zlib.compress(raw, 6))
            + chunk(b"IEND", b""))


def png_data_uri(rgb: np.ndarray) -> str:
    return ("data:image/png;base64,"
            + base64.b64encode(png_bytes(rgb)).decode("ascii"))


# ----------------------------------------------------------------------
# SVG charts
# ----------------------------------------------------------------------
def _finite_points(points: Sequence[Tuple[float, float]]
                   ) -> List[Tuple[float, float]]:
    return [(x, y) for x, y in points
            if math.isfinite(float(x)) and math.isfinite(float(y))]


def svg_curves(series: Dict[str, List[Tuple[float, float]]],
               width: int = 640, height: int = 220,
               title: str = "") -> str:
    """Multi-series line chart (iteration on x, objective on y)."""
    pad = 42
    named = {name: _finite_points(points)
             for name, points in series.items()}
    named = {name: pts for name, pts in named.items() if pts}
    if not named:
        return "<p class='empty'>no convergence samples recorded</p>"
    xs = [x for pts in named.values() for x, _ in pts]
    ys = [y for pts in named.values() for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    def sx(x: float) -> float:
        return pad + (x - x_lo) / (x_hi - x_lo) * (width - 2 * pad)

    def sy(y: float) -> float:
        return height - pad - (y - y_lo) / (y_hi - y_lo) * (height - 2 * pad)

    parts = [f"<svg viewBox='0 0 {width} {height}' width='{width}' "
             f"height='{height}' role='img'>"]
    if title:
        parts.append(f"<text x='{width / 2:.0f}' y='16' class='ctitle' "
                     f"text-anchor='middle'>{html.escape(title)}</text>")
    parts.append(f"<rect x='{pad}' y='{pad / 2:.0f}' "
                 f"width='{width - 2 * pad}' "
                 f"height='{height - pad - pad / 2:.0f}' class='frame'/>")
    parts.append(f"<text x='{pad}' y='{height - 8}' class='axis'>"
                 f"{x_lo:g}</text>")
    parts.append(f"<text x='{width - pad}' y='{height - 8}' class='axis' "
                 f"text-anchor='end'>{x_hi:g}</text>")
    parts.append(f"<text x='4' y='{sy(y_hi) + 4:.0f}' class='axis'>"
                 f"{y_hi:.4g}</text>")
    parts.append(f"<text x='4' y='{sy(y_lo):.0f}' class='axis'>"
                 f"{y_lo:.4g}</text>")
    for index, (name, pts) in enumerate(sorted(named.items())):
        color = _PALETTE[index % len(_PALETTE)]
        coords = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in pts)
        parts.append(f"<polyline points='{coords}' fill='none' "
                     f"stroke='{color}' stroke-width='1.5'/>")
        parts.append(f"<text x='{pad + 6}' y='{pad / 2 + 14 + 14 * index:.0f}'"
                     f" fill='{color}' class='legend'>"
                     f"{html.escape(name)}</text>")
    parts.append("</svg>")
    return "".join(parts)


def svg_bars(labels: Sequence[str],
             groups: Dict[str, Sequence[Optional[float]]],
             width: int = 640, height: int = 200,
             title: str = "") -> str:
    """Grouped bar chart: one cluster per label, one bar per group."""
    pad = 42
    values = [v for vs in groups.values() for v in vs
              if v is not None and math.isfinite(float(v))]
    if not labels or not values:
        return "<p class='empty'>no data</p>"
    top = max(max(values), 0.0) or 1.0
    cluster = (width - 2 * pad) / max(len(labels), 1)
    bar = cluster / (len(groups) + 1)
    parts = [f"<svg viewBox='0 0 {width} {height}' width='{width}' "
             f"height='{height}' role='img'>"]
    if title:
        parts.append(f"<text x='{width / 2:.0f}' y='16' class='ctitle' "
                     f"text-anchor='middle'>{html.escape(title)}</text>")
    base = height - pad
    parts.append(f"<line x1='{pad}' y1='{base}' x2='{width - pad}' "
                 f"y2='{base}' class='frame'/>")
    parts.append(f"<text x='4' y='{pad / 2 + 8:.0f}' class='axis'>"
                 f"{top:.4g}</text>")
    for g_index, (name, vs) in enumerate(groups.items()):
        color = _PALETTE[g_index % len(_PALETTE)]
        parts.append(f"<text x='{pad + 6 + 110 * g_index}' y='{pad / 2:.0f}' "
                     f"fill='{color}' class='legend'>"
                     f"{html.escape(name)}</text>")
        for l_index, value in enumerate(vs):
            if value is None or not math.isfinite(float(value)):
                continue
            h = (float(value) / top) * (base - pad / 2 - 18)
            x = pad + cluster * l_index + bar * (g_index + 0.5)
            parts.append(f"<rect x='{x:.1f}' y='{base - h:.1f}' "
                         f"width='{bar * 0.9:.1f}' height='{h:.1f}' "
                         f"fill='{color}'><title>"
                         f"{html.escape(name)}: {float(value):g}"
                         f"</title></rect>")
    for l_index, label in enumerate(labels):
        x = pad + cluster * (l_index + 0.5)
        parts.append(f"<text x='{x:.0f}' y='{height - 8}' class='axis' "
                     f"text-anchor='middle'>{html.escape(label)}</text>")
    parts.append("</svg>")
    return "".join(parts)


# ----------------------------------------------------------------------
# hotspot overlays
# ----------------------------------------------------------------------
def hotspot_overlay(target: np.ndarray, extent: float,
                    hotspots: Sequence[dict],
                    marker_px: int = 2) -> np.ndarray:
    """Target raster in gray with violating EPE sites marked in red."""
    target = np.asarray(target)
    grid = target.shape[0]
    pixel = extent / grid
    gray = (np.clip(target, 0.0, 1.0) * 160).astype(np.uint8)
    rgb = np.stack([gray, gray, gray], axis=-1)
    for spot in hotspots:
        col = int(float(spot["x"]) / pixel)
        row = int(float(spot["y"]) / pixel)
        r0, r1 = max(row - marker_px, 0), min(row + marker_px + 1, grid)
        c0, c1 = max(col - marker_px, 0), min(col + marker_px + 1, grid)
        if r0 < r1 and c0 < c1:
            rgb[r0:r1, c0:c1] = (220, 38, 38)
    return rgb


def _load_table2(run: RunHandle):
    path = run.artifact_path("table2")
    if path is None or not os.path.isfile(path):
        return None
    from ..bench.harness import Table2Result
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return Table2Result.from_dict(json.load(fh))
    except (ValueError, KeyError, json.JSONDecodeError):
        return None


# ----------------------------------------------------------------------
# HTML assembly
# ----------------------------------------------------------------------
_CSS = """
body { font-family: system-ui, sans-serif; margin: 2rem auto;
       max-width: 72rem; color: #111827; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem;
       border-bottom: 1px solid #e5e7eb; padding-bottom: .3rem; }
table { border-collapse: collapse; font-size: .85rem; margin: .5rem 0; }
th, td { border: 1px solid #e5e7eb; padding: .25rem .6rem;
         text-align: left; }
th { background: #f3f4f6; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.frame { fill: none; stroke: #d1d5db; }
.axis { font-size: 10px; fill: #6b7280; }
.legend { font-size: 11px; font-weight: 600; }
.ctitle { font-size: 12px; fill: #374151; }
.empty { color: #6b7280; font-style: italic; }
.anom { color: #b91c1c; }
figure { display: inline-block; margin: .4rem; text-align: center; }
figcaption { font-size: .75rem; color: #6b7280; }
img.overlay { image-rendering: pixelated; width: 192px; height: 192px;
              border: 1px solid #e5e7eb; }
"""


def _cell(value) -> str:
    if isinstance(value, float):
        return f"<td class='num'>{value:,.1f}</td>"
    if isinstance(value, int):
        return f"<td class='num'>{value:,d}</td>"
    return f"<td>{html.escape(str(value))}</td>"


def _manifest_section(run: RunHandle) -> str:
    m = run.manifest
    rows = [("run id", m.run_id), ("command", m.command),
            ("status", m.status), ("started", m.started),
            ("finished", m.finished or "-"), ("git rev", m.git_rev),
            ("config hash", m.config_hash or "-"),
            ("conditions", m.conditions or "nominal"),
            ("seed", m.seed if m.seed is not None else "-"),
            ("precision", m.precision or "-"),
            ("workers", m.workers if m.workers is not None else "-"),
            ("grid", m.grid if m.grid is not None else "-"),
            ("argv", " ".join(m.argv) or "-")]
    for key, value in sorted(m.packages.items()):
        rows.append((f"package {key}", value))
    for key, value in sorted(m.params.items()):
        rows.append((f"param {key}", value))
    body = "".join(f"<tr><th>{html.escape(str(key))}</th>{_cell(value)}</tr>"
                   for key, value in rows)
    return f"<h2>Manifest</h2><table>{body}</table>"


def _convergence_section(quality: RunQuality) -> str:
    series = {name: [(it, obj) for it, obj, _ in points]
              for name, points in quality.samples.items()}
    return ("<h2>Convergence</h2>"
            + svg_curves(series, title="objective vs iteration"))


def _metric_value(metrics: Dict[str, float], key: str) -> Optional[float]:
    value = metrics.get(key)
    if isinstance(value, (int, float)) and math.isfinite(float(value)):
        return float(value)
    return None


def _clip_bars_section(quality: RunQuality,
                       baseline: Optional[RunQuality],
                       baseline_id: str = "baseline") -> str:
    if not quality.clip_results:
        return ("<h2>Per-clip quality</h2>"
                "<p class='empty'>no clip_result records</p>")
    clips = quality.clips
    parts = ["<h2>Per-clip quality</h2>"]
    for metric in CHART_METRICS:
        groups: Dict[str, List[Optional[float]]] = {}
        for method in quality.methods:
            per_clip = quality.clip_results[method]
            groups[method] = [
                _metric_value(per_clip.get(clip, {}), metric)
                for clip in clips]
            if baseline is not None \
                    and method in baseline.clip_results:
                base_clips = baseline.clip_results[method]
                groups[f"{method} ({baseline_id})"] = [
                    _metric_value(base_clips.get(clip, {}), metric)
                    for clip in clips]
        if any(v is not None for vs in groups.values() for v in vs):
            parts.append(svg_bars(clips, groups, title=metric))
    return "".join(parts)


def _aggregate_section(quality: RunQuality,
                       baseline: Optional[RunQuality]) -> str:
    agg = quality.aggregates()
    if not agg:
        return ""
    base_agg = baseline.aggregates() if baseline is not None else {}
    keys = [key for key in GATE_METRICS + ("runtime_seconds",)
            if any(key in metrics for metrics in agg.values())]
    head = "".join(f"<th>{html.escape(key)}</th>" for key in keys)
    rows = []
    for method, metrics in sorted(agg.items()):
        cells = []
        for key in keys:
            value = metrics.get(key)
            if value is None:
                cells.append("<td class='num'>-</td>")
                continue
            base = base_agg.get(method, {}).get(key)
            delta = (f" <small>({value - base:+,.1f})</small>"
                     if base is not None else "")
            cells.append(f"<td class='num'>{value:,.1f}{delta}</td>")
        rows.append(f"<tr><th>{html.escape(method)}</th>"
                    + "".join(cells) + "</tr>")
    note = ("<p><small>parenthesised deltas are vs the baseline "
            "run</small></p>" if base_agg else "")
    return ("<h2>Aggregate quality (mean over clips)</h2>"
            f"<table><tr><th>method</th>{head}</tr>"
            + "".join(rows) + "</table>" + note)


def _hotspot_section(run: RunHandle, quality: RunQuality,
                     limit: int = 9) -> str:
    if not quality.hotspots:
        return ""
    table2 = _load_table2(run)
    if table2 is None:
        sites = sum(len(spots) for spots in quality.hotspots.values())
        return ("<h2>EPE hotspots</h2><p class='empty'>"
                f"{sites} hotspot sites recorded, but no persisted "
                "table2.json to rasterize overlays from</p>")
    from ..geometry.raster import rasterize
    clip_by_name = {clip.name: clip for clip in table2.clips}
    grid = next((mask.shape[0] for masks in table2.masks.values()
                 for mask in masks), 128)
    figures = []
    shown = sorted(quality.hotspots)[:limit]
    for method, clip_name in shown:
        clip = clip_by_name.get(clip_name)
        if clip is None:
            continue
        target = rasterize(clip.layout, grid)
        rgb = hotspot_overlay(target, clip.layout.extent,
                              quality.hotspots[(method, clip_name)])
        count = len(quality.hotspots[(method, clip_name)])
        figures.append(
            f"<figure><img class='overlay' alt='EPE hotspots "
            f"{html.escape(method)}/{html.escape(clip_name)}' "
            f"src='{png_data_uri(rgb)}'/>"
            f"<figcaption>{html.escape(method)} / "
            f"{html.escape(clip_name)} — {count} violating "
            f"site{'s' if count != 1 else ''}</figcaption></figure>")
    dropped = len(quality.hotspots) - len(shown)
    more = (f"<p class='empty'>(+{dropped} more clip overlays "
            f"not shown)</p>" if dropped > 0 else "")
    return "<h2>EPE hotspots</h2>" + "".join(figures) + more


def _spans_section(quality: RunQuality, manifest_summary: Dict) -> str:
    parts = []
    if quality.spans:
        rows = "".join(
            f"<tr><th>{html.escape(name)}</th>"
            f"<td class='num'>{int(entry['count']):,d}</td>"
            f"<td class='num'>{entry['seconds']:,.3f}</td></tr>"
            for name, entry in sorted(quality.spans.items()))
        parts.append("<h2>Spans</h2><table><tr><th>span</th><th>count"
                     "</th><th>seconds</th></tr>" + rows + "</table>")
    litho = (manifest_summary or {}).get("litho", {})
    numeric = {key: value for key, value in sorted(litho.items())
               if isinstance(value, (int, float))}
    if numeric:
        rows = "".join(f"<tr><th>{html.escape(key)}</th>{_cell(value)}</tr>"
                       for key, value in numeric.items())
        parts.append("<h2>Litho engine counters</h2><table>"
                     + rows + "</table>")
    return "".join(parts)


def _anomaly_section(quality: RunQuality) -> str:
    if not quality.anomalies:
        return "<h2>Anomalies</h2><p class='empty'>none recorded</p>"
    rows = []
    for record in quality.anomalies:
        detail = {key: value for key, value in record.items()
                  if key not in ("event", "kind", "wall_time", "phase")}
        rows.append(f"<tr><td class='anom'>"
                    f"{html.escape(str(record.get('kind')))}</td>"
                    f"<td>{html.escape(json.dumps(detail, sort_keys=True))}"
                    f"</td></tr>")
    return ("<h2>Anomalies</h2><table><tr><th>kind</th><th>detail</th>"
            "</tr>" + "".join(rows) + "</table>")


def render_report(run: RunHandle,
                  baseline: Optional[RunHandle] = None) -> str:
    """Render one run (optionally against a baseline run) to HTML."""
    quality = run_quality(run.dir)
    base_quality = run_quality(baseline.dir) if baseline is not None \
        else None
    baseline_note = (
        f"<p>baseline run: <code>{html.escape(baseline.manifest.run_id)}"
        f"</code></p>" if baseline is not None else "")
    sections = [
        _manifest_section(run),
        _convergence_section(quality),
        _aggregate_section(quality, base_quality),
        _clip_bars_section(quality, base_quality),
        _hotspot_section(run, quality),
        _spans_section(quality, run.manifest.summary),
        _anomaly_section(quality),
    ]
    title = f"repro run {run.manifest.run_id}"
    return (
        "<!DOCTYPE html><html lang='en'><head><meta charset='utf-8'/>"
        f"<title>{html.escape(title)}</title>"
        f"<style>{_CSS}</style></head><body>"
        f"<h1>{html.escape(title)}</h1>"
        f"<p>generated {utc_iso()} by <code>repro report</code></p>"
        + baseline_note + "".join(sections) + "</body></html>")


def write_report(run: RunHandle, path: str,
                 baseline: Optional[RunHandle] = None) -> str:
    document = render_report(run, baseline=baseline)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(document)
    return path
