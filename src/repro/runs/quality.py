"""Quality views over a run's telemetry: aggregation + gate records.

Two consumers read a run's ``quality.jsonl``:

* :func:`run_quality` folds the stream into a :class:`RunQuality` —
  convergence series, per-clip/per-method final metrics, anomalies —
  the shape ``repro runs show/diff`` and ``repro report`` render;
* :func:`quality_record_from_table2` distills a
  :class:`~repro.bench.harness.Table2Result` into the flat
  ``QUALITY_*.json`` record that ``BASELINE_quality.json`` pins and
  ``benchmarks/check_quality_regression.py`` gates in CI (the quality
  twin of ``BENCH_substrate.json`` / ``check_bench_regression.py``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

QUALITY_SCHEMA_VERSION = 1

#: Metrics the regression gate compares (all lower-is-better).
GATE_METRICS = ("l2_nm2", "pvband_nm2", "epe_violations",
                "window_pvband_nm2", "worst_corner_l2_nm2",
                "worst_corner_epe")

#: MaskEvaluation fields carried into clip_result records / gate records.
CLIP_METRIC_KEYS = GATE_METRICS + ("neck_defects", "bridge_defects")


class QualityRecordError(ValueError):
    """A QUALITY_*.json file is missing, corrupt or schema-less."""


def _maybe_float(value):
    if value is None or isinstance(value, str):
        return value
    return float(value)


def clip_metrics(evaluation) -> Dict[str, float]:
    """The numeric metric subset of a
    :class:`~repro.metrics.report.MaskEvaluation` (None fields dropped)."""
    data = evaluation.as_dict()
    return {key: _maybe_float(data[key]) for key in CLIP_METRIC_KEYS
            if data.get(key) is not None}


@dataclass
class RunQuality:
    """Folded quality telemetry of one run directory.

    Attributes
    ----------
    samples:
        Convergence points grouped by series key (``stage`` for
        training runs, ``method/clip`` for per-clip optimization):
        each entry is ``(iteration, objective, l2-or-None)``.
    clip_results:
        ``{method: {clip: metrics-dict}}`` from ``clip_result`` records.
    runtimes:
        ``{method: {clip: runtime_seconds}}`` where recorded.
    hotspots:
        ``{(method, clip): [{x, y, epe}, ...]}`` EPE hotspot control
        points for the report overlay.
    anomalies:
        Raw ``anomaly`` records in stream order.
    spans:
        Last-seen ``span_summary`` span map (``{name: {count,
        seconds}}``), empty when the run recorded no spans.
    """

    samples: Dict[str, List[tuple]] = field(default_factory=dict)
    clip_results: Dict[str, Dict[str, Dict[str, float]]] = \
        field(default_factory=dict)
    runtimes: Dict[str, Dict[str, float]] = field(default_factory=dict)
    hotspots: Dict[tuple, List[dict]] = field(default_factory=dict)
    anomalies: List[dict] = field(default_factory=list)
    spans: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def aggregates(self) -> Dict[str, Dict[str, float]]:
        """Per-method metric means over clips (finite values only)."""
        out: Dict[str, Dict[str, float]] = {}
        for method, clips in self.clip_results.items():
            sums: Dict[str, List[float]] = {}
            for metrics in clips.values():
                for key, value in metrics.items():
                    if isinstance(value, (int, float)) \
                            and np.isfinite(value):
                        sums.setdefault(key, []).append(float(value))
            out[method] = {key: float(np.mean(values))
                           for key, values in sums.items()}
            runtime = [v for v in self.runtimes.get(method, {}).values()
                       if v is not None]
            if runtime:
                out[method]["runtime_seconds"] = float(np.mean(runtime))
        return out

    @property
    def methods(self) -> List[str]:
        return sorted(self.clip_results)

    @property
    def clips(self) -> List[str]:
        names = set()
        for clips in self.clip_results.values():
            names.update(clips)
        return sorted(names)


def _number(value):
    """Undo the telemetry non-finite-string encoding."""
    if value == "nan":
        return float("nan")
    if value == "inf":
        return float("inf")
    if value == "-inf":
        return float("-inf")
    return value


def run_quality(run_dir: str) -> RunQuality:
    """Fold every telemetry stream in a run directory into one view.

    Besides the primary ``quality.jsonl``, commands drop phase streams
    (``pretrain.jsonl``/``gan.jsonl`` from training runs, ``flow.jsonl``
    from tiled runs) into the same directory; all of them use the same
    schema-validated record format, so the fold is additive and events
    it does not know about are skipped.
    """
    quality = RunQuality()
    if not os.path.isdir(run_dir):
        return quality
    streams = sorted(name for name in os.listdir(run_dir)
                     if name.endswith(".jsonl"))
    for name in streams:
        _fold_stream(quality, os.path.join(run_dir, name))
    return quality


def _fold_stream(quality: RunQuality, path: str) -> None:
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            event = record.get("event")
            if event == "quality_sample":
                key_parts = [record[k] for k in ("method", "clip", "stage")
                             if record.get(k)]
                key = "/".join(key_parts) or record.get("phase", "run")
                quality.samples.setdefault(key, []).append(
                    (record["iteration"], _number(record["objective"]),
                     _number(record.get("l2"))))
            elif event == "clip_result":
                method = record["method"]
                clip = record["clip"]
                metrics = {key: _number(value) for key, value
                           in record["metrics"].items()}
                quality.clip_results.setdefault(method, {})[clip] = metrics
                if record.get("runtime_seconds") is not None:
                    quality.runtimes.setdefault(method, {})[clip] = \
                        record["runtime_seconds"]
                if record.get("epe_hotspots"):
                    quality.hotspots[(method, clip)] = \
                        record["epe_hotspots"]
            elif event == "anomaly":
                quality.anomalies.append(record)
            elif event in ("span_summary", "worker_span_summary"):
                for name, entry in record.get("spans", {}).items():
                    merged = quality.spans.setdefault(
                        name, {"count": 0, "seconds": 0.0})
                    merged["count"] += int(entry["count"])
                    merged["seconds"] += float(entry["seconds"])


# ----------------------------------------------------------------------
# the flat gate record (QUALITY_*.json / BASELINE_quality.json)
# ----------------------------------------------------------------------
def quality_record_from_table2(result, suite: str,
                               git_rev: str = "unknown",
                               config_hash: Optional[str] = None) -> dict:
    """Distill a Table 2 result into the gate's flat record shape."""
    clips: Dict[str, Dict[str, Dict[str, float]]] = {}
    for method, evaluations in result.columns.items():
        clips[method] = {}
        for evaluation in evaluations:
            metrics = clip_metrics(evaluation)
            metrics = {key: value for key, value in metrics.items()
                       if isinstance(value, (int, float))}
            clips[method][evaluation.name] = metrics
    aggregates = {
        method: {
            key: float(np.mean([m[key] for m in per_clip.values()
                                if key in m]))
            for key in GATE_METRICS
            if any(key in m for m in per_clip.values())
        }
        for method, per_clip in clips.items()
    }
    from .store import utc_iso
    return {
        "schema": QUALITY_SCHEMA_VERSION,
        "kind": "quality",
        "suite": suite,
        "generated_utc": utc_iso(),
        "git_rev": git_rev,
        "config_hash": config_hash,
        "clips": clips,
        "aggregates": aggregates,
    }


def quality_record_from_run(run_dir: str, suite: str,
                            git_rev: str = "unknown",
                            config_hash: Optional[str] = None) -> dict:
    """Build the gate record from a run directory's clip_result stream."""
    quality = run_quality(run_dir)
    clips = {
        method: {clip: {key: value for key, value in metrics.items()
                        if isinstance(value, (int, float))
                        and np.isfinite(value)}
                 for clip, metrics in per_clip.items()}
        for method, per_clip in quality.clip_results.items()
    }
    aggregates = {
        method: {key: value
                 for key, value in quality.aggregates()[method].items()
                 if key in GATE_METRICS}
        for method in clips
    }
    from .store import utc_iso
    return {
        "schema": QUALITY_SCHEMA_VERSION,
        "kind": "quality",
        "suite": suite,
        "generated_utc": utc_iso(),
        "git_rev": git_rev,
        "config_hash": config_hash,
        "clips": clips,
        "aggregates": aggregates,
    }


def write_quality_record(record: dict, path: str) -> str:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True, allow_nan=False)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def load_quality_record(path: str) -> dict:
    """Load and validate a QUALITY_*.json gate record.

    Raises :class:`QualityRecordError` with a pointed message on
    schema-less or corrupt files instead of failing downstream.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            record = json.load(fh)
    except FileNotFoundError:
        raise QualityRecordError(f"quality record not found: {path}") \
            from None
    except json.JSONDecodeError as exc:
        raise QualityRecordError(
            f"{path} is not valid JSON ({exc}); regenerate it with "
            f"'repro table2 --quality-out'") from exc
    if not isinstance(record, dict) \
            or record.get("schema") != QUALITY_SCHEMA_VERSION:
        raise QualityRecordError(
            f"{path}: missing or unsupported quality schema "
            f"{record.get('schema') if isinstance(record, dict) else None!r}"
            f" (expected {QUALITY_SCHEMA_VERSION})")
    if "clips" not in record or not isinstance(record["clips"], dict):
        raise QualityRecordError(f"{path}: record has no 'clips' table")
    return record
