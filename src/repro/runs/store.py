"""Content-addressed experiment run store (the "run ledger").

Every ``repro train/flow/ilt/table2`` invocation opens a run in the
store (``--runs-dir``, default ``.repro_runs/``): a directory named by
a content hash of the run's configuration plus its start time, holding

* ``manifest.json`` — what was run: command, CLI argv, git revision,
  litho config (and its kernel-cache ``config_hash``), corner stack,
  seed, precision, workers, package versions, links to every artifact
  the run produced (telemetry JSONL, traces, checkpoints, masks,
  persisted Table 2 results), and a final metric summary;
* ``quality.jsonl`` — schema-validated quality telemetry
  (``quality_sample`` / ``clip_result`` / ``anomaly`` records, plus the
  ``run_manifest`` header record) written through the ordinary
  :class:`~repro.runtime.telemetry.RunLogger` contract;
* whatever artifacts the command links in (``table2.json``, mask PGMs,
  copied clip ``.glp`` files, ...).

The store is the substrate of ``repro runs list/show/diff`` and
``repro report``: two runs can be compared — config deltas, per-clip
and aggregate metric deltas — without rerunning anything.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import shutil
import subprocess
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

MANIFEST_NAME = "manifest.json"
QUALITY_LOG_NAME = "quality.jsonl"
TABLE2_NAME = "table2.json"
DEFAULT_ROOT = ".repro_runs"
MANIFEST_SCHEMA_VERSION = 1


class RunStoreError(ValueError):
    """A run store operation failed (unknown id, corrupt manifest, ...)."""


def git_revision(cwd: Optional[str] = None) -> str:
    """Short git revision of ``cwd`` (or the process cwd); ``"unknown"``
    when git is unavailable or the directory is not a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=cwd,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def package_versions() -> Dict[str, str]:
    """Versions of the packages that determine numeric results."""
    versions = {"python": platform.python_version()}
    for name in ("numpy", "scipy"):
        try:
            module = __import__(name)
            versions[name] = str(getattr(module, "__version__", "unknown"))
        except ImportError:
            pass
    return versions


def utc_iso(ts: Optional[float] = None) -> str:
    """ISO-8601 UTC timestamp (second resolution, ``Z`` suffix)."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ",
                         time.gmtime(time.time() if ts is None else ts))


@dataclass
class RunManifest:
    """Everything needed to identify, reproduce and compare one run."""

    run_id: str
    command: str
    argv: List[str] = field(default_factory=list)
    started: str = ""
    finished: Optional[str] = None
    status: str = "running"
    git_rev: str = "unknown"
    config_hash: Optional[str] = None
    litho: Dict = field(default_factory=dict)
    conditions: Optional[str] = None
    seed: Optional[int] = None
    precision: Optional[str] = None
    workers: Optional[int] = None
    grid: Optional[int] = None
    packages: Dict[str, str] = field(default_factory=dict)
    params: Dict = field(default_factory=dict)
    artifacts: Dict[str, str] = field(default_factory=dict)
    summary: Dict = field(default_factory=dict)
    schema: int = MANIFEST_SCHEMA_VERSION

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        if not isinstance(data, dict) or "run_id" not in data \
                or "command" not in data:
            raise RunStoreError(
                f"not a run manifest: missing run_id/command in {data!r}")
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{key: value for key, value in data.items()
                      if key in known})

    def config_fields(self) -> Dict[str, object]:
        """The flat fields ``repro runs diff`` compares as configuration."""
        out: Dict[str, object] = {
            "command": self.command,
            "git_rev": self.git_rev,
            "config_hash": self.config_hash,
            "conditions": self.conditions,
            "seed": self.seed,
            "precision": self.precision,
            "workers": self.workers,
            "grid": self.grid,
        }
        for key, value in sorted(self.params.items()):
            out[f"params.{key}"] = value
        for key, value in sorted(self.packages.items()):
            out[f"packages.{key}"] = value
        return out


class RunHandle:
    """One open (or reloaded) run: its directory, manifest and logger."""

    def __init__(self, store: "RunStore", manifest: RunManifest):
        self.store = store
        self.manifest = manifest
        self.dir = os.path.join(store.root, manifest.run_id)
        self._logger = None

    # ------------------------------------------------------------------
    @property
    def quality_log_path(self) -> str:
        return os.path.join(self.dir, QUALITY_LOG_NAME)

    @property
    def logger(self):
        """Lazily opened :class:`RunLogger` on ``quality.jsonl``."""
        if self._logger is None:
            from ..runtime.telemetry import RunLogger
            self._logger = RunLogger(self.quality_log_path,
                                     self.manifest.command, append=True)
            self.manifest.artifacts.setdefault("quality", QUALITY_LOG_NAME)
        return self._logger

    def log_manifest_record(self) -> None:
        """Emit the ``run_manifest`` header record into ``quality.jsonl``."""
        m = self.manifest
        self.logger.event(
            "run_manifest", run_id=m.run_id, command=m.command,
            argv=list(m.argv), git_rev=m.git_rev,
            config_hash=m.config_hash, seed=m.seed,
            precision=m.precision, workers=m.workers, grid=m.grid,
            conditions=m.conditions, packages=m.packages or None,
            runs_dir=os.path.abspath(self.store.root))

    # ------------------------------------------------------------------
    def add_artifact(self, name: str, path: str) -> str:
        """Link an artifact into the manifest.

        Paths inside the run directory are stored relative to it so the
        store stays relocatable; outside paths are stored absolute.
        """
        absolute = os.path.abspath(path)
        run_dir = os.path.abspath(self.dir)
        if absolute.startswith(run_dir + os.sep):
            stored = os.path.relpath(absolute, run_dir)
        else:
            stored = absolute
        self.manifest.artifacts[name] = stored
        return stored

    def import_file(self, name: str, path: str,
                    filename: Optional[str] = None) -> str:
        """Copy a file into the run directory and link it."""
        filename = filename or os.path.basename(path)
        destination = os.path.join(self.dir, filename)
        shutil.copyfile(path, destination)
        return self.add_artifact(name, destination)

    def artifact_path(self, name: str) -> Optional[str]:
        stored = self.manifest.artifacts.get(name)
        if stored is None:
            return None
        if os.path.isabs(stored):
            return stored
        return os.path.join(self.dir, stored)

    def save_table2(self, result) -> str:
        """Persist a :class:`~repro.bench.harness.Table2Result` losslessly."""
        path = os.path.join(self.dir, TABLE2_NAME)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return self.add_artifact("table2", path)

    # ------------------------------------------------------------------
    def write_manifest(self) -> str:
        from ..runtime.telemetry import sanitize
        path = os.path.join(self.dir, MANIFEST_NAME)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            # Commands write metrics into manifest.summary directly;
            # sanitize at write time so non-finite floats become their
            # strict-JSON string encoding instead of blowing up here.
            json.dump(sanitize(self.manifest.to_dict()), fh, indent=2,
                      sort_keys=True, allow_nan=False)
            fh.write("\n")
        os.replace(tmp, path)
        return path

    def finish(self, status: str = "complete",
               summary: Optional[Dict] = None) -> str:
        """Stamp the end time/status/summary and close the logger."""
        self.manifest.finished = utc_iso()
        self.manifest.status = status
        if summary:
            from ..runtime.telemetry import sanitize
            self.manifest.summary.update(sanitize(summary))
        if self._logger is not None:
            self._logger.close()
        return self.write_manifest()


class RunStore:
    """Directory of run manifests, one subdirectory per run."""

    def __init__(self, root: Optional[str] = None):
        self.root = root or os.environ.get("REPRO_RUNS_DIR", DEFAULT_ROOT)

    # ------------------------------------------------------------------
    def create(self, command: str, argv: Optional[List[str]] = None,
               litho=None, conditions=None, seed: Optional[int] = None,
               precision: Optional[str] = None,
               workers: Optional[int] = None,
               params: Optional[Dict] = None) -> RunHandle:
        """Open a new run and write its initial manifest.

        ``litho`` is a :class:`~repro.litho.config.LithoConfig` (hashed
        with the kernel cache's :func:`~repro.litho.kernels.config_hash`
        so a run links directly to its kernel archive); ``conditions``
        a :class:`~repro.litho.conditions.ConditionSet` or ``None``.
        """
        litho_dict: Dict = {}
        config_hash = None
        grid = None
        if litho is not None:
            from ..litho.kernels import config_hash as litho_hash
            litho_dict = json.loads(json.dumps(asdict(litho), default=repr))
            config_hash = litho_hash(litho)
            grid = int(litho.grid)
        started_ts = time.time()
        identity = json.dumps(
            {"command": command, "argv": list(argv or []),
             "config_hash": config_hash, "seed": seed,
             "precision": precision, "workers": workers,
             "started": started_ts, "pid": os.getpid()},
            sort_keys=True)
        digest = hashlib.sha256(identity.encode()).hexdigest()[:8]
        run_id = (time.strftime("%Y%m%dT%H%M%S", time.gmtime(started_ts))
                  + f"-{command}-{digest}")
        manifest = RunManifest(
            run_id=run_id, command=command, argv=list(argv or []),
            started=utc_iso(started_ts), git_rev=git_revision(),
            config_hash=config_hash, litho=litho_dict,
            conditions=(conditions.describe()
                        if conditions is not None else None),
            seed=seed, precision=precision, workers=workers, grid=grid,
            packages=package_versions(), params=dict(params or {}))
        handle = RunHandle(self, manifest)
        os.makedirs(handle.dir, exist_ok=True)
        handle.write_manifest()
        return handle

    # ------------------------------------------------------------------
    def run_ids(self) -> List[str]:
        if not os.path.isdir(self.root):
            return []
        return sorted(
            name for name in os.listdir(self.root)
            if os.path.isfile(os.path.join(self.root, name, MANIFEST_NAME)))

    def load(self, run_id: str) -> RunHandle:
        path = os.path.join(self.root, run_id, MANIFEST_NAME)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except FileNotFoundError:
            raise RunStoreError(
                f"no run {run_id!r} in {self.root!r}") from None
        except json.JSONDecodeError as exc:
            raise RunStoreError(f"corrupt manifest {path}: {exc}") from exc
        manifest = RunManifest.from_dict(data)
        manifest.run_id = run_id
        return RunHandle(self, manifest)

    def resolve(self, token: str) -> RunHandle:
        """Resolve a run by exact id, unique prefix/substring or
        ``"latest"`` (run ids sort chronologically)."""
        ids = self.run_ids()
        if not ids:
            raise RunStoreError(f"run store {self.root!r} is empty")
        if token in ("latest", "last", "@"):
            return self.load(ids[-1])
        if token in ids:
            return self.load(token)
        matches = [rid for rid in ids if rid.startswith(token)] \
            or [rid for rid in ids if token in rid]
        if len(matches) == 1:
            return self.load(matches[0])
        if not matches:
            raise RunStoreError(
                f"no run matches {token!r} in {self.root!r} "
                f"(have: {', '.join(ids[-5:])})")
        raise RunStoreError(
            f"{token!r} is ambiguous: {', '.join(matches)}")

    def runs(self) -> List[RunManifest]:
        return [self.load(rid).manifest for rid in self.run_ids()]
