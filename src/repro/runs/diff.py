"""Run-to-run comparison: config deltas + quality metric deltas.

``repro runs diff A B`` renders three sections:

* **config** — every manifest field that differs (command, git rev,
  litho config hash, corners, seed, precision, workers, CLI params,
  package versions);
* **quality** — per-clip and aggregate L2/PVB/EPE (and window metric)
  deltas per method, from each run's ``clip_result`` records;
* **engine** — litho-engine counter and throughput deltas from the
  summary each run's manifest recorded at finish.

Deltas are signed B−A with a relative ratio, so "did PR N make masks
worse" reads directly off the table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .quality import RunQuality
from .store import RunManifest


@dataclass
class RunDiff:
    """Structured comparison of two runs (B relative to A)."""

    a_id: str
    b_id: str
    config: List[Tuple[str, object, object]] = field(default_factory=list)
    #: {method: {clip: {metric: (a, b)}}}
    clips: Dict[str, Dict[str, Dict[str, Tuple[float, float]]]] = \
        field(default_factory=dict)
    #: {method: {metric: (a, b)}}
    aggregates: Dict[str, Dict[str, Tuple[float, float]]] = \
        field(default_factory=dict)
    #: {counter: (a, b)}
    engine: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    @property
    def has_quality(self) -> bool:
        return bool(self.aggregates)


def diff_runs(manifest_a: RunManifest, quality_a: RunQuality,
              manifest_b: RunManifest, quality_b: RunQuality) -> RunDiff:
    """Compute the structured diff of two runs."""
    diff = RunDiff(a_id=manifest_a.run_id, b_id=manifest_b.run_id)

    fields_a = manifest_a.config_fields()
    fields_b = manifest_b.config_fields()
    for key in sorted(set(fields_a) | set(fields_b)):
        value_a = fields_a.get(key)
        value_b = fields_b.get(key)
        if value_a != value_b:
            diff.config.append((key, value_a, value_b))

    agg_a = quality_a.aggregates()
    agg_b = quality_b.aggregates()
    for method in sorted(set(agg_a) & set(agg_b)):
        metrics = {}
        for key in sorted(set(agg_a[method]) & set(agg_b[method])):
            metrics[key] = (agg_a[method][key], agg_b[method][key])
        if metrics:
            diff.aggregates[method] = metrics
        per_clip: Dict[str, Dict[str, Tuple[float, float]]] = {}
        clips_a = quality_a.clip_results.get(method, {})
        clips_b = quality_b.clip_results.get(method, {})
        for clip in sorted(set(clips_a) & set(clips_b)):
            shared = {
                key: (clips_a[clip][key], clips_b[clip][key])
                for key in sorted(set(clips_a[clip]) & set(clips_b[clip]))
                if isinstance(clips_a[clip][key], (int, float))
                and isinstance(clips_b[clip][key], (int, float))
            }
            if shared:
                per_clip[clip] = shared
        if per_clip:
            diff.clips[method] = per_clip

    litho_a = (manifest_a.summary or {}).get("litho", {})
    litho_b = (manifest_b.summary or {}).get("litho", {})
    for counter in sorted(set(litho_a) & set(litho_b)):
        value_a, value_b = litho_a[counter], litho_b[counter]
        if isinstance(value_a, (int, float)) \
                and isinstance(value_b, (int, float)):
            diff.engine[counter] = (float(value_a), float(value_b))
    return diff


# ----------------------------------------------------------------------
# formatting
# ----------------------------------------------------------------------
def _ratio(a: float, b: float) -> str:
    if not (isinstance(a, (int, float)) and isinstance(b, (int, float))):
        return ""
    if not (math.isfinite(a) and math.isfinite(b)) or a == 0:
        return ""
    return f"{b / a:7.3f}x"


def _delta_line(label: str, a: float, b: float, width: int = 28) -> str:
    return (f"  {label:<{width}} {a:>14.1f} -> {b:>14.1f}  "
            f"{b - a:>+14.1f}  {_ratio(a, b):>9}")


def format_run_diff(diff: RunDiff,
                    metrics: Optional[List[str]] = None,
                    show_clips: bool = True) -> str:
    """Human-readable diff for ``repro runs diff``."""
    lines = [f"runs diff: A={diff.a_id}  B={diff.b_id}"]

    lines.append("")
    lines.append("config deltas:")
    if diff.config:
        for key, value_a, value_b in diff.config:
            lines.append(f"  {key:<24} {value_a!r:>24} -> {value_b!r}")
    else:
        lines.append("  (identical configuration)")

    if diff.has_quality:
        lines.append("")
        lines.append(f"{'aggregate quality (mean over clips)':<30} "
                     f"{'A':>14}    {'B':>14}  {'delta B-A':>14}  "
                     f"{'ratio':>9}")
        for method, entries in diff.aggregates.items():
            lines.append(f"{method}:")
            for key, (a, b) in entries.items():
                if metrics and key not in metrics:
                    continue
                lines.append(_delta_line(key, a, b))
        if show_clips and diff.clips:
            lines.append("")
            lines.append("per-clip deltas (l2_nm2):")
            for method, per_clip in diff.clips.items():
                for clip, entries in per_clip.items():
                    if "l2_nm2" not in entries:
                        continue
                    a, b = entries["l2_nm2"]
                    lines.append(
                        _delta_line(f"{method}/{clip}", a, b, width=28))
    else:
        lines.append("")
        lines.append("quality: no overlapping clip_result records "
                     "(one run carried no quality telemetry?)")

    if diff.engine:
        lines.append("")
        lines.append("litho engine counters:")
        for counter, (a, b) in diff.engine.items():
            lines.append(_delta_line(counter, a, b))
    return "\n".join(lines)
