"""Run ledger: per-run manifests, quality telemetry views, diffs, reports.

``repro.runs`` is the observability substrate added for the quality
observatory: every CLI experiment opens a run in a
:class:`~repro.runs.store.RunStore`, streams schema-validated quality
telemetry into it, and the ``repro runs``/``repro report`` commands
read it back — listing runs, diffing configuration + per-clip metrics
between two runs, and rendering a self-contained HTML report.
"""

from .diff import RunDiff, diff_runs, format_run_diff
from .quality import (
    CLIP_METRIC_KEYS,
    GATE_METRICS,
    QUALITY_SCHEMA_VERSION,
    QualityRecordError,
    RunQuality,
    clip_metrics,
    load_quality_record,
    quality_record_from_run,
    quality_record_from_table2,
    run_quality,
    write_quality_record,
)
from .report import render_report, write_report
from .store import (
    DEFAULT_ROOT,
    MANIFEST_NAME,
    QUALITY_LOG_NAME,
    TABLE2_NAME,
    RunHandle,
    RunManifest,
    RunStore,
    RunStoreError,
    git_revision,
    package_versions,
    utc_iso,
)

__all__ = [
    "CLIP_METRIC_KEYS",
    "DEFAULT_ROOT",
    "GATE_METRICS",
    "MANIFEST_NAME",
    "QUALITY_LOG_NAME",
    "QUALITY_SCHEMA_VERSION",
    "QualityRecordError",
    "RunDiff",
    "RunHandle",
    "RunManifest",
    "RunQuality",
    "RunStore",
    "RunStoreError",
    "TABLE2_NAME",
    "clip_metrics",
    "diff_runs",
    "format_run_diff",
    "git_revision",
    "load_quality_record",
    "package_versions",
    "quality_record_from_run",
    "quality_record_from_table2",
    "render_report",
    "run_quality",
    "utc_iso",
    "write_report",
]
