"""Reverse-mode automatic differentiation on numpy arrays.

This module provides the :class:`Tensor` class, the foundation of the
``repro.nn`` neural-network substrate.  A ``Tensor`` wraps a numpy
``ndarray`` and records the operations applied to it in a dynamic
computation graph; calling :meth:`Tensor.backward` traverses the graph in
reverse topological order and accumulates gradients into every tensor
created with ``requires_grad=True``.

The design intentionally mirrors the small, explicit core of frameworks
like PyTorch so the GAN-OPC training loops (Algorithms 1 and 2 of the
paper) read exactly like their pseudo-code:

>>> from repro.nn import Tensor
>>> w = Tensor([[2.0]], requires_grad=True)
>>> x = Tensor([[3.0]])
>>> loss = (w * x).sum()
>>> loss.backward()
>>> float(w.grad[0, 0])
3.0

Only float64/float32 tensors participate in gradients; gradients are kept
as plain numpy arrays in :attr:`Tensor.grad`.
"""

from __future__ import annotations

import contextlib
import time
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs import profiler as _profiler
from repro.obs.profiler import matmul_flops

ArrayLike = Union[np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction.

    Used in inference paths (e.g. the GAN-OPC mask generation stage of
    Figure 6) where gradients are not needed, to save memory and time.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return _GRAD_ENABLED


def _as_array(data: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(data, np.ndarray):
        array = data
    else:
        array = np.asarray(data)
    if dtype is not None:
        array = array.astype(dtype, copy=False)
    elif array.dtype not in (np.float32, np.float64):
        array = array.astype(np.float64)
    return array


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    When a forward op broadcast a small tensor up to a larger shape, the
    corresponding backward pass must sum the incoming gradient over the
    broadcast axes so the gradient matches the original tensor's shape.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autograd.

    Parameters
    ----------
    data:
        Array contents; anything ``np.asarray`` accepts.
    requires_grad:
        If true, gradients flowing into this tensor during
        :meth:`backward` are accumulated into :attr:`grad`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 dtype=None, name: Optional[str] = None):
        self.data = _as_array(data, dtype)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Tuple["Tensor", ...],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create a graph node from ``data`` with the given backward."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            # Parents are kept in order: backward closures return one
            # gradient per parent positionally.
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        # Gradients are retained on leaves only (parameters, inputs with
        # requires_grad=True), mirroring the PyTorch convention and keeping
        # memory bounded on deep conv stacks.
        if not self.requires_grad or self._backward is not None:
            return
        if self.grad is None:
            self.grad = np.array(grad, copy=True)
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ones (only valid, as usual, for scalars — a
            deliberate guard against silently wrong vector objectives).
        """
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient is only "
                    "supported for scalar tensors; got shape "
                    f"{self.data.shape}")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor "
                    f"shape {self.data.shape}")

        # Topological order via iterative DFS (recursion would overflow on
        # deep conv stacks).
        order = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads = {id(self): grad}
        self._accumulate(grad)
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None or node._backward is None:
                continue
            parent_grads = node._backward(node_grad)
            if parent_grads is None:
                continue
            if not isinstance(parent_grads, tuple):
                parent_grads = (parent_grads,)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None:
                    continue
                parent._accumulate(pgrad)
                if parent._backward is not None:
                    if id(parent) in grads:
                        grads[id(parent)] = grads[id(parent)] + pgrad
                    else:
                        grads[id(parent)] = pgrad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: ArrayLike) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        # Scalars adopt this tensor's dtype: a bare python float wrapped
        # via np.asarray becomes a float64 0-d array, which under NEP 50
        # promotion would silently drag a float32 graph up to double.
        # (For float64 tensors this cast is the identity, so the f64
        # path stays bit-exact.)
        if np.isscalar(other):
            return Tensor(np.asarray(other, dtype=self.data.dtype))
        return Tensor(other)

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(grad):
            return (_unbroadcast(grad, a.shape), _unbroadcast(grad, b.shape))

        return Tensor._make(a.data + b.data, (a, b), backward)

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(grad):
            return (_unbroadcast(grad, a.shape), _unbroadcast(-grad, b.shape))

        return Tensor._make(a.data - b.data, (a, b), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(grad):
            return (_unbroadcast(grad * b.data, a.shape),
                    _unbroadcast(grad * a.data, b.shape))

        return Tensor._make(a.data * b.data, (a, b), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(grad):
            return (_unbroadcast(grad / b.data, a.shape),
                    _unbroadcast(-grad * a.data / (b.data ** 2), b.shape))

        return Tensor._make(a.data / b.data, (a, b), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        a = self

        def backward(grad):
            return (-grad,)

        return Tensor._make(-a.data, (a,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        a = self
        exponent = float(exponent)

        def backward(grad):
            return (grad * exponent * np.power(a.data, exponent - 1.0),)

        return Tensor._make(np.power(a.data, exponent), (a,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(grad):
            if a.data.ndim == 2 and b.data.ndim == 2:
                return (grad @ b.data.T, a.data.T @ grad)
            # Batched matmul: contract over the last two axes, sum the rest.
            ga = grad @ np.swapaxes(b.data, -1, -2)
            gb = np.swapaxes(a.data, -1, -2) @ grad
            return (_unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape))

        prof = _profiler.ACTIVE
        started = time.perf_counter() if prof is not None else 0.0
        out_data = a.data @ b.data
        if prof is not None:
            prof.record("matmul", time.perf_counter() - started,
                        flops=matmul_flops(a.data.shape, b.data.shape),
                        nbytes=out_data.nbytes)
            backward = prof.wrap_backward("matmul", backward)
        return Tensor._make(out_data, (a, b), backward)

    # ------------------------------------------------------------------
    # Comparisons (non-differentiable, return plain arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    def __ge__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data >= other

    def __le__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data <= other

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        original = a.data.shape

        def backward(grad):
            return (grad.reshape(original),)

        return Tensor._make(a.data.reshape(shape), (a,), backward)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        lead = self.data.shape[:start_dim]
        return self.reshape(lead + (-1,))

    def transpose(self, *axes) -> "Tensor":
        a = self
        if not axes:
            axes = tuple(reversed(range(a.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def backward(grad):
            return (grad.transpose(inverse),)

        return Tensor._make(a.data.transpose(axes), (a,), backward)

    def __getitem__(self, index) -> "Tensor":
        a = self

        def backward(grad):
            full = np.zeros_like(a.data)
            np.add.at(full, index, grad)
            return (full,)

        return Tensor._make(a.data[index], (a,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self

        def backward(grad):
            if axis is None:
                return (np.broadcast_to(grad, a.data.shape).copy(),)
            g = grad
            if not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, a.data.shape).copy(),)

        return Tensor._make(a.data.sum(axis=axis, keepdims=keepdims), (a,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[ax] for ax in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        out_data = a.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            if axis is None:
                mask = (a.data == out_data)
                g = grad * mask / mask.sum()
                return (np.broadcast_to(g, a.data.shape).copy(),)
            expanded = out_data if keepdims else np.expand_dims(out_data, axis)
            mask = (a.data == expanded)
            g = grad if keepdims else np.expand_dims(grad, axis)
            counts = mask.sum(axis=axis, keepdims=True)
            return ((mask * g / counts),)

        return Tensor._make(out_data, (a,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities (primitives; layers live in modules/)
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        a = self
        out_data = np.exp(a.data)

        def backward(grad):
            return (grad * out_data,)

        return Tensor._make(out_data, (a,), backward)

    def log(self) -> "Tensor":
        a = self

        def backward(grad):
            return (grad / a.data,)

        return Tensor._make(np.log(a.data), (a,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def abs(self) -> "Tensor":
        a = self

        def backward(grad):
            return (grad * np.sign(a.data),)

        return Tensor._make(np.abs(a.data), (a,), backward)

    def sigmoid(self) -> "Tensor":
        a = self
        # Numerically stable: exp of negative magnitudes only.
        out_data = np.where(a.data >= 0,
                            1.0 / (1.0 + np.exp(-np.clip(a.data, 0, None))),
                            np.exp(np.clip(a.data, None, 0))
                            / (1.0 + np.exp(np.clip(a.data, None, 0))))

        def backward(grad):
            return (grad * out_data * (1.0 - out_data),)

        return Tensor._make(out_data, (a,), backward)

    def tanh(self) -> "Tensor":
        a = self
        out_data = np.tanh(a.data)

        def backward(grad):
            return (grad * (1.0 - out_data ** 2),)

        return Tensor._make(out_data, (a,), backward)

    def relu(self) -> "Tensor":
        a = self
        mask = a.data > 0

        def backward(grad):
            return (grad * mask,)

        return Tensor._make(a.data * mask, (a,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        a = self
        mask = a.data > 0
        # Build the slope array in the input dtype (np.where of python
        # floats is float64, which would promote a float32 graph).
        scale = np.where(mask, 1.0, negative_slope).astype(
            a.data.dtype, copy=False)

        def backward(grad):
            return (grad * scale,)

        return Tensor._make(a.data * scale, (a,), backward)

    def clip(self, low: Optional[float], high: Optional[float]) -> "Tensor":
        a = self
        out_data = np.clip(a.data, low, high)
        inside = np.ones_like(a.data, dtype=bool)
        if low is not None:
            inside &= a.data >= low
        if high is not None:
            inside &= a.data <= high

        def backward(grad):
            return (grad * inside,)

        return Tensor._make(out_data, (a,), backward)


# ----------------------------------------------------------------------
# Free-function constructors and graph ops used across the package
# ----------------------------------------------------------------------
def zeros(shape, requires_grad: bool = False, dtype=None) -> Tensor:
    return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False, dtype=None) -> Tensor:
    return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)


def full(shape, value: float, requires_grad: bool = False,
         dtype=None) -> Tensor:
    return Tensor(np.full(shape, float(value), dtype=dtype),
                  requires_grad=requires_grad)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support.

    The GAN-OPC discriminator consumes *pairs* ``(Z_t, M)`` stacked along
    the channel axis (Section 3.2 of the paper); this op makes that pairing
    differentiable with respect to the generated mask.
    """
    tensors = list(tensors)
    arrays = [t.data for t in tensors]
    sizes = [a.shape[axis] for a in arrays]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        slices = []
        for i in range(len(arrays)):
            idx = [slice(None)] * grad.ndim
            idx[axis] = slice(offsets[i], offsets[i + 1])
            slices.append(grad[tuple(idx)])
        return tuple(slices)

    return Tensor._make(np.concatenate(arrays, axis=axis), tuple(tensors), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    expanded = [t.reshape(t.shape[:axis] + (1,) + t.shape[axis:]) for t in tensors]
    return concatenate(expanded, axis=axis)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable selection; ``condition`` is a plain boolean array."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    cond = np.asarray(condition, dtype=bool)

    def backward(grad):
        return (_unbroadcast(grad * cond, a.shape),
                _unbroadcast(grad * (~cond), b.shape))

    return Tensor._make(np.where(cond, a.data, b.data), (a, b), backward)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    take_a = a.data >= b.data

    def backward(grad):
        return (_unbroadcast(grad * take_a, a.shape),
                _unbroadcast(grad * (~take_a), b.shape))

    return Tensor._make(np.maximum(a.data, b.data), (a, b), backward)


def pad2d(x: Tensor, padding: Tuple[int, int]) -> Tensor:
    """Zero-pad the last two (spatial) axes of an NCHW tensor."""
    ph, pw = padding
    if ph == 0 and pw == 0:
        return x
    a = x
    pads = [(0, 0)] * (x.ndim - 2) + [(ph, ph), (pw, pw)]
    out_data = np.pad(a.data, pads)

    def backward(grad):
        idx = (Ellipsis, slice(ph, grad.shape[-2] - ph), slice(pw, grad.shape[-1] - pw))
        return (grad[idx],)

    return Tensor._make(out_data, (a,), backward)
