"""Optimizers and learning-rate schedules for ``repro.nn``.

Algorithm 1 of the paper updates both networks with mini-batch gradient
descent ``W <- W - (lambda/m) * dW``; :class:`SGD` implements exactly
that (plus optional momentum), while :class:`Adam` is provided because
the released GAN-OPC code and most follow-ups (e.g. OpenILT) train with
Adam for stability at small batch sizes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .modules import Parameter


class Optimizer:
    """Base optimizer over a list of :class:`Parameter`."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> Dict:
        return {"lr": self.lr}

    def load_state_dict(self, state: Dict) -> None:
        self.lr = float(state["lr"])

    def to_dtype(self, dtype) -> "Optimizer":
        """Cast any per-parameter optimizer state (momentum/moment
        buffers) to ``dtype`` in place.  The base optimizer keeps no
        such state; subclasses override.  ``nn.to_dtype`` calls this
        for every optimizer it is handed, so a module cast mid-run
        stays dtype-consistent with a freshly built one.
        """
        np.dtype(dtype)  # validate
        return self


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(param.data)
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            param.data = param.data - self.lr * grad

    def state_dict(self) -> Dict:
        return {"lr": self.lr, "momentum": self.momentum,
                "weight_decay": self.weight_decay,
                "velocity": [None if v is None else v.copy() for v in self._velocity]}

    def load_state_dict(self, state: Dict) -> None:
        self.lr = float(state["lr"])
        self.momentum = float(state["momentum"])
        self.weight_decay = float(state["weight_decay"])
        self._velocity = [None if v is None else v.copy() for v in state["velocity"]]

    def to_dtype(self, dtype) -> "SGD":
        dtype = np.dtype(dtype)
        self._velocity = [None if v is None else v.astype(dtype, copy=False)
                          for v in self._velocity]
        return self


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self._m[i] is None:
                self._m[i] = np.zeros_like(param.data)
                self._v[i] = np.zeros_like(param.data)
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad ** 2
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict:
        return {"lr": self.lr, "beta1": self.beta1, "beta2": self.beta2,
                "eps": self.eps, "weight_decay": self.weight_decay,
                "step_count": self._step_count,
                "m": [None if m is None else m.copy() for m in self._m],
                "v": [None if v is None else v.copy() for v in self._v]}

    def load_state_dict(self, state: Dict) -> None:
        self.lr = float(state["lr"])
        self.beta1 = float(state["beta1"])
        self.beta2 = float(state["beta2"])
        self.eps = float(state["eps"])
        self.weight_decay = float(state["weight_decay"])
        self._step_count = int(state["step_count"])
        self._m = [None if m is None else m.copy() for m in state["m"]]
        self._v = [None if v is None else v.copy() for v in state["v"]]

    def to_dtype(self, dtype) -> "Adam":
        dtype = np.dtype(dtype)
        self._m = [None if m is None else m.astype(dtype, copy=False)
                   for m in self._m]
        self._v = [None if v is None else v.astype(dtype, copy=False)
                   for v in self._v]
        return self


def global_grad_norm(parameters: Iterable[Parameter]) -> float:
    """Euclidean norm of all gradients concatenated into one vector.

    Parameters without a gradient are ignored; an empty gradient set
    has norm 0.  The norm is NaN/Inf whenever any gradient entry is,
    which is what the divergence guards key off.
    """
    total = 0.0
    for param in parameters:
        if param.grad is not None:
            grad = param.grad
            total += float(np.dot(grad.ravel(), grad.ravel()))
    return float(np.sqrt(total))


def clip_grad_norm_(parameters: Iterable[Parameter],
                    max_norm: Optional[float] = None) -> float:
    """Scale gradients in place so their global norm is <= ``max_norm``.

    Returns the *pre-clip* global norm.  ``max_norm=None`` only
    measures; a non-finite norm is returned unclipped so callers can
    apply their divergence policy instead of silently zeroing updates.
    """
    params = [p for p in parameters if p.grad is not None]
    norm = global_grad_norm(params)
    if (max_norm is not None and np.isfinite(norm) and norm > max_norm):
        scale = max_norm / (norm + 1e-12)
        for param in params:
            param.grad = param.grad * scale
    return norm


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0
        self._base_lr = optimizer.lr

    def step(self) -> None:
        self._epoch += 1
        decays = self._epoch // self.step_size
        self.optimizer.lr = self._base_lr * (self.gamma ** decays)


class ExponentialLR:
    """Multiply the learning rate by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float):
        self.optimizer = optimizer
        self.gamma = gamma
        self._epoch = 0
        self._base_lr = optimizer.lr

    def step(self) -> None:
        self._epoch += 1
        self.optimizer.lr = self._base_lr * (self.gamma ** self._epoch)
