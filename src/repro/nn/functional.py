"""Neural-network functional operations for the ``repro.nn`` substrate.

Implements the convolutional primitives the GAN-OPC generator (stacked
conv encoder + deconv decoder, Figure 4 of the paper) and discriminator
are built from, plus the pooling / interpolation operations the paper's
resolution bridge uses (8x8 average pooling before the network, linear
interpolation after — Section 4).

Convolutions are computed with im2col/col2im lowering so that both the
forward pass and all three backward products (input, weight, bias) are
single BLAS calls — the only way a pure-numpy CNN trains in reasonable
time.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple, Union

import numpy as np

from repro.backend import ops as _backend_ops
from repro.obs import profiler as _profiler
from repro.obs.profiler import conv2d_flops, conv_transpose2d_flops
from repro.workspace import Workspace

from .tensor import Tensor, is_grad_enabled

IntPair = Union[int, Tuple[int, int]]

#: Module-level scratch arena for the convolution lowering.  Only the
#: *inference* path draws from it: with autograd enabled the forward
#: columns are cached in the backward closure (so the weight gradient
#: never recomputes im2col) and must therefore own their memory, while
#: in eval mode ``Tensor._make`` drops the closure and the columns can
#: safely live in reused scratch.
_WORKSPACE = Workspace()


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, tuple):
        return value
    return (int(value), int(value))


# ----------------------------------------------------------------------
# im2col / col2im
# ----------------------------------------------------------------------
def im2col(x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int],
           padding: Tuple[int, int],
           out: Optional[np.ndarray] = None) -> np.ndarray:
    """Lower image patches to columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel, stride, padding:
        Spatial convolution geometry.
    out:
        Optional preallocated ``(N, C * KH * KW, OH * OW)`` destination
        (e.g. a workspace buffer); the patch gather is written into it
        instead of allocating.

    Returns
    -------
    ndarray of shape ``(N, C * KH * KW, OH * OW)``.

    The implementation lives in :mod:`repro.backend.ops` (shared,
    array-module-generic); this wrapper pins it to host numpy.
    """
    return _backend_ops.im2col(np, x, kernel, stride, padding, out=out)


def col2im(cols: np.ndarray, image_shape: Tuple[int, int, int, int],
           kernel: Tuple[int, int], stride: Tuple[int, int],
           padding: Tuple[int, int]) -> np.ndarray:
    """Scatter-add columns back into an image (adjoint of :func:`im2col`)."""
    return _backend_ops.col2im(np, cols, image_shape, kernel, stride, padding)


# ----------------------------------------------------------------------
# Convolution
# ----------------------------------------------------------------------
def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: IntPair = 1, padding: IntPair = 0) -> Tensor:
    """2-D cross-correlation over NCHW input.

    ``weight`` has shape ``(out_channels, in_channels, KH, KW)``.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    n, c, h, w = x.shape
    f, c_w, kh, kw = weight.shape
    if c != c_w:
        raise ValueError(f"input channels {c} != weight channels {c_w}")

    prof = _profiler.ACTIVE
    started = time.perf_counter() if prof is not None else 0.0
    oh = (h + 2 * padding[0] - kh) // stride[0] + 1
    ow = (w + 2 * padding[1] - kw) // stride[1] + 1
    # With grad enabled the columns are closed over below so the weight
    # gradient reuses them instead of re-running im2col; they must own
    # their memory.  In eval mode the closure is dropped and the gather
    # can target reused workspace scratch.
    scratch = None
    if not is_grad_enabled():
        scratch = _WORKSPACE.get(("conv2d.cols", n, c * kh * kw, oh * ow),
                                 (n, c * kh * kw, oh * ow), x.data.dtype)
    cols = im2col(x.data, (kh, kw), stride, padding, out=scratch)
    w_flat = weight.data.reshape(f, -1)               # (F, C*KH*KW)
    out = w_flat @ cols                               # (N, F, L)
    out = out.reshape(n, f, oh, ow)
    if bias is not None:
        out = out + bias.data.reshape(1, f, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        grad_flat = np.ascontiguousarray(grad.reshape(n, f, -1))  # (N, F, L)
        # Batched GEMMs (einsum here would bypass BLAS): the weight
        # gradient contracts the cached forward columns per sample and
        # sums; the input gradient broadcasts ``w_flat.T`` over the
        # batch before the col2im scatter.
        grad_w = np.matmul(grad_flat, cols.transpose(0, 2, 1)).sum(axis=0)
        grad_cols = np.matmul(w_flat.T, grad_flat)                # (N, K, L)
        grad_x = col2im(grad_cols, (n, c, h, w), (kh, kw), stride, padding)
        grads = [grad_x, grad_w.reshape(weight.shape)]
        if bias is not None:
            grads.append(grad.sum(axis=(0, 2, 3)))
        return tuple(grads)

    if prof is not None:
        prof.record("conv2d", time.perf_counter() - started,
                    flops=conv2d_flops(n, c, f, oh, ow, kh, kw,
                                       bias=bias is not None),
                    nbytes=out.nbytes)
        backward = prof.wrap_backward("conv2d", backward)
    return Tensor._make(out, parents, backward)


def conv_transpose2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
                     stride: IntPair = 1, padding: IntPair = 0,
                     output_padding: IntPair = 0) -> Tensor:
    """2-D transposed convolution (deconvolution).

    ``weight`` has shape ``(in_channels, out_channels, KH, KW)`` following
    the PyTorch convention; the forward pass of this op is the gradient of
    :func:`conv2d` with respect to its input, which is exactly the
    "decoder operates in an opposite way" architecture of the paper's
    generator (Section 3.1).
    """
    stride = _pair(stride)
    padding = _pair(padding)
    output_padding = _pair(output_padding)
    n, c, h, w = x.shape
    c_w, f, kh, kw = weight.shape
    if c != c_w:
        raise ValueError(f"input channels {c} != weight channels {c_w}")
    oh = (h - 1) * stride[0] - 2 * padding[0] + kh + output_padding[0]
    ow = (w - 1) * stride[1] - 2 * padding[1] + kw + output_padding[1]

    prof = _profiler.ACTIVE
    started = time.perf_counter() if prof is not None else 0.0
    w_flat = weight.data.reshape(c, f * kh * kw)               # (C, F*KH*KW)
    x_flat = x.data.reshape(n, c, h * w)                       # (N, C, L)
    scratch = None
    if not is_grad_enabled():
        dtype = np.result_type(w_flat.dtype, x_flat.dtype)
        scratch = _WORKSPACE.get(
            ("deconv2d.cols", n, f * kh * kw, h * w),
            (n, f * kh * kw, h * w), dtype)
    cols = np.matmul(w_flat.T, x_flat, out=scratch)            # (N, F*KH*KW, L)
    out = col2im(cols, (n, f, oh, ow), (kh, kw), stride, padding)
    if bias is not None:
        out = out + bias.data.reshape(1, f, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        grad_cols = im2col(grad, (kh, kw), stride, padding)    # (N, F*KH*KW, L)
        grad_x = np.matmul(w_flat, grad_cols).reshape(n, c, h, w)
        grad_w = np.matmul(x_flat, grad_cols.transpose(0, 2, 1)
                           ).sum(axis=0).reshape(weight.shape)
        grads = [grad_x, grad_w]
        if bias is not None:
            grads.append(grad.sum(axis=(0, 2, 3)))
        return tuple(grads)

    if prof is not None:
        prof.record("deconv2d", time.perf_counter() - started,
                    flops=conv_transpose2d_flops(n, c, h, w, f, kh, kw,
                                                 oh=oh, ow=ow,
                                                 bias=bias is not None),
                    nbytes=out.nbytes)
        backward = prof.wrap_backward("deconv2d", backward)
    return Tensor._make(out, parents, backward)


# ----------------------------------------------------------------------
# Linear
# ----------------------------------------------------------------------
def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with weight ``(out, in)``."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------
def avg_pool2d(x: Tensor, kernel: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    """Average pooling; the paper applies 8x8 average pooling to 2048px
    layout images before feeding the network (Section 4)."""
    kernel = _pair(kernel)
    stride = kernel if stride is None else _pair(stride)
    kh, kw = kernel
    sh, sw = stride
    n, c, h, w = x.shape
    oh = (h - kh) // sh + 1
    ow = (w - kw) // sw + 1

    cols = im2col(x.data, kernel, stride, (0, 0)).reshape(n, c, kh * kw, oh * ow)
    out = cols.mean(axis=2).reshape(n, c, oh, ow)

    def backward(grad):
        grad_cols = np.repeat(grad.reshape(n, c, 1, oh * ow), kh * kw, axis=2)
        grad_cols = (grad_cols / (kh * kw)).reshape(n, c * kh * kw, oh * ow)
        return (col2im(grad_cols, (n, c, h, w), kernel, stride, (0, 0)),)

    return Tensor._make(out, (x,), backward)


def max_pool2d(x: Tensor, kernel: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    kernel = _pair(kernel)
    stride = kernel if stride is None else _pair(stride)
    kh, kw = kernel
    sh, sw = stride
    n, c, h, w = x.shape
    oh = (h - kh) // sh + 1
    ow = (w - kw) // sw + 1

    cols = im2col(x.data, kernel, stride, (0, 0)).reshape(n, c, kh * kw, oh * ow)
    argmax = cols.argmax(axis=2)
    out = np.take_along_axis(cols, argmax[:, :, None, :], axis=2)[:, :, 0, :]
    out = out.reshape(n, c, oh, ow)

    def backward(grad):
        grad_cols = np.zeros((n, c, kh * kw, oh * ow), dtype=grad.dtype)
        np.put_along_axis(grad_cols, argmax[:, :, None, :],
                          grad.reshape(n, c, 1, oh * ow), axis=2)
        grad_cols = grad_cols.reshape(n, c * kh * kw, oh * ow)
        return (col2im(grad_cols, (n, c, h, w), kernel, stride, (0, 0)),)

    return Tensor._make(out, (x,), backward)


def upsample_nearest2d(x: Tensor, scale: int) -> Tensor:
    """Nearest-neighbour upsampling by an integer factor."""
    scale = int(scale)
    a = x
    out = a.data.repeat(scale, axis=-2).repeat(scale, axis=-1)
    n, c, h, w = a.shape

    def backward(grad):
        g = grad.reshape(n, c, h, scale, w, scale).sum(axis=(3, 5))
        return (g,)

    return Tensor._make(out, (a,), backward)


# ----------------------------------------------------------------------
# Normalization
# ----------------------------------------------------------------------
def batch_norm(x: Tensor, gamma: Tensor, beta: Tensor,
               running_mean: np.ndarray, running_var: np.ndarray,
               training: bool, momentum: float = 0.1,
               eps: float = 1e-5) -> Tensor:
    """Batch normalization over the channel axis of NCHW (or NC) input.

    ``running_mean`` / ``running_var`` are plain arrays updated in place
    during training, used directly in eval mode.
    """
    if x.ndim == 4:
        axes = (0, 2, 3)
        shape = (1, -1, 1, 1)
        count = x.shape[0] * x.shape[2] * x.shape[3]
    elif x.ndim == 2:
        axes = (0,)
        shape = (1, -1)
        count = x.shape[0]
    else:
        raise ValueError(f"batch_norm expects 2D or 4D input, got {x.ndim}D")

    if training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        running_mean *= (1.0 - momentum)
        running_mean += momentum * mean
        unbiased = var * count / max(count - 1, 1)
        running_var *= (1.0 - momentum)
        running_var += momentum * unbiased
    else:
        mean = running_mean
        var = running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean.reshape(shape)) * inv_std.reshape(shape)
    out = gamma.data.reshape(shape) * x_hat + beta.data.reshape(shape)

    def backward(grad):
        g = gamma.data.reshape(shape)
        grad_gamma = (grad * x_hat).sum(axis=axes)
        grad_beta = grad.sum(axis=axes)
        if training:
            # Full batch-norm backward through the batch statistics.
            gx_hat = grad * g
            grad_x = (gx_hat
                      - gx_hat.mean(axis=axes, keepdims=True)
                      - x_hat * (gx_hat * x_hat).mean(axis=axes, keepdims=True)
                      ) * inv_std.reshape(shape)
        else:
            grad_x = grad * g * inv_std.reshape(shape)
        return (grad_x, grad_gamma, grad_beta)

    return Tensor._make(out, (x, gamma, beta), backward)


# ----------------------------------------------------------------------
# Losses
# ----------------------------------------------------------------------
def mse_loss(prediction: Tensor, target: Tensor, reduction: str = "mean") -> Tensor:
    """Squared error; with ``reduction='sum'`` this is exactly the paper's
    squared L2 metric (Definition 1)."""
    diff = prediction - (target if isinstance(target, Tensor) else Tensor(target))
    squared = diff * diff
    if reduction == "mean":
        return squared.mean()
    if reduction == "sum":
        return squared.sum()
    if reduction == "none":
        return squared
    raise ValueError(f"unknown reduction {reduction!r}")


def l1_loss(prediction: Tensor, target: Tensor, reduction: str = "mean") -> Tensor:
    diff = (prediction - (target if isinstance(target, Tensor) else Tensor(target))).abs()
    if reduction == "mean":
        return diff.mean()
    if reduction == "sum":
        return diff.sum()
    if reduction == "none":
        return diff
    raise ValueError(f"unknown reduction {reduction!r}")


def bce_loss(probability: Tensor, target: Tensor, eps: float = 1e-7,
             reduction: str = "mean") -> Tensor:
    """Binary cross-entropy on probabilities (post-sigmoid).

    The GAN objectives (Eqs. 7-8) are log-likelihood terms of exactly this
    form; ``eps`` clamping keeps ``log`` finite when the discriminator
    saturates early in training.
    """
    target = target if isinstance(target, Tensor) else Tensor(target)
    p = probability.clip(eps, 1.0 - eps)
    loss = -(target * p.log() + (1.0 - target) * (1.0 - p).log())
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    if reduction == "none":
        return loss
    raise ValueError(f"unknown reduction {reduction!r}")


def bce_with_logits(logits: Tensor, target: Tensor, reduction: str = "mean") -> Tensor:
    """Numerically stable BCE on raw logits:
    ``max(z, 0) - z * t + log(1 + exp(-|z|))``."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    z = logits
    relu_z = z.relu()
    abs_z = z.abs()
    loss = relu_z - z * target + ((-abs_z).exp() + 1.0).log()
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    if reduction == "none":
        return loss
    raise ValueError(f"unknown reduction {reduction!r}")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)
