"""``repro.nn`` — a from-scratch neural-network substrate on numpy.

The paper implements GAN-OPC on TensorFlow + GPU; this environment has
neither, so the framework itself is reproduced: reverse-mode autograd
(:mod:`repro.nn.tensor`), convolutional primitives
(:mod:`repro.nn.functional`), a module/layer system
(:mod:`repro.nn.modules`), optimizers (:mod:`repro.nn.optim`) and
checkpointing (:mod:`repro.nn.serialization`).

Quick example::

    import numpy as np
    from repro import nn

    net = nn.Sequential(
        nn.Conv2d(1, 4, 3, padding=1), nn.ReLU(),
        nn.Conv2d(4, 1, 3, padding=1), nn.Sigmoid(),
    )
    opt = nn.Adam(net.parameters(), lr=1e-3)
    x = nn.Tensor(np.random.rand(2, 1, 16, 16))
    loss = nn.functional.mse_loss(net(x), x)
    loss.backward()
    opt.step()
"""

from . import functional
from . import init
from . import utils
from .functional import (avg_pool2d, bce_loss, bce_with_logits, conv2d,
                         conv_transpose2d, l1_loss, linear, max_pool2d,
                         mse_loss, softmax, upsample_nearest2d)
from .modules import (AvgPool2d, BatchNorm1d, BatchNorm2d, Conv2d,
                      ConvTranspose2d, Dropout, Flatten, LeakyReLU, Linear,
                      MaxPool2d, Module, Parameter, ReLU, Sequential,
                      Sigmoid, Tanh, UpsampleNearest2d)
from .optim import (SGD, Adam, ExponentialLR, Optimizer, StepLR,
                    clip_grad_norm_, global_grad_norm)
from .serialization import CheckpointLoadError, load_state, save_state
from .tensor import (Tensor, concatenate, full, is_grad_enabled, maximum,
                     no_grad, ones, pad2d, stack, where, zeros)
from .utils import compute_dtype, to_dtype

__all__ = [
    "Tensor", "no_grad", "is_grad_enabled",
    "zeros", "ones", "full", "concatenate", "stack", "where", "maximum",
    "pad2d",
    "functional", "init", "utils",
    "conv2d", "conv_transpose2d", "linear", "avg_pool2d", "max_pool2d",
    "upsample_nearest2d", "mse_loss", "l1_loss", "bce_loss",
    "bce_with_logits", "softmax",
    "Module", "Parameter", "Sequential", "Linear", "Conv2d",
    "ConvTranspose2d", "BatchNorm1d", "BatchNorm2d", "ReLU", "LeakyReLU",
    "Sigmoid", "Tanh", "Flatten", "AvgPool2d", "MaxPool2d",
    "UpsampleNearest2d", "Dropout",
    "Optimizer", "SGD", "Adam", "StepLR", "ExponentialLR",
    "clip_grad_norm_", "global_grad_norm",
    "save_state", "load_state", "CheckpointLoadError",
    "to_dtype", "compute_dtype",
]
