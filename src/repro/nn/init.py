"""Weight initialization schemes for ``repro.nn`` modules.

Provides the standard fan-based initializers.  The GAN-OPC generator and
discriminator use Kaiming initialization for ReLU-family stacks and
Xavier for the sigmoid output layers, matching common DCGAN-era practice
(the paper predates careful init ablations and reports none, so we follow
the defaults of its TensorFlow version).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in / fan-out for linear or convolutional weights."""
    if len(shape) == 2:  # (out, in)
        fan_out, fan_in = shape
    elif len(shape) == 4:  # conv: (out, in, kh, kw) or deconv: (in, out, kh, kw)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        size = int(np.prod(shape))
        fan_in = fan_out = size
    return fan_in, fan_out


def xavier_uniform(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = gain * sqrt(6 / (fi + fo))."""
    fan_in, fan_out = _fan_in_out(tuple(shape))
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fan_in_out(tuple(shape))
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape, rng: np.random.Generator, a: float = 0.0) -> np.ndarray:
    """He uniform for (leaky-)ReLU nonlinearities."""
    fan_in, _ = _fan_in_out(tuple(shape))
    gain = np.sqrt(2.0 / (1.0 + a ** 2))
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape, rng: np.random.Generator, a: float = 0.0) -> np.ndarray:
    fan_in, _ = _fan_in_out(tuple(shape))
    gain = np.sqrt(2.0 / (1.0 + a ** 2))
    std = gain / np.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape)


def uniform_bias(shape, rng: np.random.Generator, fan_in: int) -> np.ndarray:
    """PyTorch-style bias init: U(-1/sqrt(fan_in), 1/sqrt(fan_in))."""
    bound = 1.0 / np.sqrt(max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape)
