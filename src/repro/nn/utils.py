"""Training utilities: gradient clipping and parameter inspection.

GAN training at small batch sizes occasionally produces gradient
spikes (the discriminator saturating); global-norm clipping is the
standard remedy and is exposed to the trainers via
``GanOpcConfig``-level hooks or manual calls between ``backward`` and
``step``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .modules import Module, Parameter


def global_grad_norm(parameters: Iterable[Parameter]) -> float:
    """L2 norm over all parameters' gradients (missing grads count 0)."""
    total = 0.0
    for param in parameters:
        if param.grad is not None:
            total += float(np.sum(param.grad ** 2))
    return float(np.sqrt(total))


def clip_grad_norm(parameters: Iterable[Parameter],
                   max_norm: float) -> float:
    """Scale gradients in place so their global norm is <= ``max_norm``.

    Returns the pre-clipping norm (useful for logging).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    parameters = list(parameters)
    norm = global_grad_norm(parameters)
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for param in parameters:
            if param.grad is not None:
                param.grad = param.grad * scale
    return norm


def clip_grad_value(parameters: Iterable[Parameter], limit: float) -> None:
    """Clamp every gradient element to ``[-limit, limit]`` in place."""
    if limit <= 0:
        raise ValueError(f"limit must be positive, got {limit}")
    for param in parameters:
        if param.grad is not None:
            np.clip(param.grad, -limit, limit, out=param.grad)


def to_dtype(module: Module, dtype, optimizers=()) -> Module:
    """Cast every parameter, gradient and buffer of ``module`` (and its
    submodules) to ``dtype``, in place.  Returns the module.

    This is the nn half of the engine's precision mode: casting the
    generator to ``float32`` makes every conv/deconv GEMM run in
    single precision, matching an f32 :class:`~repro.litho.LithoEngine`
    end to end.

    ``optimizers`` takes any optimizers already bound to the module's
    parameters; their per-parameter state (SGD velocity, Adam moments)
    is cast alongside via ``Optimizer.to_dtype``.  Without this, a
    module cast after its optimizer has stepped would keep f64 moment
    buffers, and every subsequent update would silently promote the
    arithmetic back to double — the resumed-vs-fresh dtype
    inconsistency the checkpoint round-trip tests pin down.
    """
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"to_dtype supports float32/float64, got {dtype}")
    for sub in module.modules():
        for name, param in sub._parameters.items():
            param.data = param.data.astype(dtype, copy=False)
            if param.grad is not None:
                param.grad = param.grad.astype(dtype, copy=False)
        for name, buf in list(sub._buffers.items()):
            # re-register so both the dict entry and the instance
            # attribute point at the cast array
            sub.register_buffer(name, buf.astype(dtype, copy=False))
    for optimizer in optimizers:
        optimizer.to_dtype(dtype)
    return module


def compute_dtype(module: Module) -> np.dtype:
    """The dtype a module computes in — the dtype of its first
    parameter (all parameters share one dtype after ``to_dtype``).

    Trainers use this to cast incoming target/label batches before
    wrapping them in :class:`~repro.nn.Tensor`: feeding float64 data
    into a float32 network silently promotes every GEMM back to double
    (numpy's ``result_type`` rules), which defeats the precision mode.
    A parameter-less module computes in float64.
    """
    for param in module.parameters():
        return np.dtype(param.data.dtype)
    return np.dtype(np.float64)


def parameter_summary(module: Module) -> str:
    """Human-readable table of a module's parameters (name, shape,
    count), ending with the total — handy in examples and docs."""
    lines = [f"{'parameter':40s} {'shape':>18s} {'count':>10s}"]
    total = 0
    for name, param in module.named_parameters():
        count = param.size
        total += count
        lines.append(f"{name:40s} {str(param.shape):>18s} {count:>10d}")
    lines.append(f"{'total':40s} {'':>18s} {total:>10d}")
    return "\n".join(lines)
