"""Layer/module system for the ``repro.nn`` substrate.

A minimal but complete ``Module`` hierarchy in the PyTorch idiom: modules
own :class:`Parameter` leaves and child modules, expose ``parameters()``
iteration for optimizers, ``state_dict``/``load_state_dict`` for
checkpointing, and ``train()``/``eval()`` mode switching (batch-norm
depends on it).

The GAN-OPC networks (``repro.core.generator`` / ``discriminator``) are
compositions of the layers defined here.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.obs import profiler as _profiler

from . import functional as F
from . import init
from .tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as a trainable leaf of a module."""

    def __init__(self, data, name: Optional[str] = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules."""

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # -- attribute magic: registering on assignment --------------------
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, array: np.ndarray) -> None:
        """Register non-trainable state (e.g. batch-norm running stats)."""
        self._buffers[name] = array
        object.__setattr__(self, name, array)

    # -- traversal ------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix + mod_name + ".")

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix + mod_name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        """Total scalar parameter count (for reporting model size)."""
        return sum(p.size for p in self.parameters())

    # -- modes ----------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    # -- checkpointing ----------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        state.update({name: b.copy() for name, b in self.named_buffers()})
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        missing = (set(own_params) | set(own_buffers)) - set(state)
        unexpected = set(state) - (set(own_params) | set(own_buffers))
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}")
        for name, param in own_params.items():
            if param.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: module {param.data.shape} "
                    f"vs state {state[name].shape}")
            param.data = state[name].astype(param.data.dtype, copy=True)
        for name, buf in own_buffers.items():
            buf[...] = state[name]

    # -- call protocol ----------------------------------------------------
    def forward(self, *args, **kwargs) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        prof = _profiler.ACTIVE
        if prof is None:
            return self.forward(*args, **kwargs)
        name = type(self).__name__
        prof.begin_module(name)
        try:
            return self.forward(*args, **kwargs)
        finally:
            prof.end_module(name)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers: List[Module] = []
        for index, layer in enumerate(layers):
            self._modules[str(index)] = layer
            self.layers.append(layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self):
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]


# ----------------------------------------------------------------------
# Core layers
# ----------------------------------------------------------------------
class Linear(Module):
    """Affine layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng,
                                                     a=np.sqrt(5.0)))
        if bias:
            self.bias = Parameter(init.uniform_bias((out_features,), rng, in_features))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class Conv2d(Module):
    """2-D convolution layer over NCHW tensors."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: F.IntPair,
                 stride: F.IntPair = 1, padding: F.IntPair = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        kh, kw = F._pair(kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = F._pair(stride)
        self.padding = F._pair(padding)
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, kh, kw), rng,
                                 a=np.sqrt(5.0)))
        if bias:
            self.bias = Parameter(
                init.uniform_bias((out_channels,), rng, in_channels * kh * kw))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, self.stride, self.padding)


class ConvTranspose2d(Module):
    """2-D transposed convolution (the decoder half of the generator)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: F.IntPair,
                 stride: F.IntPair = 1, padding: F.IntPair = 0,
                 output_padding: F.IntPair = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        kh, kw = F._pair(kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = F._pair(stride)
        self.padding = F._pair(padding)
        self.output_padding = F._pair(output_padding)
        self.weight = Parameter(
            init.kaiming_uniform((in_channels, out_channels, kh, kw), rng,
                                 a=np.sqrt(5.0)))
        if bias:
            self.bias = Parameter(
                init.uniform_bias((out_channels,), rng, in_channels * kh * kw))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv_transpose2d(x, self.weight, self.bias, self.stride,
                                  self.padding, self.output_padding)


class BatchNorm2d(Module):
    """Batch normalization over channels of NCHW input."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm(x, self.gamma, self.beta, self.running_mean,
                            self.running_var, self.training, self.momentum,
                            self.eps)


class BatchNorm1d(BatchNorm2d):
    """Batch normalization over features of NC input (shares implementation)."""


# ----------------------------------------------------------------------
# Activations / utility layers
# ----------------------------------------------------------------------
class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Flatten(Module):
    def __init__(self, start_dim: int = 1):
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(self.start_dim)


class AvgPool2d(Module):
    def __init__(self, kernel_size: F.IntPair, stride: Optional[F.IntPair] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class MaxPool2d(Module):
    def __init__(self, kernel_size: F.IntPair, stride: Optional[F.IntPair] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class UpsampleNearest2d(Module):
    def __init__(self, scale: int):
        super().__init__()
        self.scale = scale

    def forward(self, x: Tensor) -> Tensor:
        return F.upsample_nearest2d(x, self.scale)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep) / keep
        return x * Tensor(mask)
