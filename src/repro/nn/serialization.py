"""Checkpoint save/load for ``repro.nn`` modules.

State dictionaries are stored as flat ``.npz`` archives, which keeps
checkpoints portable, dependency-free and human-inspectable with
``np.load``.  Used by the training examples to persist generator /
discriminator weights between the pre-training (Algorithm 2) and
adversarial (Algorithm 1) phases.

Loading fails loudly: a corrupt or truncated archive raises
:class:`CheckpointLoadError` (never garbage weights), and a state dict
whose keys or shapes do not match the module's architecture raises
with the offending parameter names (see
:meth:`~repro.nn.modules.Module.load_state_dict`).  Full *training*
checkpoints — optimizer moments, RNG state, iteration counters — are
handled one layer up by :mod:`repro.runtime.checkpoint`.
"""

from __future__ import annotations

import os
import zipfile
from typing import Dict

import numpy as np

from .modules import Module


class CheckpointLoadError(RuntimeError):
    """A module checkpoint file is corrupt, truncated or unreadable."""


def save_state(module: Module, path: str) -> None:
    """Write ``module.state_dict()`` to ``path`` as an ``.npz`` archive."""
    state = module.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_state(module: Module, path: str) -> None:
    """Load an ``.npz`` checkpoint produced by :func:`save_state`.

    Raises
    ------
    FileNotFoundError
        ``path`` (or ``path + ".npz"``) does not exist.
    CheckpointLoadError
        The file exists but is not a readable ``.npz`` archive
        (corrupt download, truncated write, wrong file type).
    KeyError / ValueError
        The archive loaded but its keys or array shapes do not match
        ``module`` — the message names every offending parameter.
    """
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    if not os.path.exists(path):
        raise FileNotFoundError(f"checkpoint {path!r} does not exist")
    try:
        with np.load(path, allow_pickle=False) as archive:
            state: Dict[str, np.ndarray] = {
                key: archive[key] for key in archive.files}
    except (zipfile.BadZipFile, ValueError, OSError, EOFError,
            KeyError) as exc:
        raise CheckpointLoadError(
            f"checkpoint {path!r} is corrupt or truncated: {exc}") from exc
    module.load_state_dict(state)
