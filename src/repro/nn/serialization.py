"""Checkpoint save/load for ``repro.nn`` modules.

State dictionaries are stored as flat ``.npz`` archives, which keeps
checkpoints portable, dependency-free and human-inspectable with
``np.load``.  Used by the training examples to persist generator /
discriminator weights between the pre-training (Algorithm 2) and
adversarial (Algorithm 1) phases.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .modules import Module


def save_state(module: Module, path: str) -> None:
    """Write ``module.state_dict()`` to ``path`` as an ``.npz`` archive."""
    state = module.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_state(module: Module, path: str) -> None:
    """Load an ``.npz`` checkpoint produced by :func:`save_state`."""
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        state: Dict[str, np.ndarray] = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
