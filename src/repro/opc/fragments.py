"""Edge fragmentation for model-based OPC.

"In model-based OPC flows, pattern edges are fractured into segments
which are then shifted/corrected according to mathematical models"
(Section 1).  This module fractures rectangle edges into
:class:`EdgeSegment` fragments, each carrying a control point at its
midpoint and an outward normal; the correction engine in
:mod:`repro.opc.mbopc` moves fragments along their normals.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from ..geometry.layout import Layout
from ..geometry.shapes import Rect


@dataclass(frozen=True)
class EdgeSegment:
    """A fragment of a pattern edge.

    Attributes
    ----------
    rect_index:
        Which layout rect the fragment belongs to.
    start, end:
        Fragment endpoints in nm (axis-aligned; ``start`` < ``end``
        along the edge direction).
    normal:
        Outward unit normal, one of ``(+1,0), (-1,0), (0,+1), (0,-1)``.
    offset:
        Current correction displacement along the normal in nm
        (positive = outward growth).  Fragments start at 0.
    """

    rect_index: int
    start: Tuple[float, float]
    end: Tuple[float, float]
    normal: Tuple[int, int]
    offset: float = 0.0

    @property
    def length(self) -> float:
        return abs(self.end[0] - self.start[0]) + abs(self.end[1] - self.start[1])

    @property
    def midpoint(self) -> Tuple[float, float]:
        """The OPC control point of this fragment."""
        return (0.5 * (self.start[0] + self.end[0]),
                0.5 * (self.start[1] + self.end[1]))

    def with_offset(self, offset: float) -> "EdgeSegment":
        return replace(self, offset=offset)

    def moved_strip(self) -> Rect:
        """The rectangular strip swept by the fragment's displacement.

        For ``offset > 0`` this strip is *added* to the mask (edge
        pushed outward); for ``offset < 0`` it is *erased* (edge pulled
        inward).  Returns a degenerate-free rect; caller must skip when
        ``offset == 0``.
        """
        if self.offset == 0.0:
            raise ValueError("no strip for zero offset")
        (x0, y0), (x1, y1) = self.start, self.end
        nx, ny = self.normal
        d = self.offset
        if nx:  # vertical edge, horizontal displacement
            lo, hi = sorted((x0, x0 + nx * d))
            return Rect(lo, y0, hi, y1)
        lo, hi = sorted((y0, y0 + ny * d))
        return Rect(x0, lo, x1, hi)


def fragment_rect(rect: Rect, rect_index: int,
                  max_fragment: float) -> List[EdgeSegment]:
    """Fracture one rectangle's four edges into fragments of at most
    ``max_fragment`` nm."""
    if max_fragment <= 0:
        raise ValueError("max_fragment must be positive")
    segments: List[EdgeSegment] = []

    def _split(lo: float, hi: float) -> List[Tuple[float, float]]:
        span = hi - lo
        count = max(int(-(-span // max_fragment)), 1)  # ceil division
        edges = [lo + span * i / count for i in range(count + 1)]
        return list(zip(edges[:-1], edges[1:]))

    for a, b in _split(rect.x0, rect.x1):
        segments.append(EdgeSegment(rect_index, (a, rect.y0), (b, rect.y0), (0, -1)))
        segments.append(EdgeSegment(rect_index, (a, rect.y1), (b, rect.y1), (0, +1)))
    for a, b in _split(rect.y0, rect.y1):
        segments.append(EdgeSegment(rect_index, (rect.x0, a), (rect.x0, b), (-1, 0)))
        segments.append(EdgeSegment(rect_index, (rect.x1, a), (rect.x1, b), (+1, 0)))
    return segments


def fragment_layout(layout: Layout, max_fragment: float = 40.0) -> List[EdgeSegment]:
    """Fracture every rect in a layout."""
    segments: List[EdgeSegment] = []
    for index, rect in enumerate(layout.rects):
        segments.extend(fragment_rect(rect, index, max_fragment))
    return segments
