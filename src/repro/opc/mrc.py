"""Mask rule checking (MRC) and cleanup for pixel-based masks.

Pixel-based ILT produces free-form masks; before a mask can be
manufactured it must satisfy *mask rules* — minimum feature width,
minimum space, no sub-resolution islands or pinholes the mask writer
cannot form.  The GAN-OPC paper (like MOSAIC [7]) leaves this to the
downstream flow; this module provides the standard raster-level checks
and a conservative cleanup pass so optimized masks can be legalized:

* :func:`check_mask` — count min-width / min-space / island / pinhole
  violations;
* :func:`cleanup_mask` — drop islands below the writable size and fill
  pinholes, the two violation classes that can be fixed without moving
  pattern edges.

The test suite verifies that cleanup never *increases* the lithography
error materially (sub-resolution islands barely expose anyway).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..metrics.defects import _run_lengths

_STRUCTURE_4 = np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]], dtype=bool)


@dataclass(frozen=True)
class MrcConfig:
    """Mask manufacturing rules in nm.

    Attributes
    ----------
    min_feature:
        Narrowest mask feature the writer can form.
    min_space:
        Narrowest gap between mask features.
    min_area:
        Smallest connected feature area; islands below it are
        unwritable.
    """

    min_feature: float = 32.0
    min_space: float = 32.0
    min_area: float = 1600.0

    def __post_init__(self):
        if min(self.min_feature, self.min_space, self.min_area) <= 0:
            raise ValueError("all mask rules must be positive")


@dataclass(frozen=True)
class MrcReport:
    """Violation counts of one mask."""

    width_violations: int
    space_violations: int
    small_islands: int
    pinholes: int

    @property
    def total(self) -> int:
        return (self.width_violations + self.space_violations
                + self.small_islands + self.pinholes)

    @property
    def clean(self) -> bool:
        return self.total == 0


def check_mask(mask: np.ndarray, pixel_nm: float,
               config: MrcConfig = MrcConfig()) -> MrcReport:
    """Run all mask rule checks on a binary mask raster."""
    mask = np.asarray(mask) > 0.5
    if mask.ndim != 2:
        raise ValueError(f"mask must be 2-D, got shape {mask.shape}")
    if pixel_nm <= 0:
        raise ValueError("pixel_nm must be positive")

    feature_px = max(int(np.ceil(config.min_feature / pixel_nm)), 1)
    space_px = max(int(np.ceil(config.min_space / pixel_nm)), 1)
    area_px = max(int(np.ceil(config.min_area / (pixel_nm * pixel_nm))), 1)

    width_violations = _narrow_regions(mask, feature_px)
    space_violations = _narrow_spaces(mask, space_px)

    labels, count = ndimage.label(mask, structure=_STRUCTURE_4)
    sizes = ndimage.sum_labels(np.ones_like(labels), labels,
                               index=range(1, count + 1)) if count else []
    small_islands = int(sum(1 for s in sizes if s < area_px))

    # Pinholes: background components fully enclosed by mask, below the
    # minimum area.
    holes, hole_count = ndimage.label(~mask, structure=_STRUCTURE_4)
    pinholes = 0
    for label in range(1, hole_count + 1):
        region = holes == label
        if _touches_border(region):
            continue
        if region.sum() < area_px:
            pinholes += 1

    return MrcReport(width_violations=width_violations,
                     space_violations=space_violations,
                     small_islands=small_islands, pinholes=pinholes)


def cleanup_mask(mask: np.ndarray, pixel_nm: float,
                 config: MrcConfig = MrcConfig()) -> np.ndarray:
    """Remove unwritable islands and fill pinholes.

    Width/space violations are left alone — fixing them moves edges,
    which trades printability and belongs to the optimizer, not a
    post-pass.
    """
    mask = (np.asarray(mask) > 0.5)
    area_px = max(int(np.ceil(config.min_area / (pixel_nm * pixel_nm))), 1)

    cleaned = mask.copy()
    labels, count = ndimage.label(cleaned, structure=_STRUCTURE_4)
    for label in range(1, count + 1):
        region = labels == label
        if region.sum() < area_px:
            cleaned[region] = False

    holes, hole_count = ndimage.label(~cleaned, structure=_STRUCTURE_4)
    for label in range(1, hole_count + 1):
        region = holes == label
        if _touches_border(region):
            continue
        if region.sum() < area_px:
            cleaned[region] = True
    return cleaned.astype(float)


def _narrow_regions(image: np.ndarray, min_px: int) -> int:
    """Connected regions of pixels whose min run length < ``min_px``."""
    runs_h = _run_lengths(image, axis=1)
    runs_v = _run_lengths(image, axis=0)
    narrow = image & (np.minimum(runs_h, runs_v) < min_px)
    _, count = ndimage.label(narrow, structure=_STRUCTURE_4)
    return int(count)


def _narrow_spaces(mask: np.ndarray, min_px: int) -> int:
    """Gaps between features narrower than ``min_px``.

    A background run counts as a *space* only when it is bounded by
    mask features on both ends — background extending to the raster
    border is the clip surround, not a gap.
    """
    narrow = (_bounded_short_runs(mask, min_px, axis=1)
              | _bounded_short_runs(mask, min_px, axis=0))
    _, count = ndimage.label(narrow, structure=_STRUCTURE_4)
    return int(count)


def _bounded_short_runs(mask: np.ndarray, min_px: int,
                        axis: int) -> np.ndarray:
    """Mark background pixels in feature-bounded runs shorter than
    ``min_px`` along ``axis``."""
    work = mask if axis == 1 else mask.T
    out = np.zeros_like(work, dtype=bool)
    width = work.shape[1]
    background = ~work
    for row_index in range(work.shape[0]):
        row = background[row_index]
        padded = np.concatenate(([0], row.view(np.int8), [0]))
        changes = np.diff(padded.astype(np.int8))
        starts = np.nonzero(changes == 1)[0]
        ends = np.nonzero(changes == -1)[0]
        for start, end in zip(starts, ends):
            if start == 0 or end == width:
                continue  # touches the raster border
            if end - start < min_px:
                out[row_index, start:end] = True
    return out if axis == 1 else out.T


def _touches_border(region: np.ndarray) -> bool:
    return bool(region[0, :].any() or region[-1, :].any()
                or region[:, 0].any() or region[:, -1].any())
