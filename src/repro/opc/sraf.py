"""Sub-resolution assist feature (SRAF) insertion.

Figure 1 of the paper describes the conventional flow as "correcting
mask pattern shapes and inserting assist features"; reference [9]
(Viswanathan et al.) covers model-based SRAF printing prediction.  This
module implements the classic *rule-based* SRAF insertion used as the
front half of that flow: scatter bars placed parallel to pattern edges
at a fixed offset, sized below the printing resolution, trimmed against
spacing constraints to other patterns and other SRAFs.

SRAFs brighten the aerial image of isolated features (making them
behave more like dense ones), which flattens dose sensitivity — the
mechanism the PV-band metric rewards.  The :mod:`repro.litho` simulator
is used by the test suite to verify both properties: assist bars must
not print, and the assisted mask must not print worse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..geometry.layout import Layout
from ..geometry.shapes import Rect


@dataclass(frozen=True)
class SrafConfig:
    """Rule-based scatter-bar parameters (nm).

    Attributes
    ----------
    width:
        Bar width; must be below the resolution limit so bars do not
        print (24 nm keeps the peak bar intensity well under the
        resist threshold in this repo's 193i/32nm kernel model).
    offset:
        Gap between a pattern edge and its bar.
    min_length:
        Bars shorter than this after trimming are dropped.
    end_pullback:
        Bars stop this far before the ends of the edge they assist
        (avoids corner hot spots).
    clearance:
        Minimum gap kept between a bar and any *other* pattern or bar.
    """

    width: float = 24.0
    offset: float = 80.0
    min_length: float = 80.0
    end_pullback: float = 20.0
    clearance: float = 40.0

    def __post_init__(self):
        if min(self.width, self.offset, self.min_length) <= 0:
            raise ValueError("width, offset and min_length must be positive")
        if self.end_pullback < 0 or self.clearance < 0:
            raise ValueError("end_pullback and clearance must be nonnegative")


def candidate_bars(rect: Rect, config: SrafConfig) -> List[Rect]:
    """The four scatter bars parallel to a rectangle's edges."""
    pull = config.end_pullback
    bars = []
    x0, x1 = rect.x0 + pull, rect.x1 - pull
    y0, y1 = rect.y0 + pull, rect.y1 - pull
    if x1 - x0 >= config.min_length:
        below = rect.y0 - config.offset
        above = rect.y1 + config.offset
        bars.append(Rect(x0, below - config.width, x1, below))
        bars.append(Rect(x0, above, x1, above + config.width))
    if y1 - y0 >= config.min_length:
        left = rect.x0 - config.offset
        right = rect.x1 + config.offset
        bars.append(Rect(left - config.width, y0, left, y1))
        bars.append(Rect(right, y0, right + config.width, y1))
    return bars


def insert_srafs(layout: Layout,
                 config: Optional[SrafConfig] = None) -> List[Rect]:
    """Insert scatter bars around every pattern in a layout.

    Returns only the assist shapes (callers typically rasterize
    ``layout.rects + srafs`` as the mask while keeping the original
    layout as the target).  Bars violating the clearance rule against
    patterns or already-accepted bars are dropped; bars leaving the
    clip window are dropped.
    """
    config = config or SrafConfig()
    accepted: List[Rect] = []
    window = layout.window
    for rect in layout.rects:
        for bar in candidate_bars(rect, config):
            if not window.contains_rect(bar):
                continue
            if _too_close(bar, layout.rects, config.clearance, exempt=rect):
                continue
            if _too_close(bar, accepted, config.clearance):
                continue
            accepted.append(bar)
    return accepted


def assisted_mask_layout(layout: Layout,
                         config: Optional[SrafConfig] = None) -> Layout:
    """Convenience: a new layout whose shapes are pattern + SRAFs."""
    srafs = insert_srafs(layout, config)
    return Layout(extent=layout.extent, rects=layout.rects + srafs,
                  name=f"{layout.name or 'clip'}+sraf")


def _too_close(bar: Rect, others: List[Rect], clearance: float,
               exempt: Optional[Rect] = None) -> bool:
    for other in others:
        if exempt is not None and other == exempt:
            continue
        if bar.gap(other) < clearance - 1e-9:
            return True
    return False
