"""Model-based OPC: iterative edge-segment correction.

The conventional flow of Figure 1: fracture target edges into
fragments, simulate, measure the edge placement error at every
fragment's control point, and shift each fragment along its normal to
compensate — repeating until EPEs settle.  This is the segment-based
correction style of [3-5]/[14]; it serves as the conventional baseline
of the ablation benchmarks (the paper's motivation is that such flows
are "highly restricted by their solution space").

Masks are assembled by rasterizing the target shapes plus per-fragment
displacement strips (grow outward / erase inward).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..geometry.layout import Layout
from ..geometry.raster import rasterize
from ..ilt.gradient import discrete_l2
from ..litho.config import LithoConfig
from ..litho.kernels import KernelSet, build_kernels
from ..litho.simulator import LithoSimulator
from ..metrics.epe import _contour_offset
from .fragments import EdgeSegment, fragment_layout


@dataclass(frozen=True)
class MbOpcConfig:
    """Hyper-parameters of the model-based OPC loop.

    Attributes
    ----------
    iterations:
        Correction rounds.
    max_fragment:
        Edge fragmentation pitch in nm.
    gain:
        Fraction of the measured EPE compensated per round (damped
        feedback; 1.0 would fully trust a linear model).
    max_offset:
        Displacement clamp in nm (keeps fragments within the
        "restricted solution space" of real MB-OPC).
    search_range:
        EPE contour search range in nm.
    """

    iterations: int = 8
    max_fragment: float = 40.0
    gain: float = 0.6
    max_offset: float = 40.0
    search_range: float = 80.0

    def __post_init__(self):
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.gain <= 0 or self.gain > 1.5:
            raise ValueError("gain must be in (0, 1.5]")
        if self.max_offset <= 0:
            raise ValueError("max_offset must be positive")


@dataclass
class MbOpcResult:
    """Outcome of a model-based OPC run."""

    mask: np.ndarray
    segments: List[EdgeSegment]
    l2: float
    l2_history: List[float] = field(default_factory=list)
    runtime_seconds: float = 0.0


class ModelBasedOPC:
    """Segment-movement OPC engine over the litho simulator."""

    def __init__(self, litho_config: Optional[LithoConfig] = None,
                 config: Optional[MbOpcConfig] = None,
                 kernels: Optional[KernelSet] = None):
        self.litho_config = litho_config or LithoConfig.paper()
        self.config = config or MbOpcConfig()
        self.simulator = LithoSimulator(self.litho_config,
                                        kernels or build_kernels(self.litho_config))

    # ------------------------------------------------------------------
    def mask_from_segments(self, layout: Layout,
                           segments: List[EdgeSegment]) -> np.ndarray:
        """Rasterize the corrected mask: target shapes, plus outward
        strips, minus inward strips."""
        grid = self.litho_config.grid
        base = rasterize(layout, grid)
        grow = Layout(extent=layout.extent)
        shrink = Layout(extent=layout.extent)
        window = layout.window
        for segment in segments:
            if segment.offset == 0.0:
                continue
            strip = segment.moved_strip()
            try:
                strip = strip.intersection(window)
            except ValueError:
                continue  # displaced fully outside the window
            if segment.offset > 0:
                grow.rects.append(strip)
            else:
                shrink.rects.append(strip)
        mask = base + rasterize(grow, grid) - rasterize(shrink, grid)
        return (np.clip(mask, 0.0, 1.0) >= 0.5).astype(float)

    def measure_segment_epes(self, wafer: np.ndarray, layout: Layout,
                             segments: List[EdgeSegment]) -> np.ndarray:
        """Signed EPE at each fragment's control point (nm); non-finite
        measurements (contour out of range) are returned as +/- range."""
        pixel = layout.extent / wafer.shape[0]
        epes = np.zeros(len(segments))
        limit = self.config.search_range
        for i, segment in enumerate(segments):
            x, y = segment.midpoint
            epe = _contour_offset(wafer > 0.5, x, y, segment.normal, pixel,
                                  self.config.search_range)
            if not np.isfinite(epe):
                epe = limit if epe > 0 else -limit
            epes[i] = epe
        return epes

    # ------------------------------------------------------------------
    def optimize(self, layout: Layout) -> MbOpcResult:
        """Run the correction loop on a layout clip."""
        cfg = self.config
        start = time.perf_counter()
        segments = fragment_layout(layout, cfg.max_fragment)
        target = (rasterize(layout, self.litho_config.grid) >= 0.5).astype(float)

        best_mask = target
        best_l2 = discrete_l2(self.simulator.wafer_image(target), target)
        history = [best_l2]

        for _ in range(cfg.iterations):
            mask = self.mask_from_segments(layout, segments)
            wafer = self.simulator.wafer_image(mask)
            l2 = discrete_l2(wafer, target)
            history.append(l2)
            if l2 < best_l2:
                best_l2, best_mask = l2, mask
            epes = self.measure_segment_epes(wafer, layout, segments)
            # Negative feedback: printed edge beyond target (epe > 0)
            # pulls the fragment inward, pull-back pushes it outward.
            segments = [
                seg.with_offset(float(np.clip(seg.offset - cfg.gain * epe,
                                              -cfg.max_offset, cfg.max_offset)))
                for seg, epe in zip(segments, epes)
            ]

        return MbOpcResult(mask=best_mask, segments=segments, l2=best_l2,
                           l2_history=history,
                           runtime_seconds=time.perf_counter() - start)
