"""``repro.opc`` — model-based OPC baseline (conventional flow, Fig. 1).

Edge fragmentation (:mod:`fragments`) and iterative litho-driven
segment movement (:mod:`mbopc`) — the conventional OPC methodology the
paper's introduction contrasts against pixel-based ILT and GAN-OPC.
"""

from .fragments import EdgeSegment, fragment_layout, fragment_rect
from .mbopc import MbOpcConfig, MbOpcResult, ModelBasedOPC
from .mrc import MrcConfig, MrcReport, check_mask, cleanup_mask
from .sraf import (SrafConfig, assisted_mask_layout, candidate_bars,
                   insert_srafs)

__all__ = ["EdgeSegment", "fragment_rect", "fragment_layout",
           "MbOpcConfig", "MbOpcResult", "ModelBasedOPC",
           "SrafConfig", "candidate_bars", "insert_srafs",
           "assisted_mask_layout",
           "MrcConfig", "MrcReport", "check_mask", "cleanup_mask"]
