"""Tiled full-chip mask optimization.

GAN-OPC operates on engine-sized clips (64-128 px); real mask
optimization is layout-scale.  This package decomposes an arbitrarily
large layout raster into fixed-size tile windows with a configurable
halo overlap, runs the per-tile GAN+ILT flow (serially or fanned over
the shared-memory :class:`~repro.parallel.pool.WorkerPool`), and
stitches the optimized masks back together by exact core-region
cropping with optional seam feathering — see DESIGN.md §12.
"""

from .grid import Tile, TileGrid, extract_window, rasterize_window
from .runner import TiledResult, TilingConfig, tiled_flow, tiled_ilt
from .stitch import stitch_cores, stitch_feathered

__all__ = [
    "Tile",
    "TileGrid",
    "extract_window",
    "rasterize_window",
    "stitch_cores",
    "stitch_feathered",
    "TilingConfig",
    "TiledResult",
    "tiled_ilt",
    "tiled_flow",
]
