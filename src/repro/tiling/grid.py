"""Halo-overlap tile decomposition of a chip raster.

The chip is a ``chip_grid x chip_grid`` pixel raster.  Every tile sees
a fixed ``tile x tile`` pixel *window* — the size the litho engine and
the generator are built for, so one kernel cache serves every tile —
of which only the central *core* (``tile - 2*halo`` pixels per axis)
is trusted: the halo ring absorbs the optical interaction of
neighboring geometry (~wavelength/NA, about 18 px at the paper's 8 nm
pixels) plus the periodic wrap-around of the tile-local simulation.

Cores partition the chip exactly — ``ceil(chip_grid / core)`` tiles
per axis, the last row/column clamped to the chip edge — with no gap
and no double cover (property-tested in ``tests/tiling``).  Windows
may extend past the chip; pixels outside are empty field (zero).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from ..geometry.layout import Layout
from ..geometry.raster import rasterize_region


@dataclass(frozen=True)
class Tile:
    """One tile of a :class:`TileGrid`.

    Core bounds are in chip-pixel coordinates and lie inside the chip;
    the window is the core padded by ``halo`` on every side, grown to
    the fixed ``size`` when the core is clamped, and may extend past
    the chip raster (those pixels are zero field).
    """

    index: int
    row: int
    col: int
    core_row0: int
    core_row1: int
    core_col0: int
    core_col1: int
    halo: int
    size: int

    @property
    def window_row0(self) -> int:
        return self.core_row0 - self.halo

    @property
    def window_col0(self) -> int:
        return self.core_col0 - self.halo

    @property
    def window_row1(self) -> int:
        return self.window_row0 + self.size

    @property
    def window_col1(self) -> int:
        return self.window_col0 + self.size

    @property
    def core_height(self) -> int:
        return self.core_row1 - self.core_row0

    @property
    def core_width(self) -> int:
        return self.core_col1 - self.core_col0

    def core_slices(self) -> tuple:
        """``(chip_rows, chip_cols)`` slices of this tile's core."""
        return (slice(self.core_row0, self.core_row1),
                slice(self.core_col0, self.core_col1))

    def local_core_slices(self) -> tuple:
        """Core slices in the tile window's local frame."""
        return (slice(self.halo, self.halo + self.core_height),
                slice(self.halo, self.halo + self.core_width))


@dataclass(frozen=True)
class TileGrid:
    """Decomposition of a ``chip_grid`` px raster into halo'd tiles."""

    chip_grid: int
    tile: int
    halo: int

    def __post_init__(self):
        if self.chip_grid < 1:
            raise ValueError(f"chip_grid must be >= 1, got {self.chip_grid}")
        if self.tile < 8:
            raise ValueError(f"tile must be >= 8, got {self.tile}")
        if self.halo < 0:
            raise ValueError(f"halo must be >= 0, got {self.halo}")
        if self.core < 1:
            raise ValueError(
                f"tile {self.tile} leaves no core after halo {self.halo} "
                f"(need tile > 2*halo)")

    @property
    def core(self) -> int:
        """Trusted pixels per axis per tile (``tile - 2*halo``)."""
        return self.tile - 2 * self.halo

    @property
    def rows(self) -> int:
        return -(-self.chip_grid // self.core)

    @property
    def cols(self) -> int:
        return -(-self.chip_grid // self.core)

    @property
    def count(self) -> int:
        return self.rows * self.cols

    def tile_at(self, row: int, col: int) -> Tile:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(
                f"tile ({row}, {col}) outside {self.rows}x{self.cols} grid")
        core_row0 = row * self.core
        core_col0 = col * self.core
        return Tile(index=row * self.cols + col, row=row, col=col,
                    core_row0=core_row0,
                    core_row1=min(core_row0 + self.core, self.chip_grid),
                    core_col0=core_col0,
                    core_col1=min(core_col0 + self.core, self.chip_grid),
                    halo=self.halo, size=self.tile)

    def tiles(self) -> List[Tile]:
        return [self.tile_at(r, c)
                for r in range(self.rows) for c in range(self.cols)]

    def __iter__(self) -> Iterator[Tile]:
        return iter(self.tiles())


def extract_window(chip_image: np.ndarray, tile: Tile) -> np.ndarray:
    """Zero-padded ``(size, size)`` window of ``chip_image`` for a tile.

    Window pixels outside the chip raster (halo at the chip boundary,
    clamped last row/column) are empty field.
    """
    chip_rows, chip_cols = chip_image.shape
    window = np.zeros((tile.size, tile.size), dtype=chip_image.dtype)
    row0 = max(tile.window_row0, 0)
    row1 = min(tile.window_row1, chip_rows)
    col0 = max(tile.window_col0, 0)
    col1 = min(tile.window_col1, chip_cols)
    if row0 < row1 and col0 < col1:
        window[row0 - tile.window_row0:row1 - tile.window_row0,
               col0 - tile.window_col0:col1 - tile.window_col0] = \
            chip_image[row0:row1, col0:col1]
    return window


def rasterize_window(layout: Layout, grid: TileGrid, tile: Tile,
                     antialias: bool = True) -> np.ndarray:
    """Rasterize one tile window directly from vector geometry.

    Bit-exact equal to ``extract_window(rasterize(layout,
    grid.chip_grid), tile)`` — the in-window part is painted with
    global pixel coordinates via
    :func:`~repro.geometry.raster.rasterize_region` — without ever
    materializing the monolithic chip raster.
    """
    window = np.zeros((tile.size, tile.size), dtype=float)
    row0 = max(tile.window_row0, 0)
    row1 = min(tile.window_row1, grid.chip_grid)
    col0 = max(tile.window_col0, 0)
    col1 = min(tile.window_col1, grid.chip_grid)
    if row0 < row1 and col0 < col1:
        window[row0 - tile.window_row0:row1 - tile.window_row0,
               col0 - tile.window_col0:col1 - tile.window_col0] = \
            rasterize_region(layout, grid.chip_grid, row0, row1, col0, col1,
                             antialias=antialias)
    return window
