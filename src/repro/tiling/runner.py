"""Tiled ILT / GAN-OPC flow over a chip-scale target raster.

Each tile optimizes its fixed-size window (core + halo) with the
ordinary clip-scale machinery — the same :class:`ILTOptimizer` /
:class:`GanOpcFlow` code, the same engine, one kernel cache for every
tile — and only the core survives stitching.  The per-tile litho
simulation is periodic on the *tile window* rather than the chip, so
stitched results match a monolithic run only to within a documented
seam tolerance that shrinks as the halo grows (tests/tiling).

Parallel runs fan one tile per task over the shared-memory
:class:`~repro.parallel.pool.WorkerPool`: the chip target ships once
through shared memory, tile cores are written into disjoint slices of
a shared chip-sized output (no two tiles own the same core pixel, so
the writes are race-free), and only scalars cross the pickle
boundary.  Serial and parallel runs execute the identical per-window
code on identical float64 inputs, so they are **bit-exact** equal.

Empty windows (no geometry in core or halo) are skipped by default:
the optimum for an empty target is the empty mask, which the skip
reproduces exactly for the binary mask (the relaxed mask of a real
run would sit at ``sigmoid(-mask_steepness)`` instead of 0).  Both
execution paths share the skip logic, so parity is unaffected.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..obs import trace

from ..core.generator import MaskGenerator
from ..ilt.optimizer import ILTConfig, ILTOptimizer
from ..litho.config import LithoConfig
from ..litho.engine import LithoEngine
from ..litho.kernels import build_kernels
from ..parallel.flow import _rebuild_generator, generator_payload
from ..parallel.pool import (PoolStats, WorkerPool, attach_array,
                             worker_engine, worker_state)
from ..parallel.shm import ShmSpec, SharedArray
from .grid import Tile, TileGrid, extract_window
from .stitch import stitch_feathered


@dataclass(frozen=True)
class TilingConfig:
    """Tile decomposition and stitching parameters.

    Attributes
    ----------
    tile:
        Fixed window size in pixels — the grid the litho engine and
        the generator run at.
    halo:
        Overlap ring in pixels on every side of a tile's core.  The
        default 8 px covers roughly half the optical interaction range
        at the paper's 8 nm pixels; the halo-sufficiency sweep in
        tests/tiling shows seam error decaying as it grows.
    blend:
        Feather width (px) for stitching the *relaxed* mask; 0 = hard
        core crop.  Must not exceed ``halo``.  The binary mask is
        always stitched by exact core partition.
    skip_empty:
        Skip optimization of windows with no geometry (empty-field
        tiles of a sparse chip); their mask is exactly empty.
    """

    tile: int = 64
    halo: int = 8
    blend: int = 0
    skip_empty: bool = True

    def __post_init__(self):
        if self.blend < 0 or self.blend > self.halo:
            raise ValueError(
                f"blend must be in [0, halo={self.halo}], got {self.blend}")

    def grid_for(self, chip_grid: int) -> TileGrid:
        return TileGrid(chip_grid=chip_grid, tile=self.tile, halo=self.halo)


@dataclass
class TiledResult:
    """Outcome of a tiled chip-scale optimization.

    ``l2`` is the sum over tiles of the discrete litho error restricted
    to each tile's core, under the tile-local (window-periodic)
    simulation — the chip-scale analogue of the per-clip L2 column.
    """

    mask: np.ndarray
    mask_relaxed: np.ndarray
    tile_grid: TileGrid
    l2: float
    tile_l2: np.ndarray
    tiles_total: int
    tiles_skipped: int
    iterations: int
    runtime_seconds: float
    workers: int
    pool_stats: Optional[PoolStats] = None


# ----------------------------------------------------------------------
# Shared per-window work (identical on the serial and worker paths)
# ----------------------------------------------------------------------
def _ilt_window(window: np.ndarray, litho_config: LithoConfig,
                ilt_config: ILTConfig, max_iterations: Optional[int],
                engine: LithoEngine, skip_empty: bool):
    """Optimize one tile window; returns (mask, relaxed, l2-parts)."""
    if skip_empty and not window.any():
        zeros = np.zeros_like(window)
        return zeros, zeros, 0, 0.0, True
    optimizer = ILTOptimizer(litho_config, ilt_config, engine=engine)
    result = optimizer.optimize(window, max_iterations=max_iterations)
    return (result.mask, result.mask_relaxed, result.iterations,
            result.runtime_seconds, False)


def _flow_window(window: np.ndarray, generator: MaskGenerator,
                 litho_config: LithoConfig, refine_config: ILTConfig,
                 refine_iterations: Optional[int], engine: LithoEngine,
                 skip_empty: bool):
    if skip_empty and not window.any():
        zeros = np.zeros_like(window)
        return zeros, zeros, 0, 0.0, True
    from ..core.flow import GanOpcFlow
    flow = GanOpcFlow(generator, litho_config, refine_config, engine=engine)
    result = flow.optimize(window, refine_iterations=refine_iterations)
    ilt = result.ilt_result
    return (result.mask, ilt.mask_relaxed, ilt.iterations,
            result.runtime_seconds, False)


def _core_l2(engine: LithoEngine, mask_window: np.ndarray,
             target_window: np.ndarray, tile: Tile) -> float:
    """Discrete litho error of a tile's mask restricted to its core."""
    diff = engine.wafer(mask_window) - target_window
    core = diff[tile.local_core_slices()]
    return float(np.sum(core * core))


def _commit(tile: Tile, mask_window: np.ndarray, relaxed_window: np.ndarray,
            mask_out: np.ndarray, relaxed_out: Optional[np.ndarray],
            windows_out: Optional[np.ndarray]) -> None:
    """Write a finished tile into the chip-level outputs.

    Cores are disjoint chip slices, so parallel workers committing
    different tiles never touch the same output pixel.
    """
    mask_out[tile.core_slices()] = mask_window[tile.local_core_slices()]
    if relaxed_out is not None:
        relaxed_out[tile.core_slices()] = \
            relaxed_window[tile.local_core_slices()]
    if windows_out is not None:
        windows_out[tile.index] = relaxed_window


# ----------------------------------------------------------------------
# Worker tasks (module-level: must be picklable)
# ----------------------------------------------------------------------
def _tile_ilt_task(index: int, chip_spec: ShmSpec, out_spec: ShmSpec,
                   windows_spec: Optional[ShmSpec], tile_grid: TileGrid,
                   litho_config: LithoConfig, ilt_config: ILTConfig,
                   max_iterations: Optional[int], skip_empty: bool):
    chip = attach_array(chip_spec)
    tile = tile_grid.tiles()[index]
    window = extract_window(chip, tile)
    engine = worker_engine(litho_config)
    mask_w, relaxed_w, iterations, runtime, skipped = _ilt_window(
        window, litho_config, ilt_config, max_iterations, engine, skip_empty)
    l2 = 0.0 if skipped else _core_l2(engine, mask_w, window, tile)
    out = attach_array(out_spec)
    windows_out = (attach_array(windows_spec)
                   if windows_spec is not None else None)
    _commit(tile, mask_w, relaxed_w, out[0], out[1], windows_out)
    return (index, l2, iterations, runtime, skipped)


def _tile_flow_task(index: int, chip_spec: ShmSpec, out_spec: ShmSpec,
                    windows_spec: Optional[ShmSpec], tile_grid: TileGrid,
                    litho_config: LithoConfig, refine_config: ILTConfig,
                    refine_iterations: Optional[int], skip_empty: bool):
    chip = attach_array(chip_spec)
    tile = tile_grid.tiles()[index]
    window = extract_window(chip, tile)
    engine = worker_engine(litho_config)
    generator = _rebuild_generator(worker_state())
    mask_w, relaxed_w, iterations, runtime, skipped = _flow_window(
        window, generator, litho_config, refine_config, refine_iterations,
        engine, skip_empty)
    l2 = 0.0 if skipped else _core_l2(engine, mask_w, window, tile)
    out = attach_array(out_spec)
    windows_out = (attach_array(windows_spec)
                   if windows_spec is not None else None)
    _commit(tile, mask_w, relaxed_w, out[0], out[1], windows_out)
    return (index, l2, iterations, runtime, skipped)


# ----------------------------------------------------------------------
# Parent-side drivers
# ----------------------------------------------------------------------
def _run_tiled(target: np.ndarray, config: TilingConfig,
               litho_config: LithoConfig, workers: int,
               precision: Optional[str], pool: Optional[WorkerPool],
               state, task_fn, task_args, serial_fn,
               progress=None) -> TiledResult:
    """Common serial/parallel machinery for tiled ILT and tiled flow.

    ``task_fn(index, chip_spec, out_spec, windows_spec, tile_grid,
    *task_args)`` is the worker task; ``serial_fn(window, engine)`` is
    the equivalent in-process call returning the same 5-tuple.
    ``progress`` (``(done, total, pid, seconds)``) fires per finished
    tile on both paths — it is what ``repro monitor`` renders.
    """
    target = np.asarray(target, dtype=float)
    if target.ndim != 2 or target.shape[0] != target.shape[1]:
        raise ValueError(
            f"target must be a square chip raster, got {target.shape}")
    if litho_config.grid != config.tile:
        raise ValueError(
            f"litho grid {litho_config.grid} != tile size {config.tile}")
    tile_grid = config.grid_for(target.shape[0])
    tiles = tile_grid.tiles()
    started = time.perf_counter()

    with trace.span("tiling.run", tiles=len(tiles), workers=workers):
        if workers <= 1 and pool is None:
            engine = LithoEngine.for_kernels(build_kernels(litho_config),
                                             precision=precision)
            mask = np.zeros_like(target)
            relaxed = np.zeros_like(target)
            windows = ([None] * len(tiles) if config.blend > 0 else None)
            tile_l2 = np.zeros(len(tiles))
            iterations = 0
            skipped_count = 0
            for tile in tiles:
                window = extract_window(target, tile)
                mask_w, relaxed_w, iters, _, skipped = serial_fn(window,
                                                                 engine)
                tile_l2[tile.index] = (
                    0.0 if skipped else _core_l2(engine, mask_w, window,
                                                 tile))
                iterations = max(iterations, iters)
                skipped_count += int(skipped)
                _commit(tile, mask_w, relaxed_w, mask,
                        None if windows is not None else relaxed, None)
                if progress is not None:
                    progress(tile.index + 1, len(tiles), os.getpid(), 0.0)
                if windows is not None:
                    windows[tile.index] = relaxed_w
            if windows is not None:
                relaxed = stitch_feathered(windows, tile_grid, config.blend)
            return TiledResult(
                mask=mask, mask_relaxed=relaxed, tile_grid=tile_grid,
                l2=float(tile_l2.sum()), tile_l2=tile_l2,
                tiles_total=len(tiles), tiles_skipped=skipped_count,
                iterations=iterations,
                runtime_seconds=time.perf_counter() - started, workers=1)

        own_pool = pool is None
        if own_pool:
            pool = WorkerPool(workers, litho_config=litho_config,
                              precision=precision, state=state)
        chip_grid = tile_grid.chip_grid
        shared_chip = SharedArray.from_array(target)
        shared_out = SharedArray.create((2, chip_grid, chip_grid),
                                        np.float64)
        shared_windows = (
            SharedArray.create((len(tiles), config.tile, config.tile),
                               np.float64)
            if config.blend > 0 else None)
        try:
            reports = pool.map(
                task_fn,
                [(tile.index, shared_chip.spec, shared_out.spec,
                  shared_windows.spec if shared_windows is not None
                  else None, tile_grid) + task_args
                 for tile in tiles],
                label="tiling.map", progress=progress)
            mask = np.array(shared_out.array[0], copy=True)
            relaxed = np.array(shared_out.array[1], copy=True)
            if shared_windows is not None:
                relaxed = stitch_feathered(
                    list(shared_windows.array), tile_grid, config.blend)
        finally:
            shared_chip.close()
            shared_chip.unlink()
            shared_out.close()
            shared_out.unlink()
            if shared_windows is not None:
                shared_windows.close()
                shared_windows.unlink()
            if own_pool:
                pool.shutdown()

        tile_l2 = np.zeros(len(tiles))
        iterations = 0
        skipped_count = 0
        for index, l2, iters, _, skipped in reports:
            tile_l2[index] = l2
            iterations = max(iterations, iters)
            skipped_count += int(skipped)
        return TiledResult(
            mask=mask, mask_relaxed=relaxed, tile_grid=tile_grid,
            l2=float(tile_l2.sum()), tile_l2=tile_l2,
            tiles_total=len(tiles), tiles_skipped=skipped_count,
            iterations=iterations,
            runtime_seconds=time.perf_counter() - started,
            workers=pool.workers, pool_stats=pool.stats)


def tiled_ilt(target: np.ndarray,
              config: Optional[TilingConfig] = None,
              litho_config: Optional[LithoConfig] = None,
              ilt_config: Optional[ILTConfig] = None,
              workers: int = 1,
              precision: Optional[str] = None,
              max_iterations: Optional[int] = None,
              pool: Optional[WorkerPool] = None,
              progress=None) -> TiledResult:
    """ILT over a chip-scale binary target raster, tile by tile.

    Parameters
    ----------
    target:
        Square binary chip raster, any size (not limited to the engine
        grid).
    config:
        Tile/halo/stitch settings; the litho config's grid must equal
        ``config.tile`` (default: ``LithoConfig.small(config.tile)``).
    workers:
        ``1`` runs serially in-process; ``> 1`` fans tiles over a
        :class:`WorkerPool`.  Results are bit-exact either way.
    """
    config = config or TilingConfig()
    litho_config = litho_config or LithoConfig.small(config.tile)
    ilt_config = ilt_config or ILTConfig()
    return _run_tiled(
        target, config, litho_config, workers, precision, pool, None,
        _tile_ilt_task,
        (litho_config, ilt_config, max_iterations, config.skip_empty),
        lambda window, engine: _ilt_window(
            window, litho_config, ilt_config, max_iterations, engine,
            config.skip_empty),
        progress=progress)


def tiled_flow(generator: MaskGenerator, target: np.ndarray,
               config: Optional[TilingConfig] = None,
               litho_config: Optional[LithoConfig] = None,
               refine_config: Optional[ILTConfig] = None,
               workers: int = 1,
               precision: Optional[str] = None,
               refine_iterations: Optional[int] = None,
               pool: Optional[WorkerPool] = None,
               progress=None) -> TiledResult:
    """GAN-OPC flow (generate + refine) over a chip raster, tile by tile.

    Generator weights are broadcast once per worker through the pool's
    ``state`` channel, exactly as in
    :func:`~repro.parallel.flow.parallel_flow`.
    """
    config = config or TilingConfig()
    litho_config = litho_config or LithoConfig.small(config.tile)
    refine_config = refine_config or ILTConfig(max_iterations=50, patience=4)
    return _run_tiled(
        target, config, litho_config, workers, precision, pool,
        generator_payload(generator),
        _tile_flow_task,
        (litho_config, refine_config, refine_iterations, config.skip_empty),
        lambda window, engine: _flow_window(
            window, generator, litho_config, refine_config,
            refine_iterations, engine, config.skip_empty),
        progress=progress)
