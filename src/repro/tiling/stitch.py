"""Reassemble per-tile images into a chip raster.

Two stitch rules (DESIGN.md §12):

* :func:`stitch_cores` — exact core partition.  Each chip pixel is
  written by exactly one tile (its core owner), so stitching raw
  target windows is bit-exact versus the monolithic raster, and
  stitching binary masks keeps them binary.  This is the rule for the
  final mask.
* :func:`stitch_feathered` — weighted cross-fade for *relaxed* (gray)
  images.  Each tile's contribution extends ``blend`` px past its core
  with a linear ramp; overlapping contributions are normalized by
  their accumulated weight, so seams in the relaxed mask fade smoothly
  instead of stepping.  ``blend=0`` degenerates to the core rule.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .grid import TileGrid


def stitch_cores(windows: Sequence[np.ndarray], grid: TileGrid) -> np.ndarray:
    """Write each tile's core into its chip slot (exact partition)."""
    tiles = grid.tiles()
    if len(windows) != len(tiles):
        raise ValueError(
            f"got {len(windows)} windows for {len(tiles)} tiles")
    chip = np.zeros((grid.chip_grid, grid.chip_grid), dtype=float)
    for tile, window in zip(tiles, windows):
        window = np.asarray(window)
        if window.shape != (tile.size, tile.size):
            raise ValueError(
                f"tile {tile.index} window shape {window.shape} != "
                f"({tile.size}, {tile.size})")
        chip[tile.core_slices()] = window[tile.local_core_slices()]
    return chip


def _ramp(length: int, start: int, stop: int, blend: int) -> np.ndarray:
    """1-D trapezoid weight over window-local pixels ``[0, length)``.

    Weight is 1 inside the core ``[start, stop)`` and falls off
    linearly outside it, hitting zero ``blend + 1`` pixels out — so a
    tile contributes up to ``blend`` pixels past its core, where the
    neighbor's ramp overlaps it and the accumulated weight in
    :func:`stitch_feathered` cross-fades the two.
    """
    positions = np.arange(length, dtype=float)
    outside = np.maximum(
        np.maximum(start - positions, positions - (stop - 1)), 0.0)
    return np.clip(1.0 - outside / (blend + 1), 0.0, 1.0)


def stitch_feathered(windows: Sequence[np.ndarray], grid: TileGrid,
                     blend: int) -> np.ndarray:
    """Weighted cross-fade stitch for relaxed (gray) tile images."""
    if blend < 0:
        raise ValueError(f"blend must be >= 0, got {blend}")
    if blend > grid.halo:
        raise ValueError(
            f"blend {blend} exceeds halo {grid.halo}: a tile can only "
            f"contribute pixels it simulated")
    if blend == 0:
        return stitch_cores(windows, grid)
    tiles = grid.tiles()
    if len(windows) != len(tiles):
        raise ValueError(
            f"got {len(windows)} windows for {len(tiles)} tiles")
    chip = np.zeros((grid.chip_grid, grid.chip_grid), dtype=float)
    weight = np.zeros_like(chip)
    for tile, window in zip(tiles, windows):
        window = np.asarray(window, dtype=float)
        ramp_rows = _ramp(tile.size, tile.halo,
                          tile.halo + tile.core_height, blend)
        ramp_cols = _ramp(tile.size, tile.halo,
                          tile.halo + tile.core_width, blend)
        tile_weight = np.outer(ramp_rows, ramp_cols)
        row0 = max(tile.window_row0, 0)
        row1 = min(tile.window_row1, grid.chip_grid)
        col0 = max(tile.window_col0, 0)
        col1 = min(tile.window_col1, grid.chip_grid)
        if row0 >= row1 or col0 >= col1:
            continue
        local = (slice(row0 - tile.window_row0, row1 - tile.window_row0),
                 slice(col0 - tile.window_col0, col1 - tile.window_col0))
        chip[row0:row1, col0:col1] += (window[local] * tile_weight[local])
        weight[row0:row1, col0:col1] += tile_weight[local]
    covered = weight > 0.0
    chip[covered] /= weight[covered]
    return chip
