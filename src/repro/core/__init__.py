"""``repro.core`` — the GAN-OPC framework (the paper's contribution).

* :mod:`generator` — auto-encoder mask generator (Section 3.1);
* :mod:`discriminator` — target-mask **pair** discriminator plus the
  conventional mask-only ablation (Section 3.2);
* :mod:`gan_opc` — alternating adversarial training, Algorithm 1
  (Section 3.3);
* :mod:`pretrain` — ILT-guided generator pre-training, Algorithm 2
  (Section 3.4), plus the ground-truth-regression strawman;
* :mod:`flow` — inference + ILT refinement flow (Figure 6).
"""

from .config import GanOpcConfig
from .discriminator import MaskOnlyDiscriminator, PairDiscriminator
from .flow import FlowResult, GanOpcFlow
from .gan_opc import GanOpcTrainer, TrainingHistory
from .generator import MaskGenerator
from .pretrain import (GroundTruthPretrainer, ILTGuidedPretrainer,
                       PretrainHistory)
from .unet import UNetMaskGenerator

__all__ = [
    "GanOpcConfig",
    "MaskGenerator", "UNetMaskGenerator",
    "PairDiscriminator", "MaskOnlyDiscriminator",
    "GanOpcTrainer", "TrainingHistory",
    "ILTGuidedPretrainer", "GroundTruthPretrainer", "PretrainHistory",
    "GanOpcFlow", "FlowResult",
]
