"""GAN-OPC discriminators (Section 3.2).

The key architectural insight of the paper: a conventional
discriminator ``D(M)`` that only sees masks cannot force a one-to-one
target->mask mapping — the generator can deceive it by emitting *any*
reference mask regardless of the input target (Eq. 6).  GAN-OPC instead
classifies **target-mask pairs**: inputs are either ``(Z_t, G(Z_t))``
(fake) or ``(Z_t, M*)`` (true), stacked as two image channels, so the
generator wins if and only if ``G(Z_t) ~= M*`` for every training
target.

:class:`PairDiscriminator` implements the paper's pair design;
:class:`MaskOnlyDiscriminator` implements the conventional design and
exists for the ablation benchmark that demonstrates why pairing is
necessary.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import nn


def _conv_block(in_ch: int, out_ch: int, rng: np.random.Generator) -> nn.Sequential:
    return nn.Sequential(
        nn.Conv2d(in_ch, out_ch, kernel_size=3, stride=2, padding=1, rng=rng),
        nn.BatchNorm2d(out_ch),
        nn.LeakyReLU(0.2),
    )


class _ConvClassifier(nn.Module):
    """Shared conv->FC->sigmoid classifier trunk."""

    def __init__(self, in_channels: int, grid: int,
                 channels: Tuple[int, ...], rng: np.random.Generator):
        super().__init__()
        if not channels:
            raise ValueError("discriminator needs at least one channel level")
        factor = 2 ** len(channels)
        if grid % factor:
            raise ValueError(
                f"grid {grid} not divisible by downsampling factor {factor}")
        blocks = []
        current = in_channels
        for out_ch in channels:
            blocks.append(_conv_block(current, out_ch, rng))
            current = out_ch
        self.features = nn.Sequential(*blocks)
        bottleneck = grid // factor
        self.flatten = nn.Flatten()
        self.classifier = nn.Linear(current * bottleneck * bottleneck, 1, rng=rng)
        self.activation = nn.Sigmoid()

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        h = self.flatten(self.features(x))
        return self.activation(self.classifier(h))


class PairDiscriminator(nn.Module):
    """Pair classifier ``D(Z_t, M) -> probability of (Z_t, M*)``.

    Target and mask are concatenated along the channel axis, so the
    network sees their spatial correspondence from the first layer.
    """

    def __init__(self, grid: int, channels: Tuple[int, ...] = (16, 32, 64, 128),
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.grid = grid
        self.trunk = _ConvClassifier(in_channels=2, grid=grid,
                                     channels=tuple(channels), rng=rng)

    def forward(self, target: nn.Tensor, mask: nn.Tensor) -> nn.Tensor:
        """Score target/mask batches ``(N, 1, g, g)`` -> ``(N, 1)``."""
        if target.shape != mask.shape:
            raise ValueError(
                f"target {target.shape} and mask {mask.shape} shapes differ")
        pair = nn.concatenate([target, mask], axis=1)
        return self.trunk(pair)


class MaskOnlyDiscriminator(nn.Module):
    """Conventional discriminator ``D(M)`` (ablation baseline).

    Without the target channel, Eq. 6 applies: any reference mask
    maximizes the generator objective, so target-mask correspondence is
    unconstrained.  The ablation benchmark shows the pair design reaches
    much lower mapping error.
    """

    def __init__(self, grid: int, channels: Tuple[int, ...] = (16, 32, 64, 128),
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.grid = grid
        self.trunk = _ConvClassifier(in_channels=1, grid=grid,
                                     channels=tuple(channels), rng=rng)

    def forward(self, target: nn.Tensor, mask: nn.Tensor) -> nn.Tensor:
        """Score masks only; the target argument is accepted (and
        ignored) so both discriminators share the trainer interface."""
        return self.trunk(mask)
