"""U-Net mask generator — an extension beyond the paper's architecture.

The paper's generator is a plain convolutional auto-encoder (Fig. 4);
follow-up work on learned mask optimization (e.g. Neural-ILT, DAMO)
found that skip connections between encoder and decoder levels preserve
the fine geometry the bottleneck discards, which matters because OPC
corrections are inherently local.  :class:`UNetMaskGenerator` is a
drop-in replacement for :class:`~repro.core.generator.MaskGenerator`
(same call signature, same residual-correction output formulation), so
every trainer, flow and benchmark in this repo can run either
architecture — the architecture ablation benchmark compares them.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .. import nn


class _Down(nn.Module):
    """Stride-2 conv + BN + LeakyReLU encoder level."""

    def __init__(self, in_ch: int, out_ch: int, rng: np.random.Generator):
        super().__init__()
        self.body = nn.Sequential(
            nn.Conv2d(in_ch, out_ch, 3, stride=2, padding=1, rng=rng),
            nn.BatchNorm2d(out_ch),
            nn.LeakyReLU(0.2),
        )

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return self.body(x)


class _Up(nn.Module):
    """Deconv upsample, concat the skip, fuse with a 3x3 conv."""

    def __init__(self, in_ch: int, skip_ch: int, out_ch: int,
                 rng: np.random.Generator):
        super().__init__()
        self.up = nn.ConvTranspose2d(in_ch, out_ch, 4, stride=2, padding=1,
                                     rng=rng)
        self.fuse = nn.Sequential(
            nn.Conv2d(out_ch + skip_ch, out_ch, 3, padding=1, rng=rng),
            nn.BatchNorm2d(out_ch),
            nn.ReLU(),
        )

    def forward(self, x: nn.Tensor, skip: nn.Tensor) -> nn.Tensor:
        upsampled = self.up(x)
        return self.fuse(nn.concatenate([upsampled, skip], axis=1))


class UNetMaskGenerator(nn.Module):
    """U-Net generator ``G(Z_t) -> M`` with target-residual output.

    Parameters
    ----------
    channels:
        Encoder widths per level (each level halves resolution).  Needs
        at least two levels for skips to exist.
    residual_scale:
        Strength of the target skip into the output logits (same
        correction formulation as the baseline generator).
    rng:
        Initialization RNG.
    """

    def __init__(self, channels: Tuple[int, ...] = (16, 32, 64),
                 residual_scale: float = 2.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if len(channels) < 2:
            raise ValueError("U-Net needs at least two channel levels")
        if residual_scale < 0:
            raise ValueError("residual_scale must be nonnegative")
        rng = rng or np.random.default_rng()
        self.channels = tuple(channels)
        self.residual_scale = float(residual_scale)

        downs: List[_Down] = []
        in_ch = 1
        for out_ch in channels:
            downs.append(_Down(in_ch, out_ch, rng))
            in_ch = out_ch
        self.downs = nn.Sequential(*downs)  # registered; called manually

        ups: List[_Up] = []
        for level in range(len(channels) - 2, -1, -1):
            ups.append(_Up(in_ch, channels[level], channels[level], rng))
            in_ch = channels[level]
        self.ups = nn.Sequential(*ups)

        self.head = nn.Sequential(
            nn.ConvTranspose2d(in_ch, channels[0], 4, stride=2, padding=1,
                               rng=rng),
            nn.ReLU(),
            nn.Conv2d(channels[0], 1, 3, padding=1, rng=rng),
        )

    def forward(self, target: nn.Tensor) -> nn.Tensor:
        if target.ndim != 4 or target.shape[1] != 1:
            raise ValueError(
                f"generator expects (N, 1, H, W) input, got {target.shape}")
        skips: List[nn.Tensor] = []
        x = target
        for down in self.downs:
            x = down(x)
            skips.append(x)
        skips.pop()  # bottleneck is not its own skip
        for up in self.ups:
            x = up(x, skips.pop())
        logits = self.head(x)
        if self.residual_scale:
            logits = logits + self.residual_scale * (2.0 * target - 1.0)
        return logits.sigmoid()

    def generate(self, target_image: np.ndarray) -> np.ndarray:
        """Single-image inference without autograd (Fig. 6 stage)."""
        was_training = self.training
        self.eval()
        try:
            with nn.no_grad():
                batch = nn.Tensor(
                    np.asarray(target_image, dtype=float)[None, None])
                mask = self.forward(batch)
            return mask.data[0, 0]
        finally:
            self.train(was_training)
