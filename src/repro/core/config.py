"""Configuration for the GAN-OPC networks and training flows.

Collects every hyper-parameter of Sections 3.1-3.4 in one place.  The
paper trains 256x256 inputs (2048 px clips pooled 8x8) for ~10 GPU
hours; :meth:`GanOpcConfig.paper` records those settings, while
:meth:`GanOpcConfig.small` scales the same architecture down for
CPU-sized experiments (the default for tests and benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class GanOpcConfig:
    """Hyper-parameters of the GAN-OPC model and training.

    Attributes
    ----------
    grid:
        Network input/output resolution (must match the litho grid and
        be divisible by ``2 ** len(generator_channels)``).
    generator_channels:
        Encoder feature widths per downsampling level; the decoder
        mirrors them.  Each level halves the spatial resolution.
    discriminator_channels:
        Feature widths of the discriminator's strided conv stack.
    alpha:
        Weight of the ``||M* - G(Z_t)||^2`` regression term in the
        generator objective (Eq. 9 / line 7 of Algorithm 1); applied to
        the per-pixel mean so it is resolution-independent.
    learning_rate_g / learning_rate_d:
        Adam learning rates for generator / discriminator.
    pretrain_learning_rate:
        Learning rate of the ILT-guided pre-training phase
        (Algorithm 2).
    batch_size:
        Mini-batch size ``m`` in Algorithms 1 and 2.
    discriminator_loss:
        ``"paper"`` uses the literal Algorithm 1 line 8 objective
        ``log D(fake) - log D(real)`` (with probability clamping);
        ``"bce"`` uses the standard saturating GAN cross-entropy.  Both
        drive ``D(fake) -> 0`` and ``D(real) -> 1``; the unbounded paper
        objective saturates the discriminator quickly at CPU batch
        sizes, so ``"bce"`` is the default (a stabilization documented
        in DESIGN.md — the min-max structure of Eq. 10 is unchanged).
    label_smoothing:
        Real-label smoothing for discriminator stability (0 disables).
    litho_weight:
        Weight of the corner-aggregated lithography error added to the
        generator objective during adversarial training (0 disables —
        the paper's Algorithm 1).  With a weight, the trainer injects
        the analytic litho gradient (averaged or maxed over its
        condition stack) alongside the adversarial/regression backward
        pass, making the generator corner-robust.
    pw_objective:
        Corner aggregation for the litho term: ``"weighted"`` (corner
        weights, normalized) or ``"worst"`` (per-sample worst corner).
    seed:
        Seed for weight initialization and batch sampling.
    """

    grid: int = 256
    generator_channels: Tuple[int, ...] = (16, 32, 64, 128)
    discriminator_channels: Tuple[int, ...] = (16, 32, 64, 128)
    alpha: float = 200.0
    learning_rate_g: float = 1e-3
    learning_rate_d: float = 2e-4
    pretrain_learning_rate: float = 1e-3
    batch_size: int = 4
    discriminator_loss: str = "bce"
    label_smoothing: float = 0.1
    litho_weight: float = 0.0
    pw_objective: str = "weighted"
    seed: int = 0

    def __post_init__(self):
        factor = 2 ** len(self.generator_channels)
        if self.grid % factor:
            raise ValueError(
                f"grid {self.grid} not divisible by the generator's total "
                f"downsampling factor {factor}")
        if self.alpha < 0:
            raise ValueError("alpha must be nonnegative")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.discriminator_loss not in ("paper", "bce"):
            raise ValueError(
                f"unknown discriminator_loss {self.discriminator_loss!r}")
        if not 0.0 <= self.label_smoothing < 0.5:
            raise ValueError("label_smoothing must be in [0, 0.5)")
        if self.litho_weight < 0:
            raise ValueError("litho_weight must be nonnegative")
        if self.pw_objective not in ("weighted", "worst"):
            raise ValueError(
                f"pw_objective must be 'weighted' or 'worst', "
                f"got {self.pw_objective!r}")
        if min(self.learning_rate_g, self.learning_rate_d,
               self.pretrain_learning_rate) <= 0:
            raise ValueError("learning rates must be positive")

    @staticmethod
    def paper() -> "GanOpcConfig":
        """Paper-scale settings (256 px, four downsampling levels)."""
        return GanOpcConfig()

    @staticmethod
    def small(grid: int = 64) -> "GanOpcConfig":
        """CPU-scale settings preserving the architecture shape."""
        return GanOpcConfig(grid=grid,
                            generator_channels=(8, 16, 32),
                            discriminator_channels=(8, 16, 32))
