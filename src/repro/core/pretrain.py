"""ILT-guided generator pre-training (Section 3.4, Algorithm 2).

Training the full GAN from random weights converges poorly; the paper's
fix exploits that ILT and back-propagation are both gradient descent:
wire the *lithography* error directly into the generator.  Each
pre-training step

1. forwards a mini-batch of targets through the generator,
2. simulates each generated mask to a wafer image (Eqs. 2-3 relaxed),
3. evaluates ``E = ||Z - Z_t||^2`` (Eq. 11),
4. back-propagates ``dE/dM`` (Eq. 14) through the generator via the
   chain rule ``dE/dM * dM/dW_g`` (line 8 of Algorithm 2),
5. updates ``W_g`` with the mini-batch gradient (Eq. 15).

Step 4 is exactly ``mask_tensor.backward(dE_dM)`` in the autograd
substrate — the analytic litho gradient is injected as the upstream
gradient of the network output.

:class:`GroundTruthPretrainer` implements the alternative the paper
argues against ("directly back-propagate the mask error to neuron
weights"), kept for the comparison benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.obs import trace

from .. import nn
from ..litho.conditions import ConditionSet
from ..litho.config import LithoConfig
from ..litho.engine import LithoEngine
from ..litho.kernels import KernelSet, build_kernels
from ..layoutgen.dataset import SyntheticDataset
from ..runtime import RunConfig, TrainingHarness
from .config import GanOpcConfig
from .generator import MaskGenerator


@dataclass
class PretrainHistory:
    """Per-iteration records of a pre-training run."""

    litho_error: List[float] = field(default_factory=list)
    runtime_seconds: float = 0.0

    @property
    def iterations(self) -> int:
        return len(self.litho_error)


class ILTGuidedPretrainer:
    """Algorithm 2: initialize the generator with lithography guidance.

    Parameters
    ----------
    generator:
        The generator to pre-train (modified in place).
    litho_config:
        Lithography model whose error guides the updates.
    config:
        Training hyper-parameters (batch size, learning rate).
    kernels:
        Optional prebuilt kernel set.
    conditions:
        Optional process-window corner stack: the guiding litho error
        becomes the ``config.pw_objective`` aggregation over the
        corners (weighted average or per-sample worst), making the
        pre-trained generator corner-robust.  ``None`` keeps the
        paper's nominal-only Algorithm 2.
    """

    def __init__(self, generator: MaskGenerator,
                 litho_config: Optional[LithoConfig] = None,
                 config: Optional[GanOpcConfig] = None,
                 kernels: Optional[KernelSet] = None,
                 engine: Optional[LithoEngine] = None,
                 conditions: Optional[ConditionSet] = None):
        self.generator = generator
        self.litho_config = litho_config or LithoConfig.paper()
        self.config = config or GanOpcConfig()
        if engine is None:
            engine = LithoEngine.for_kernels(
                kernels or build_kernels(self.litho_config))
        self.engine = engine
        self.kernels = engine.kernels
        self.conditions = conditions
        self._condition_engine = (
            LithoEngine.for_conditions(self.kernels, conditions,
                                       engine.precision)
            if conditions is not None else None)
        self.optimizer = nn.Adam(generator.parameters(),
                                 lr=self.config.pretrain_learning_rate)

    def batch_litho_gradient(self, masks: np.ndarray, targets: np.ndarray):
        """Litho errors and ``dE/dM`` for an NCHW batch of masks.

        Returns ``(errors, gradients)`` with gradients shaped like the
        mask batch.  The generator output is already sigmoid-bounded, so
        it plays the role of the relaxed mask ``M_b`` directly.  The
        whole mini-batch goes through the engine's batched forward and
        adjoint FFT pipeline in one call (no per-sample loop); with a
        condition stack, every corner shares that same pipeline.
        """
        cfg = self.litho_config
        if self._condition_engine is not None:
            errors, gradients = \
                self._condition_engine.condition_error_and_gradient_wrt_mask(
                    masks[:, 0], targets[:, 0],
                    objective=self.config.pw_objective,
                    threshold=cfg.threshold,
                    resist_steepness=cfg.resist_steepness)
            return errors, gradients[:, None]
        errors, gradients = self.engine.error_and_gradient_wrt_mask(
            masks[:, 0], targets[:, 0], threshold=cfg.threshold,
            resist_steepness=cfg.resist_steepness)
        return errors, gradients[:, None]

    def step(self, targets: np.ndarray,
             harness: Optional[TrainingHarness] = None) -> float:
        """One Algorithm 2 iteration on a target batch; returns the
        mini-batch mean lithography error.

        With a harness, the weight update is guarded: a non-finite
        litho error or gradient norm triggers the configured divergence
        policy instead of poisoning the generator.
        """
        step_started = time.perf_counter()
        with trace.span("pretrain.step", batch=len(targets)):
            self.optimizer.zero_grad()
            # Feed the network in its own dtype: an f32 generator must
            # not have its GEMMs promoted to f64 by a double batch.
            dtype = nn.compute_dtype(self.generator)
            batch = nn.Tensor(np.asarray(targets, dtype=dtype))
            with trace.span("pretrain.generator_forward"):
                masks = self.generator(batch)
            with trace.span("pretrain.litho_gradient"):
                errors, gradients = self.batch_litho_gradient(masks.data,
                                                              targets)
            error = float(errors.mean())

            # Line 8: accumulate dE/dM * dM/dW_g; mini-batch averaging
            # happens here (Eq. 15's lambda/m).  The litho gradient is
            # cast to the network dtype so the backward pass stays in
            # the generator's precision even with a mixed-precision
            # engine (no-op when dtypes already match).
            def backward():
                masks.backward(
                    np.asarray(gradients, dtype=dtype) / len(targets))

            with trace.span("pretrain.update"):
                if harness is None:
                    backward()
                    self.optimizer.step()
                else:
                    harness.apply_update({"litho_error": error}, backward,
                                         self.optimizer, tag="generator")
        self.engine.metrics.histogram("pretrain.step_seconds").observe(
            time.perf_counter() - step_started)
        return error

    def train(self, dataset: SyntheticDataset, iterations: int,
              rng: Optional[np.random.Generator] = None,
              verbose: bool = False,
              runtime: Optional[RunConfig] = None) -> PretrainHistory:
        """Run pre-training for a number of iterations.

        Targets are sampled with replacement from the dataset (line 2 of
        Algorithm 2); reference masks are *not* needed — that is the
        point of lithography guidance.

        ``runtime`` enables the robustness substrate: checkpoint/resume
        (bit-exact, including the sampling RNG), divergence guards and
        JSONL telemetry.  Without it the loop behaves exactly as
        before.
        """
        rng = rng or np.random.default_rng(self.config.seed)
        history = PretrainHistory()
        series = {"litho_error": history.litho_error}
        harness: Optional[TrainingHarness] = None
        start_iteration = 0
        if runtime is not None:
            harness = TrainingHarness(
                "pretrain", modules={"generator": self.generator},
                optimizers={"generator": self.optimizer},
                config=runtime, engine=self.engine)
            start_iteration = harness.begin(rng, series, iterations)
        start = time.perf_counter()
        self.generator.train()
        for iteration in range(start_iteration, iterations):
            if harness is not None:
                harness.begin_iteration(iteration)
            indices = rng.choice(len(dataset), size=self.config.batch_size,
                                 replace=len(dataset) < self.config.batch_size)
            targets = dataset.targets_batch(indices)
            error = self.step(targets, harness=harness)
            history.litho_error.append(error)
            if harness is not None:
                harness.end_iteration(iteration, rng, series,
                                      {"litho_error": error})
            if verbose and (iteration + 1) % 10 == 0:
                print(f"[pretrain {iteration + 1}/{iterations}] "
                      f"litho error {error:.1f}")
        history.runtime_seconds = time.perf_counter() - start
        if harness is not None:
            harness.finish(max(iterations, start_iteration), rng, series)
        return history


class GroundTruthPretrainer:
    """Pre-training towards reference masks (the paper's strawman).

    Minimizes ``||M* - G(Z_t)||^2`` directly.  Compared against
    lithography guidance in the ablation benchmark: it requires ground
    truth for every sample and offers no step-by-step litho feedback, so
    the paper reports it is more prone to poor local minima.
    """

    def __init__(self, generator: MaskGenerator,
                 config: Optional[GanOpcConfig] = None):
        self.generator = generator
        self.config = config or GanOpcConfig()
        self.optimizer = nn.Adam(generator.parameters(),
                                 lr=self.config.pretrain_learning_rate)

    def step(self, targets: np.ndarray, reference_masks: np.ndarray) -> float:
        self.optimizer.zero_grad()
        dtype = nn.compute_dtype(self.generator)
        masks = self.generator(nn.Tensor(np.asarray(targets, dtype=dtype)))
        loss = nn.mse_loss(masks,
                           nn.Tensor(np.asarray(reference_masks, dtype=dtype)),
                           reduction="mean")
        loss.backward()
        self.optimizer.step()
        return float(loss.data)

    def train(self, dataset: SyntheticDataset, iterations: int,
              rng: Optional[np.random.Generator] = None) -> PretrainHistory:
        rng = rng or np.random.default_rng(self.config.seed)
        history = PretrainHistory()
        start = time.perf_counter()
        self.generator.train()
        for _ in range(iterations):
            indices = rng.choice(len(dataset), size=self.config.batch_size,
                                 replace=len(dataset) < self.config.batch_size)
            targets, masks = dataset.pairs_batch(indices)
            history.litho_error.append(self.step(targets, masks))
        history.runtime_seconds = time.perf_counter() - start
        return history
