"""The end-to-end GAN-OPC mask optimization flow (Figure 6).

At inference the trained generator produces a quasi-optimal mask from
the target in a single forward pass ("0.2 s per image, ignorable"), and
a short ILT refinement polishes it.  The paper's headline numbers come
from this flow: refinement from the generator's warm start stops
earlier *and* at lower L2 than ILT from scratch (Table 2: ~0.91x L2 at
~0.49x runtime).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.obs import trace

from ..ilt.optimizer import ILTConfig, ILTOptimizer, ILTResult
from ..litho.conditions import ConditionSet
from ..litho.config import LithoConfig
from ..litho.engine import LithoEngine
from ..litho.kernels import KernelSet, build_kernels
from ..runtime import RunLogger
from .generator import MaskGenerator


@dataclass
class FlowResult:
    """Outcome of one GAN-OPC flow run on a target clip.

    Attributes
    ----------
    mask:
        Final binary mask after ILT refinement.
    generated_mask:
        The generator's raw (relaxed) output before refinement.
    l2:
        Discrete squared-L2 error of :attr:`mask` in pixels.
    generation_seconds / refinement_seconds:
        Timing split of the two flow stages; their sum is the "RT"
        column of Table 2.
    ilt_result:
        Full refinement record (histories, iteration count).
    """

    mask: np.ndarray
    generated_mask: np.ndarray
    l2: float
    generation_seconds: float
    refinement_seconds: float
    ilt_result: ILTResult

    @property
    def runtime_seconds(self) -> float:
        return self.generation_seconds + self.refinement_seconds


class GanOpcFlow:
    """Generator inference + ILT refinement (Figure 6).

    Parameters
    ----------
    generator:
        A trained :class:`~repro.core.generator.MaskGenerator`.
    litho_config:
        Lithography model used by the refiner.
    refine_config:
        ILT settings for the refinement stage; defaults to a short run
        with early stopping — the warm start makes long runs pointless.
    logger:
        Optional :class:`~repro.runtime.RunLogger`; each
        :meth:`optimize` call then emits one schema-validated ``flow``
        telemetry record with the stage wall-clocks and the
        litho-engine call counts it consumed.
    conditions:
        Optional process-window corner stack handed to the refiner —
        refinement then descends the ``refine_config.pw_objective``
        corner aggregation (default ``"weighted"`` when a stack is
        given) instead of the nominal-only objective.
    """

    def __init__(self, generator: MaskGenerator,
                 litho_config: Optional[LithoConfig] = None,
                 refine_config: Optional[ILTConfig] = None,
                 kernels: Optional[KernelSet] = None,
                 engine: Optional[LithoEngine] = None,
                 logger: Optional[RunLogger] = None,
                 conditions: Optional[ConditionSet] = None):
        self.generator = generator
        self.litho_config = litho_config or LithoConfig.paper()
        if engine is None:
            engine = LithoEngine.for_kernels(
                kernels or build_kernels(self.litho_config))
        self.engine = engine
        self.logger = logger
        self.conditions = conditions
        self.refiner = ILTOptimizer(
            self.litho_config,
            refine_config or ILTConfig(max_iterations=50, patience=4),
            engine=engine, conditions=conditions)

    def optimize(self, target: np.ndarray,
                 refine_iterations: Optional[int] = None) -> FlowResult:
        """Run the full flow on a binary target image."""
        target = np.asarray(target, dtype=float)
        litho_before = (self.engine.stats.snapshot()
                        if self.logger is not None else None)

        start = time.perf_counter()
        with trace.span("flow.generate"):
            generated = self.generator.generate(target)
        generation_seconds = time.perf_counter() - start

        with trace.span("flow.refine"):
            ilt_result = self.refiner.optimize(
                target, initial_mask=generated,
                max_iterations=refine_iterations)
        metrics = self.engine.metrics
        metrics.histogram("flow.generation_seconds").observe(
            generation_seconds)
        metrics.histogram("flow.refinement_seconds").observe(
            ilt_result.runtime_seconds)

        if self.logger is not None:
            self.logger.event(
                "flow",
                generation_seconds=generation_seconds,
                refinement_seconds=ilt_result.runtime_seconds,
                refine_iterations=int(ilt_result.iterations),
                l2=float(ilt_result.l2),
                litho=self.engine.stats.delta(litho_before))

        return FlowResult(
            mask=ilt_result.mask,
            generated_mask=generated,
            l2=ilt_result.l2,
            generation_seconds=generation_seconds,
            refinement_seconds=ilt_result.runtime_seconds,
            ilt_result=ilt_result,
        )

    def optimize_batch(self, targets: np.ndarray,
                       refine_iterations: Optional[int] = None,
                       workers: int = 1) -> List[FlowResult]:
        """Run the flow on a target stack ``(N, grid, grid)``.

        ``workers > 1`` fans one clip per worker process (generator
        weights broadcast once per worker, images through shared
        memory); float64 results are bit-exact versus the serial loop.
        """
        targets = np.asarray(targets, dtype=float)
        if targets.ndim != 3:
            raise ValueError(
                f"targets must be (N, g, g), got shape {targets.shape}")
        if workers <= 1:
            return [self.optimize(t, refine_iterations=refine_iterations)
                    for t in targets]
        from ..parallel.flow import parallel_flow
        return parallel_flow(self.generator, targets, self.litho_config,
                             self.refiner.config,
                             refine_iterations=refine_iterations,
                             workers=workers,
                             precision=self.engine.precision,
                             conditions=self.conditions)
