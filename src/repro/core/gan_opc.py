"""GAN-OPC adversarial training (Section 3.3, Algorithm 1).

The min-max objective (Eq. 10) combines three terms:

* generator adversarial term  ``-log D(Z_t, G(Z_t))``       (Eq. 7),
* discriminator term ``log D(Z_t, M*)`` vs ``log D(Z_t, G)`` (Eq. 8),
* generator regression term ``alpha * ||M* - G(Z_t)||^2``    (Eq. 9),

trained alternately: each iteration samples a mini-batch of
(target, reference-mask) pairs, updates the generator on Eq. 7 + Eq. 9,
then updates the discriminator on Eq. 8.  As in the paper, the min-max
problem is converted into two minimizations so both networks take plain
gradient-descent steps.

The ``l2_to_reference`` series of :class:`TrainingHistory` is the
quantity plotted in Figure 7 (squared L2 between generator outputs and
ground-truth masks versus training step).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.obs import trace
from repro.obs.registry import default_registry

from .. import nn
from ..layoutgen.dataset import SyntheticDataset
from ..litho.conditions import ConditionSet
from ..litho.config import LithoConfig
from ..litho.engine import LithoEngine
from ..litho.kernels import build_kernels
from ..runtime import RunConfig, TrainingHarness
from .config import GanOpcConfig
from .discriminator import PairDiscriminator
from .generator import MaskGenerator

_EPS = 1e-7


@dataclass
class TrainingHistory:
    """Per-iteration training records (Figure 7 raw data)."""

    generator_loss: List[float] = field(default_factory=list)
    discriminator_loss: List[float] = field(default_factory=list)
    l2_to_reference: List[float] = field(default_factory=list)
    runtime_seconds: float = 0.0

    @property
    def iterations(self) -> int:
        return len(self.generator_loss)


class GanOpcTrainer:
    """Alternating generator/discriminator training (Algorithm 1).

    Parameters
    ----------
    generator / discriminator:
        Networks to train (modified in place).  Any discriminator with
        the ``D(target, mask)`` interface works — the ablation passes a
        :class:`~repro.core.discriminator.MaskOnlyDiscriminator`.
    config:
        Hyper-parameters; ``config.alpha`` weighs the regression term
        and ``config.litho_weight`` the optional corner-robust litho
        guidance term.
    litho_config / engine / conditions:
        Only consulted when ``config.litho_weight > 0``: the generator
        objective gains ``litho_weight * E_pw(G(Z_t), Z_t)`` with
        ``E_pw`` the ``config.pw_objective`` aggregation of the relaxed
        litho error over the condition stack.  ``engine`` takes
        precedence; otherwise one is built from ``litho_config`` (or
        ``LithoConfig.small(config.grid)``) and ``conditions`` (default
        nominal).  The analytic Eq. 14 gradient is injected as an
        additional upstream gradient of the generator output, exactly
        like Algorithm 2 pre-training.
    """

    def __init__(self, generator: MaskGenerator,
                 discriminator: PairDiscriminator,
                 config: Optional[GanOpcConfig] = None,
                 litho_config: Optional[LithoConfig] = None,
                 engine: Optional[LithoEngine] = None,
                 conditions: Optional[ConditionSet] = None):
        self.generator = generator
        self.discriminator = discriminator
        self.config = config or GanOpcConfig()
        self._litho_engine: Optional[LithoEngine] = None
        if self.config.litho_weight > 0:
            if engine is None:
                litho_config = litho_config or LithoConfig.small(
                    self.config.grid)
                engine = LithoEngine.for_kernels(build_kernels(litho_config))
            if conditions is not None and engine.conditions != conditions:
                engine = LithoEngine.for_conditions(engine.kernels,
                                                    conditions,
                                                    engine.precision)
            self._litho_engine = engine
        self.optimizer_g = nn.Adam(generator.parameters(),
                                   lr=self.config.learning_rate_g)
        self.optimizer_d = nn.Adam(discriminator.parameters(),
                                   lr=self.config.learning_rate_d)
        # Per-phase step timing lands in the process-wide registry (the
        # trainer owns no nominal litho engine of its own).
        self.metrics = default_registry()

    # ------------------------------------------------------------------
    def generator_step(self, targets: np.ndarray,
                       reference_masks: np.ndarray,
                       harness: Optional[TrainingHarness] = None
                       ) -> Tuple[float, float, np.ndarray]:
        """Update G on ``-log D(Z_t, G(Z_t)) + alpha ||M* - G||^2``.

        Returns ``(loss, l2_sum_per_image, fake_masks)`` — the fakes are
        reused (detached) by the discriminator step, saving a forward
        pass like line 5 of Algorithm 1.  With a harness the update is
        guarded: a non-finite loss or gradient norm triggers the
        configured divergence policy before any weight is touched.
        """
        step_started = time.perf_counter()
        with trace.span("gan.generator_step", batch=len(targets)):
            # Feed both networks in the generator's compute dtype; f64
            # targets/labels would otherwise promote every GEMM and the
            # loss arithmetic back to double under --precision f32.
            dtype = nn.compute_dtype(self.generator)
            target_t = nn.Tensor(np.asarray(targets, dtype=dtype))
            reference_t = nn.Tensor(np.asarray(reference_masks, dtype=dtype))

            self.optimizer_g.zero_grad()
            self.discriminator.zero_grad()
            fake = self.generator(target_t)
            d_fake = self.discriminator(target_t, fake)
            adversarial = nn.bce_loss(
                d_fake, nn.ones(d_fake.shape, dtype=d_fake.data.dtype))
            regression = nn.mse_loss(fake, reference_t, reduction="mean")
            loss = adversarial + self.config.alpha * regression
            loss_value = float(loss.data)

            # Corner-robust litho guidance: the analytic process-window
            # gradient (Eq. 14 aggregated over the condition stack) is
            # injected as a second upstream gradient of the generator
            # output, the same mechanism as Algorithm 2 pre-training.
            backward = loss.backward
            if self._litho_engine is not None:
                weight = self.config.litho_weight
                cfg = self._litho_engine.config
                with trace.span("gan.litho_gradient", batch=len(targets)):
                    litho_errors, litho_grads = \
                        self._litho_engine.condition_error_and_gradient_wrt_mask(
                            fake.data[:, 0], targets[:, 0],
                            objective=self.config.pw_objective,
                            threshold=cfg.threshold,
                            resist_steepness=cfg.resist_steepness)
                loss_value += weight * float(np.mean(litho_errors))
                upstream = np.asarray(
                    (weight / len(targets)) * litho_grads[:, None],
                    dtype=dtype)

                def backward(upstream=upstream):
                    loss.backward()
                    fake.backward(upstream)

            if harness is None:
                backward()
                self.optimizer_g.step()
            else:
                harness.apply_update({"generator_loss": loss_value},
                                     backward, self.optimizer_g,
                                     tag="generator")
        self.metrics.histogram("gan.generator_step_seconds").observe(
            time.perf_counter() - step_started)

        diff = fake.data - reference_masks
        l2_sum = float(np.sum(diff * diff) / len(targets))
        return loss_value, l2_sum, fake.data

    def discriminator_step(self, targets: np.ndarray,
                           reference_masks: np.ndarray,
                           fake_masks: np.ndarray,
                           harness: Optional[TrainingHarness] = None
                           ) -> float:
        """Update D on Eq. 8 (paper objective) or standard BCE."""
        step_started = time.perf_counter()
        with trace.span("gan.discriminator_step", batch=len(targets)):
            dtype = nn.compute_dtype(self.discriminator)
            target_t = nn.Tensor(np.asarray(targets, dtype=dtype))

            self.optimizer_d.zero_grad()
            self.generator.zero_grad()
            d_fake = self.discriminator(
                target_t, nn.Tensor(np.asarray(fake_masks, dtype=dtype)))
            d_real = self.discriminator(
                target_t, nn.Tensor(np.asarray(reference_masks, dtype=dtype)))

            if self.config.discriminator_loss == "paper":
                # Literal Algorithm 1 line 8, clamped for finiteness:
                # l_d = log D(fake) - log D(real).
                loss = (d_fake.clip(_EPS, 1.0).log().mean()
                        - d_real.clip(_EPS, 1.0).log().mean())
            else:
                real_label = 1.0 - self.config.label_smoothing
                loss = (nn.bce_loss(
                            d_fake,
                            nn.zeros(d_fake.shape, dtype=d_fake.data.dtype))
                        + nn.bce_loss(
                            d_real,
                            nn.full(d_real.shape, real_label,
                                    dtype=d_real.data.dtype)))
            loss_value = float(loss.data)
            if harness is None:
                loss.backward()
                self.optimizer_d.step()
            else:
                harness.apply_update({"discriminator_loss": loss_value},
                                     loss.backward, self.optimizer_d,
                                     tag="discriminator")
        self.metrics.histogram("gan.discriminator_step_seconds").observe(
            time.perf_counter() - step_started)
        return loss_value

    def train_iteration(self, targets: np.ndarray,
                        reference_masks: np.ndarray,
                        harness: Optional[TrainingHarness] = None
                        ) -> Tuple[float, float, float]:
        """One Algorithm 1 iteration; returns ``(l_g, l_d, l2)``.

        When the generator update diverged (harness action is not
        ``"ok"``), the discriminator step is skipped for the iteration:
        after a rollback the fakes no longer correspond to the restored
        weights, and after a NaN they are not trustworthy inputs.
        """
        loss_g, l2_sum, fake = self.generator_step(targets, reference_masks,
                                                   harness)
        if harness is not None and harness.last_action != "ok":
            return loss_g, float("nan"), l2_sum
        loss_d = self.discriminator_step(targets, reference_masks, fake,
                                         harness)
        return loss_g, loss_d, l2_sum

    # ------------------------------------------------------------------
    def train(self, dataset: SyntheticDataset, iterations: int,
              rng: Optional[np.random.Generator] = None,
              verbose: bool = False,
              runtime: Optional[RunConfig] = None) -> TrainingHistory:
        """Run adversarial training, sampling mini-batches of
        (target, reference-mask) pairs from the dataset.

        ``runtime`` enables the robustness substrate: checkpoint/resume
        (bit-exact, including the sampling RNG and both Adam states),
        divergence guards and JSONL telemetry.  Without it the loop
        behaves exactly as before.
        """
        rng = rng or np.random.default_rng(self.config.seed)
        history = TrainingHistory()
        series = {"generator_loss": history.generator_loss,
                  "discriminator_loss": history.discriminator_loss,
                  "l2_to_reference": history.l2_to_reference}
        harness: Optional[TrainingHarness] = None
        start_iteration = 0
        if runtime is not None:
            harness = TrainingHarness(
                "gan",
                modules={"generator": self.generator,
                         "discriminator": self.discriminator},
                optimizers={"generator": self.optimizer_g,
                            "discriminator": self.optimizer_d},
                config=runtime)
            start_iteration = harness.begin(rng, series, iterations)
        start = time.perf_counter()
        self.generator.train()
        self.discriminator.train()
        for iteration in range(start_iteration, iterations):
            if harness is not None:
                harness.begin_iteration(iteration)
            indices = rng.choice(len(dataset), size=self.config.batch_size,
                                 replace=len(dataset) < self.config.batch_size)
            targets, masks = dataset.pairs_batch(indices)
            loss_g, loss_d, l2_sum = self.train_iteration(targets, masks,
                                                          harness)
            history.generator_loss.append(loss_g)
            history.discriminator_loss.append(loss_d)
            history.l2_to_reference.append(l2_sum)
            if harness is not None:
                harness.end_iteration(
                    iteration, rng, series,
                    {"generator_loss": loss_g,
                     "discriminator_loss": loss_d,
                     "l2_to_reference": l2_sum})
            if verbose and (iteration + 1) % 10 == 0:
                print(f"[gan {iteration + 1}/{iterations}] "
                      f"l_g {loss_g:.3f} l_d {loss_d:.3f} l2 {l2_sum:.1f}")
        history.runtime_seconds = time.perf_counter() - start
        if harness is not None:
            harness.finish(max(iterations, start_iteration), rng, series)
        return history
