"""The GAN-OPC mask generator (Section 3.1, Figure 4).

A conventional GAN generator deconvolves a random vector into an image;
that architecture cannot consume a target clip, so the paper replaces
it with a convolutional **auto-encoder**: a stacked conv encoder
performs "hierarchical layout feature abstractions" and a deconv
decoder "predicts the pixel-based mask correction with respect to the
target" from the bottleneck features.

The generator maps a target batch ``(N, 1, g, g)`` to a mask batch of
the same shape with values in (0, 1) (sigmoid output — the relaxed mask
the litho engine and discriminator consume).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import nn


def _encoder_block(in_ch: int, out_ch: int, rng: np.random.Generator) -> nn.Sequential:
    """Stride-2 conv + batch-norm + LeakyReLU: one abstraction level."""
    return nn.Sequential(
        nn.Conv2d(in_ch, out_ch, kernel_size=3, stride=2, padding=1, rng=rng),
        nn.BatchNorm2d(out_ch),
        nn.LeakyReLU(0.2),
    )


def _decoder_block(in_ch: int, out_ch: int, rng: np.random.Generator) -> nn.Sequential:
    """Stride-2 deconv + batch-norm + ReLU: one reconstruction level."""
    return nn.Sequential(
        nn.ConvTranspose2d(in_ch, out_ch, kernel_size=4, stride=2, padding=1,
                           rng=rng),
        nn.BatchNorm2d(out_ch),
        nn.ReLU(),
    )


class MaskGenerator(nn.Module):
    """Auto-encoder generator ``G(Z_t) -> M``.

    The decoder "predicts the pixel-based mask *correction* with respect
    to the target" (Section 3.1), which this implementation realizes
    literally: the decoder emits correction logits that are added to a
    scaled copy of the target before the output sigmoid
    (``M = sigma(decoder(encoder(Z_t)) + residual_scale * (2 Z_t - 1))``).
    A freshly initialized generator therefore already reproduces a
    softened target — the same starting point ILT uses — and training
    only has to learn the OPC correction on top.  Set
    ``residual_scale=0`` for a plain auto-encoder (the ablation).

    Parameters
    ----------
    channels:
        Encoder widths per level; the decoder mirrors them in reverse.
        Spatial resolution halves per encoder level.
    residual_scale:
        Strength of the target skip path into the output logits.
    rng:
        Initialization RNG (deterministic weights for a fixed seed).

    >>> import numpy as np
    >>> from repro import nn
    >>> g = MaskGenerator(channels=(4, 8), rng=np.random.default_rng(0))
    >>> out = g(nn.Tensor(np.zeros((2, 1, 16, 16))))
    >>> out.shape
    (2, 1, 16, 16)
    """

    def __init__(self, channels: Tuple[int, ...] = (16, 32, 64, 128),
                 residual_scale: float = 2.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not channels:
            raise ValueError("generator needs at least one channel level")
        if residual_scale < 0:
            raise ValueError("residual_scale must be nonnegative")
        rng = rng or np.random.default_rng()
        self.channels = tuple(channels)
        self.residual_scale = float(residual_scale)

        encoder_layers = []
        in_ch = 1
        for out_ch in channels:
            encoder_layers.append(_encoder_block(in_ch, out_ch, rng))
            in_ch = out_ch
        self.encoder = nn.Sequential(*encoder_layers)

        decoder_layers = []
        reversed_channels = list(channels[::-1][1:]) + [channels[0]]
        for out_ch in reversed_channels[:-1]:
            decoder_layers.append(_decoder_block(in_ch, out_ch, rng))
            in_ch = out_ch
        # Final level upsamples to full resolution and emits one channel
        # of correction logits (the sigmoid is applied in forward, after
        # the target skip path is added).
        decoder_layers.append(nn.Sequential(
            nn.ConvTranspose2d(in_ch, channels[0], kernel_size=4, stride=2,
                               padding=1, rng=rng),
            nn.ReLU(),
            nn.Conv2d(channels[0], 1, kernel_size=3, padding=1, rng=rng),
        ))
        self.decoder = nn.Sequential(*decoder_layers)

    def forward(self, target: nn.Tensor) -> nn.Tensor:
        """Generate masks for a target batch ``(N, 1, g, g)``."""
        if target.ndim != 4 or target.shape[1] != 1:
            raise ValueError(
                f"generator expects (N, 1, H, W) input, got {target.shape}")
        logits = self.decoder(self.encoder(target))
        if self.residual_scale:
            logits = logits + self.residual_scale * (2.0 * target - 1.0)
        return logits.sigmoid()

    def generate(self, target_image: np.ndarray) -> np.ndarray:
        """Inference convenience: single 2-D target -> single 2-D mask,
        without building an autograd graph (Fig. 6 generation stage)."""
        was_training = self.training
        self.eval()
        try:
            # Feed the network in its own precision (see nn.to_dtype) so
            # an f32 generator runs every GEMM in single precision.
            dtype = next(self.parameters()).data.dtype
            with nn.no_grad():
                batch = nn.Tensor(
                    np.asarray(target_image, dtype=dtype)[None, None])
                mask = self.forward(batch)
            return mask.data[0, 0]
        finally:
            self.train(was_training)
