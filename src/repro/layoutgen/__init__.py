"""``repro.layoutgen`` — synthetic training-layout library (Section 4).

Rule-driven random M1 topology synthesis under the Table 1 design rules
(:mod:`topology`) and target/reference-mask dataset assembly with ILT
ground truth (:mod:`dataset`).
"""

from .chip import ChipConfig, synthesize_chip
from .dataset import SyntheticDataset, TargetMaskPair
from .topology import LayoutSynthesizer, TopologyConfig

__all__ = ["TopologyConfig", "LayoutSynthesizer",
           "SyntheticDataset", "TargetMaskPair",
           "ChipConfig", "synthesize_chip"]
