"""Synthetic chip-scale layouts for the tiled full-chip flow.

Scales the clip synthesizer of :mod:`~repro.layoutgen.topology` to
layouts far beyond one engine window: an ``n x n`` array of
independently synthesized cells (each a design-rule-clean M1 clip with
its own child seed, so any cell regenerates independently), plus
*spanning wires* routed along the margin channels between cells so
that geometry crosses tile seams — without them a cell-aligned tiling
would make the stitch-parity tests vacuous.

The chip is deliberately sparse-able: ``fill_probability < 1`` leaves
empty cells, exercising the tiled runner's empty-window skip at scale
(a thousands-of-tiles chip is mostly field).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..geometry.layout import Layout
from ..geometry.shapes import Rect
from .topology import LayoutSynthesizer, TopologyConfig


@dataclass(frozen=True)
class ChipConfig:
    """Parameters of the synthetic chip.

    Attributes
    ----------
    cells:
        Cells per side; the chip spans ``cells * cell_extent`` nm.
    cell_extent:
        Side of one cell in nm (one or a few engine tiles).
    fill_probability:
        Chance a cell receives synthesized geometry; the rest stay
        empty field.
    spanning_wire_probability:
        Chance each inter-cell channel carries a full-length wire
        crossing every perpendicular tile seam.
    wire_width:
        Spanning-wire width in nm (defaults to the cell design rules'
        critical dimension when 0).
    topology:
        Per-cell synthesis template; its ``extent`` is replaced by
        ``cell_extent``.
    """

    cells: int = 4
    cell_extent: float = 512.0
    fill_probability: float = 0.9
    spanning_wire_probability: float = 1.0
    wire_width: float = 0.0
    topology: Optional[TopologyConfig] = None

    def __post_init__(self):
        if self.cells < 1:
            raise ValueError(f"cells must be >= 1, got {self.cells}")
        if self.cell_extent <= 0:
            raise ValueError(
                f"cell_extent must be positive, got {self.cell_extent}")
        if not 0.0 <= self.fill_probability <= 1.0:
            raise ValueError("fill_probability must be in [0, 1]")
        if not 0.0 <= self.spanning_wire_probability <= 1.0:
            raise ValueError("spanning_wire_probability must be in [0, 1]")
        if self.wire_width < 0:
            raise ValueError("wire_width must be >= 0")

    @property
    def extent(self) -> float:
        return self.cells * self.cell_extent

    def cell_topology(self) -> TopologyConfig:
        if self.topology is None:
            # Scale the keep-out border down with the cell so small
            # cells (a single engine tile) stay synthesizable.
            return TopologyConfig(extent=self.cell_extent,
                                  margin=min(120.0, self.cell_extent / 8.0))
        template = self.topology
        if template.extent != self.cell_extent:
            template = TopologyConfig(
                extent=self.cell_extent, rules=template.rules,
                track_skip_probability=template.track_skip_probability,
                max_width_factor=template.max_width_factor,
                min_segment_factor=template.min_segment_factor,
                max_segment_factor=template.max_segment_factor,
                gap_jitter=template.gap_jitter,
                stub_probability=template.stub_probability,
                margin=template.margin)
        return template


def synthesize_chip(config: Optional[ChipConfig] = None, seed: int = 0,
                    name: str = "chip") -> Layout:
    """Synthesize one chip-scale layout (deterministic in ``seed``)."""
    config = config or ChipConfig()
    topology = config.cell_topology()
    synthesizer = LayoutSynthesizer(topology)
    rules = topology.rules
    if config.wire_width:
        width = config.wire_width
        if width >= 2.0 * topology.margin:
            raise ValueError(
                f"wire_width {width} does not fit the "
                f"{2.0 * topology.margin}nm channel between cell margins")
    else:
        # Default: the critical dimension, narrowed if the margin
        # channel of a small cell cannot hold a full-CD wire.
        width = min(rules.critical_dimension, topology.margin)

    root = np.random.SeedSequence(seed)
    chip_rng = np.random.default_rng(root)
    cell_seeds = root.spawn(config.cells * config.cells)

    chip = Layout(extent=config.extent, name=name)
    for row in range(config.cells):
        for col in range(config.cells):
            child = cell_seeds[row * config.cells + col]
            if chip_rng.random() >= config.fill_probability:
                continue
            cell = synthesizer.generate(np.random.default_rng(child),
                                        name=f"{name}-r{row}c{col}")
            dx = col * config.cell_extent
            dy = row * config.cell_extent
            chip.extend(rect.translated(dx, dy) for rect in cell.rects)

    # Spanning wires down the inter-cell margin channels: each channel
    # is 2*margin wide and free of cell geometry by construction, so
    # the wire (with jitter) can never collide with a cell pattern.
    margin = topology.margin
    jitter_span = max(margin - width, 0.0)
    for boundary in range(1, config.cells):
        at = boundary * config.cell_extent
        if chip_rng.random() < config.spanning_wire_probability:
            offset = float(chip_rng.uniform(-jitter_span / 2.0,
                                            jitter_span / 2.0))
            x0 = at + offset - width / 2.0
            chip.add(Rect(x0, margin, x0 + width, config.extent - margin))
        if chip_rng.random() < config.spanning_wire_probability:
            offset = float(chip_rng.uniform(-jitter_span / 2.0,
                                            jitter_span / 2.0))
            y0 = at + offset - width / 2.0
            chip.add(Rect(margin, y0, config.extent - margin, y0 + width))
    return chip
