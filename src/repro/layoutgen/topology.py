"""Rule-driven synthesis of M1 layout topologies (Section 4).

The paper cannot train a GAN on the ten contest clips alone, so it
synthesizes a 4000-instance library "based on the design specifications
from existing 32nm M1 layout topologies", randomly placing shapes under
the simple design rules of Table 1.  This module reproduces that
generator: track-based wire placement at legal pitch, random segment
lengths with legal tip-to-tip gaps, randomized wire widths, optional
orthogonal stubs forming L/T shapes, and rejection of any stub that
would violate spacing.

Every synthesized clip is design-rule clean by construction; the test
suite verifies this property with the checker over random seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..geometry.design_rules import DesignRuleChecker, DesignRules
from ..geometry.layout import Layout
from ..geometry.shapes import Rect


@dataclass(frozen=True)
class TopologyConfig:
    """Synthesis parameters for random M1 clips.

    Attributes
    ----------
    extent:
        Clip window side in nm.
    rules:
        Design rules the clip must obey (defaults to Table 1).
    track_skip_probability:
        Chance of leaving a routing track empty (controls density).
    max_width_factor:
        Wire widths are drawn uniformly from ``[CD, factor * CD]``.
    min_segment_factor / max_segment_factor:
        Segment lengths are drawn uniformly from
        ``[min_factor * CD, max_factor * CD]``.
    gap_jitter:
        Extra random spacing (nm) added on top of the minimum tip-to-tip
        gap between consecutive segments on a track.
    stub_probability:
        Chance of attempting an orthogonal stub at a segment end
        (creates L-shapes; dropped when it would violate a rule).
    margin:
        Keep-out border inside the window so patterns never touch the
        clip boundary (the litho simulation is periodic).
    """

    extent: float = 2048.0
    rules: DesignRules = DesignRules.iccad32nm()
    track_skip_probability: float = 0.25
    max_width_factor: float = 1.5
    min_segment_factor: float = 2.0
    max_segment_factor: float = 8.0
    gap_jitter: float = 120.0
    stub_probability: float = 0.15
    margin: float = 120.0

    def __post_init__(self):
        if self.extent <= 2 * self.margin + self.rules.critical_dimension:
            raise ValueError(
                f"window extent {self.extent} too small for margin "
                f"{self.margin} and CD {self.rules.critical_dimension}")
        if not 0.0 <= self.track_skip_probability < 1.0:
            raise ValueError("track_skip_probability must be in [0, 1)")
        if self.max_width_factor < 1.0:
            raise ValueError("max_width_factor must be >= 1")
        if not 1.0 <= self.min_segment_factor <= self.max_segment_factor:
            raise ValueError("segment factors must satisfy 1 <= min <= max")


class LayoutSynthesizer:
    """Random generator of design-rule-clean layout clips.

    >>> import numpy as np
    >>> synth = LayoutSynthesizer(TopologyConfig(extent=1024.0))
    >>> clip = synth.generate(np.random.default_rng(7))
    >>> clip.pattern_area > 0
    True
    """

    def __init__(self, config: Optional[TopologyConfig] = None):
        self.config = config or TopologyConfig()
        self.checker = DesignRuleChecker(self.config.rules)

    # ------------------------------------------------------------------
    def generate(self, rng: np.random.Generator,
                 name: Optional[str] = None) -> Layout:
        """Synthesize one clip; horizontal or vertical primary direction
        is chosen at random."""
        cfg = self.config
        rules = cfg.rules
        cd = rules.critical_dimension

        rects: List[Rect] = []
        low = cfg.margin
        high = cfg.extent - cfg.margin
        y = low + float(rng.uniform(0.0, rules.pitch / 2.0))
        while y + cd <= high:
            if rng.random() < cfg.track_skip_probability:
                y += rules.pitch
                continue
            width = cd * float(rng.uniform(1.0, cfg.max_width_factor))
            if y + width > high:
                width = cd
                if y + width > high:
                    break
            self._fill_track(rng, rects, y, width)
            # Advance so that even a widened wire keeps legal spacing to
            # the next track.
            y += max(rules.pitch, width + rules.spacing)

        if not rects:
            # Small windows with aggressive track skipping can come out
            # empty; an empty clip is useless as a training target, so
            # fall back to a single randomly-placed legal wire.
            usable = high - low
            length = float(rng.uniform(min(cd * 2.0, usable), usable))
            width = cd * float(rng.uniform(1.0, cfg.max_width_factor))
            width = min(width, usable)
            x0 = low + float(rng.uniform(0.0, usable - length))
            y0 = low + float(rng.uniform(0.0, usable - width))
            rects.append(Rect(x0, y0, x0 + length, y0 + width))

        if rng.random() < 0.5:
            rects = [Rect(r.y0, r.x0, r.y1, r.x1) for r in rects]

        layout = Layout(extent=cfg.extent, rects=rects, name=name)
        self._add_stubs(rng, layout)
        return layout

    def generate_batch(self, count: int, seed: int = 0,
                       name_prefix: str = "synth") -> List[Layout]:
        """Synthesize ``count`` clips with per-clip child seeds, so any
        single clip can be regenerated independently."""
        root = np.random.SeedSequence(seed)
        layouts = []
        for i, child in enumerate(root.spawn(count)):
            rng = np.random.default_rng(child)
            layouts.append(self.generate(rng, name=f"{name_prefix}-{i:04d}"))
        return layouts

    # ------------------------------------------------------------------
    def _fill_track(self, rng: np.random.Generator, rects: List[Rect],
                    y: float, width: float) -> None:
        """Place random wire segments along one horizontal track."""
        cfg = self.config
        rules = cfg.rules
        cd = rules.critical_dimension
        low = cfg.margin
        high = cfg.extent - cfg.margin
        min_seg = cfg.min_segment_factor * cd
        max_seg = cfg.max_segment_factor * cd

        # Start offset bounded so small windows still fit a segment.
        slack = max(high - low - min_seg, 0.0)
        x = low + float(rng.uniform(0.0, min(max_seg / 2.0, slack)))
        while x + min_seg <= high:
            length = float(rng.uniform(min_seg, max_seg))
            length = min(length, high - x)
            if length < min_seg:
                break
            rects.append(Rect(x, y, x + length, y + width))
            x += length + rules.tip_to_tip + float(rng.uniform(0.0, cfg.gap_jitter))

    def _add_stubs(self, rng: np.random.Generator, layout: Layout) -> None:
        """Attach orthogonal stubs at wire ends, forming L-shapes.

        Each candidate is validated against the full layout with the
        design-rule checker and dropped on any violation — mirroring how
        a router would legalize the jog.
        """
        cfg = self.config
        cd = cfg.rules.critical_dimension
        base = list(layout.rects)
        for rect in base:
            if rng.random() >= cfg.stub_probability:
                continue
            stub = self._make_stub(rng, rect, cd)
            if stub is None:
                continue
            if not layout.window.contains_rect(stub):
                continue
            candidate = Layout(extent=layout.extent,
                               rects=layout.rects + [stub])
            if self.checker.is_clean(candidate):
                layout.rects.append(stub)

    def _make_stub(self, rng: np.random.Generator, rect: Rect,
                   cd: float) -> Optional[Rect]:
        length = cd * float(rng.uniform(1.5, 3.0))
        up = rng.random() < 0.5
        if rect.is_horizontal:
            at_left = rng.random() < 0.5
            x0 = rect.x0 if at_left else rect.x1 - cd
            if up:
                return Rect(x0, rect.y1, x0 + cd, rect.y1 + length)
            return Rect(x0, rect.y0 - length, x0 + cd, rect.y0)
        at_bottom = rng.random() < 0.5
        y0 = rect.y0 if at_bottom else rect.y1 - cd
        if up:
            return Rect(rect.x1, y0, rect.x1 + length, y0 + cd)
        return Rect(rect.x0 - length, y0, rect.x0, y0 + cd)
