"""Integration tests for the command-line interface."""

import os

import numpy as np
import pytest

from repro import nn
from repro.cli import main
from repro.core import GanOpcConfig, MaskGenerator
from repro.geometry import glp


@pytest.fixture()
def clip_file(tmp_path):
    """Synthesize one clip via the CLI and return its path."""
    prefix = str(tmp_path / "clip-")
    assert main(["synthesize", "--count", "1", "--seed", "3",
                 "--grid", "64", "--prefix", prefix]) == 0
    path = prefix + "0000.glp"
    assert os.path.exists(path)
    return path


class TestSynthesize:
    def test_writes_valid_glp(self, clip_file):
        layout = glp.load(clip_file)
        assert len(layout) >= 1
        layout.validate()

    def test_count(self, tmp_path, capsys):
        prefix = str(tmp_path / "c-")
        main(["synthesize", "--count", "3", "--grid", "64",
              "--prefix", prefix])
        assert all(os.path.exists(f"{prefix}{i:04d}.glp") for i in range(3))


class TestSimulate:
    def test_metrics_printed(self, clip_file, capsys):
        assert main(["simulate", clip_file, "--grid", "64"]) == 0
        out = capsys.readouterr().out
        assert "l2_nm2" in out and "pvband_nm2" in out

    def test_wafer_written(self, clip_file, tmp_path):
        out = str(tmp_path / "wafer.pgm")
        main(["simulate", clip_file, "--grid", "64", "--out", out])
        from repro.bench import read_pgm
        assert read_pgm(out).shape == (64, 64)

    def test_mask_shape_mismatch_fails(self, clip_file, tmp_path, capsys):
        from repro.bench import write_pgm
        bad = str(tmp_path / "bad.pgm")
        write_pgm(np.zeros((16, 16)), bad)
        assert main(["simulate", clip_file, "--grid", "64",
                     "--mask", bad]) == 2


class TestIlt:
    def test_optimizes_and_writes_mask(self, clip_file, tmp_path, capsys):
        out = str(tmp_path / "mask.pgm")
        assert main(["ilt", clip_file, "--grid", "64",
                     "--iterations", "20", "--out", out]) == 0
        stdout = capsys.readouterr().out
        assert "iterations: " in stdout
        from repro.bench import read_pgm
        mask = read_pgm(out)
        assert set(np.unique(mask)) <= {0.0, 1.0}


class TestSraf:
    def test_inserts_bars(self, clip_file, tmp_path, capsys):
        out = str(tmp_path / "assisted.glp")
        assert main(["sraf", clip_file, "--out", out]) == 0
        assisted = glp.load(out)
        original = glp.load(clip_file)
        assert len(assisted) >= len(original)


class TestTrain:
    def _args(self, tmp_path, *extra):
        return ["train", "--phase", "pretrain", "--grid", "32",
                "--iterations", "2", "--dataset-size", "2",
                "--batch-size", "2", "--seed", "11",
                "--checkpoint-dir", str(tmp_path / "ckpts"),
                "--checkpoint-every", "1",
                "--telemetry-dir", str(tmp_path / "telemetry"),
                *extra]

    def test_pretrain_writes_checkpoints_and_telemetry(self, tmp_path,
                                                       capsys):
        out = str(tmp_path / "gen.npz")
        assert main(self._args(tmp_path, "--out", out)) == 0
        assert "pretrain: 2 iterations" in capsys.readouterr().out
        assert os.path.exists(out)
        assert os.listdir(str(tmp_path / "ckpts" / "pretrain"))

        import json

        from repro.runtime import validate_record
        telemetry = str(tmp_path / "telemetry" / "pretrain.jsonl")
        records = [json.loads(line) for line in open(telemetry)]
        for record in records:
            validate_record(record)
        assert [r["event"] for r in records].count("iteration") == 2

    def test_resume_flag(self, tmp_path, capsys):
        assert main(self._args(tmp_path)) == 0
        capsys.readouterr()
        args = self._args(tmp_path, "--resume")
        args[args.index("--iterations") + 1] = "4"
        assert main(args) == 0
        assert "pretrain: 4 iterations" in capsys.readouterr().out

        import json
        telemetry = str(tmp_path / "telemetry" / "pretrain.jsonl")
        events = [json.loads(line)["event"] for line in open(telemetry)]
        assert "resume" in events

    def test_resume_requires_checkpoint_dir(self, capsys):
        assert main(["train", "--resume"]) == 2
        assert "requires --checkpoint-dir" in capsys.readouterr().err

    def test_pretrain_with_corner_stack(self, tmp_path, capsys):
        assert main(self._args(tmp_path, "--corners", "dose")) == 0
        assert "pretrain: 2 iterations" in capsys.readouterr().out

    def test_gan_with_litho_guidance(self, tmp_path, capsys):
        args = self._args(tmp_path, "--corners", "dose",
                          "--litho-weight", "0.1",
                          "--pw-objective", "worst")
        args[args.index("--phase") + 1] = "gan"
        assert main(args) == 0
        assert "gan: 2 iterations" in capsys.readouterr().out

    def test_bad_corners_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self._args(tmp_path, "--corners", "bogus"))
        assert excinfo.value.code == 2
        assert "--corners" in capsys.readouterr().err


class TestFlow:
    def test_runs_with_checkpoint(self, clip_file, tmp_path, capsys):
        config = GanOpcConfig.small(64)
        generator = MaskGenerator(config.generator_channels,
                                  rng=np.random.default_rng(0))
        ckpt = str(tmp_path / "gen.npz")
        nn.save_state(generator, ckpt)
        out = str(tmp_path / "mask.pgm")
        assert main(["flow", clip_file, ckpt, "--grid", "64",
                     "--iterations", "10", "--out", out]) == 0
        stdout = capsys.readouterr().out
        assert "generation: " in stdout
        assert os.path.exists(out)

    def test_corners_add_window_metrics(self, clip_file, tmp_path, capsys):
        config = GanOpcConfig.small(64)
        generator = MaskGenerator(config.generator_channels,
                                  rng=np.random.default_rng(0))
        ckpt = str(tmp_path / "gen.npz")
        nn.save_state(generator, ckpt)
        out = str(tmp_path / "mask.pgm")
        assert main(["flow", clip_file, ckpt, "--grid", "64",
                     "--iterations", "5", "--out", out,
                     "--corners", "dose",
                     "--pw-objective", "weighted"]) == 0
        stdout = capsys.readouterr().out
        assert "window_pvband_nm2: " in stdout
        assert "worst_corner_l2_nm2: " in stdout
        assert "window_pvband_nm2: None" not in stdout


class TestProfile:
    def test_profiles_flow_and_writes_traces(self, tmp_path, capsys):
        import json

        trace_dir = str(tmp_path / "prof")
        assert main(["profile", "--grid", "32", "--iterations", "5",
                     "--trace-dir", trace_dir]) == 0
        out = capsys.readouterr().out
        # Span table, op table and module table all render.
        assert "profile.flow" in out
        assert "conv2d" in out
        assert "Conv2d" in out
        assert "top-level spans cover" in out

        with open(os.path.join(trace_dir, "trace.json")) as fh:
            chrome = json.load(fh)
        assert chrome["displayTimeUnit"] == "ms"
        names = {event["name"] for event in chrome["traceEvents"]}
        assert {"profile.setup", "profile.flow", "flow.generate",
                "flow.refine"} <= names
        for event in chrome["traceEvents"]:
            assert event["ph"] == "X"

        with open(os.path.join(trace_dir, "spans.jsonl")) as fh:
            lines = [json.loads(line) for line in fh if line.strip()]
        assert len(lines) == len(chrome["traceEvents"])

    def test_restores_global_observability_state(self, tmp_path, capsys):
        from repro.obs import profiler, trace
        assert main(["profile", "--grid", "32", "--iterations", "3",
                     "--trace-dir", str(tmp_path / "p")]) == 0
        capsys.readouterr()
        assert trace.active() is None
        assert profiler.ACTIVE is None

    def test_profile_with_clip_and_checkpoint(self, clip_file, tmp_path,
                                              capsys):
        config = GanOpcConfig.small(64)
        generator = MaskGenerator(config.generator_channels,
                                  rng=np.random.default_rng(0))
        ckpt = str(tmp_path / "gen.npz")
        nn.save_state(generator, ckpt)
        assert main(["profile", "--clip", clip_file, "--checkpoint", ckpt,
                     "--grid", "64", "--iterations", "3",
                     "--trace-dir", str(tmp_path / "prof")]) == 0
        assert "flow: generation" in capsys.readouterr().out


class TestTraceDir:
    def test_train_trace_dir_writes_chrome_trace_and_span_summary(
            self, tmp_path, capsys):
        import json

        trace_dir = str(tmp_path / "traces")
        assert main(["train", "--phase", "pretrain", "--grid", "32",
                     "--iterations", "2", "--dataset-size", "2",
                     "--batch-size", "2", "--seed", "11",
                     "--telemetry-dir", str(tmp_path / "telemetry"),
                     "--trace-dir", trace_dir]) == 0
        capsys.readouterr()
        with open(os.path.join(trace_dir, "train-trace.json")) as fh:
            chrome = json.load(fh)
        names = {event["name"] for event in chrome["traceEvents"]}
        assert "pretrain.step" in names

        from repro.runtime import validate_record
        telemetry = str(tmp_path / "telemetry" / "pretrain.jsonl")
        records = [json.loads(line) for line in open(telemetry)]
        summaries = [r for r in records if r["event"] == "span_summary"]
        assert len(summaries) == 1
        validate_record(summaries[0])
        assert summaries[0]["spans"]["pretrain.step"]["count"] == 2

    def test_flow_trace_dir(self, clip_file, tmp_path, capsys):
        config = GanOpcConfig.small(64)
        generator = MaskGenerator(config.generator_channels,
                                  rng=np.random.default_rng(0))
        ckpt = str(tmp_path / "gen.npz")
        nn.save_state(generator, ckpt)
        trace_dir = str(tmp_path / "traces")
        assert main(["flow", clip_file, ckpt, "--grid", "64",
                     "--iterations", "5",
                     "--out", str(tmp_path / "mask.pgm"),
                     "--trace-dir", trace_dir]) == 0
        capsys.readouterr()
        assert os.path.exists(os.path.join(trace_dir, "flow-trace.json"))
        assert os.path.exists(os.path.join(trace_dir, "flow-spans.jsonl"))


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["bogus"])


class TestChip:
    def test_writes_chip_layout(self, tmp_path, capsys):
        out = str(tmp_path / "chip.glp")
        assert main(["chip", "--cells", "2", "--cell-extent", "256",
                     "--fill", "1.0", "--seed", "1", "--out", out]) == 0
        stdout = capsys.readouterr().out
        assert "2x2 cells" in stdout
        assert "512 nm" in stdout and "64px" in stdout
        chip = glp.load(out)
        chip.validate()
        assert chip.extent == 512.0
        assert len(chip) > 0


class TestTiled:
    @pytest.fixture()
    def chip_file(self, tmp_path):
        out = str(tmp_path / "chip.glp")
        assert main(["chip", "--cells", "2", "--cell-extent", "256",
                     "--fill", "1.0", "--seed", "1", "--out", out]) == 0
        return out

    def test_ilt_tiled(self, chip_file, tmp_path, capsys):
        out = str(tmp_path / "mask.pgm")
        assert main(["ilt", chip_file, "--tiled", "--tile-size", "32",
                     "--halo", "8", "--iterations", "4",
                     "--out", out]) == 0
        stdout = capsys.readouterr().out
        # 64 px chip, core 16 -> 4x4 tiles.
        assert "tiles: 16 (4x4, tile 32px, halo 8px, core 16px)" in stdout
        assert "chip grid: 64px" in stdout
        from repro.bench import read_pgm
        mask = read_pgm(out)
        assert mask.shape == (64, 64)
        assert set(np.unique(mask)) <= {0.0, 1.0}

    def test_ilt_tiled_with_workers_prints_pool_stats(self, chip_file,
                                                      tmp_path, capsys):
        out = str(tmp_path / "mask.pgm")
        assert main(["ilt", chip_file, "--tiled", "--tile-size", "32",
                     "--halo", "8", "--iterations", "4", "--workers", "2",
                     "--out", out]) == 0
        stdout = capsys.readouterr().out
        assert "2 workers" in stdout
        assert os.path.exists(out)

    def test_flow_tiled(self, chip_file, tmp_path, capsys):
        config = GanOpcConfig.small(32)
        generator = MaskGenerator(config.generator_channels,
                                  rng=np.random.default_rng(0))
        ckpt = str(tmp_path / "gen.npz")
        nn.save_state(generator, ckpt)
        out = str(tmp_path / "mask.pgm")
        assert main(["flow", chip_file, ckpt, "--tiled",
                     "--tile-size", "32", "--halo", "8",
                     "--iterations", "4", "--out", out]) == 0
        stdout = capsys.readouterr().out
        assert "tiles: 16" in stdout
        assert os.path.exists(out)

    def test_flow_tiled_workers_merged_trace_and_telemetry(
            self, chip_file, tmp_path, capsys):
        """A 2-worker tiled flow is as observable as a serial one: one
        Perfetto-loadable trace with litho spans from every worker pid
        plus validated worker_span_summary telemetry (ISSUE 8)."""
        import json

        from repro.runtime import validate_record

        config = GanOpcConfig.small(32)
        generator = MaskGenerator(config.generator_channels,
                                  rng=np.random.default_rng(0))
        ckpt = str(tmp_path / "gen.npz")
        nn.save_state(generator, ckpt)
        trace_dir = str(tmp_path / "traces")
        telemetry_dir = str(tmp_path / "telemetry")
        assert main(["flow", chip_file, ckpt, "--tiled",
                     "--tile-size", "32", "--halo", "8",
                     "--iterations", "4", "--workers", "2",
                     "--trace-dir", trace_dir,
                     "--telemetry-dir", telemetry_dir,
                     "--out", str(tmp_path / "mask.pgm")]) == 0
        capsys.readouterr()

        (trace_path,) = [os.path.join(trace_dir, name)
                         for name in os.listdir(trace_dir)
                         if name.endswith(".json")]
        chrome = json.load(open(trace_path, encoding="utf-8"))
        complete = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        worker_pids = {e["pid"] for e in complete} - {os.getpid()}
        assert len(worker_pids) == 2
        litho_pids = {e["pid"] for e in complete
                      if e["name"] == "litho.forward"}
        assert worker_pids <= litho_pids

        path = os.path.join(telemetry_dir, "flow.jsonl")
        records = [json.loads(line) for line in open(path, encoding="utf-8")
                   if line.strip()]
        summaries = [r for r in records
                     if r["event"] == "worker_span_summary"]
        assert {r["pid"] for r in summaries} == worker_pids
        for record in records:
            validate_record(record)
        for record in summaries:
            assert record["litho"]["forward_calls"] == \
                record["spans"]["litho.forward"]["count"]


class TestMonitor:
    @pytest.fixture()
    def chip_file(self, tmp_path):
        out = str(tmp_path / "chip.glp")
        assert main(["chip", "--cells", "2", "--cell-extent", "256",
                     "--fill", "1.0", "--seed", "1", "--out", out]) == 0
        return out

    def test_monitor_ilt_reports_progress_and_fleet(self, chip_file,
                                                    tmp_path, capsys):
        out = str(tmp_path / "mask.pgm")
        metrics = str(tmp_path / "metrics.txt")
        assert main(["monitor", chip_file, "--tile-size", "32",
                     "--halo", "8", "--iterations", "4", "--workers", "2",
                     "--update-every", "0", "--metrics-out", metrics,
                     "--out", out]) == 0
        stdout = capsys.readouterr().out
        assert "16/16" in stdout
        assert "eta" in stdout
        assert "worker pid" in stdout  # per-worker utilization table
        assert "fleet litho engine" in stdout
        assert os.path.exists(out)
        content = open(metrics, encoding="utf-8").read()
        assert content.endswith("# EOF\n")
        assert "repro_pool_tasks_done 16" in content

    def test_monitor_flow_with_checkpoint_telemetry(self, chip_file,
                                                    tmp_path, capsys):
        import json

        from repro.runtime import validate_record

        config = GanOpcConfig.small(32)
        generator = MaskGenerator(config.generator_channels,
                                  rng=np.random.default_rng(0))
        ckpt = str(tmp_path / "gen.npz")
        nn.save_state(generator, ckpt)
        telemetry_dir = str(tmp_path / "telemetry")
        assert main(["monitor", chip_file, "--checkpoint", ckpt,
                     "--tile-size", "32", "--halo", "8",
                     "--iterations", "4", "--workers", "2",
                     "--update-every", "0",
                     "--telemetry-dir", telemetry_dir,
                     "--out", str(tmp_path / "mask.pgm")]) == 0
        capsys.readouterr()
        path = os.path.join(telemetry_dir, "monitor.jsonl")
        records = [json.loads(line) for line in open(path, encoding="utf-8")
                   if line.strip()]
        for record in records:
            validate_record(record)
        assert len([r for r in records
                    if r["event"] == "worker_span_summary"]) == 2

    def test_monitor_metrics_port_serves_scrapes(self, chip_file,
                                                 tmp_path, capsys):
        # Port 0 binds an ephemeral port; the run just has to complete
        # with the exporter attached and report where it listened.
        assert main(["monitor", chip_file, "--tile-size", "32",
                     "--halo", "8", "--iterations", "2", "--workers", "1",
                     "--update-every", "0", "--metrics-port", "0",
                     "--out", str(tmp_path / "mask.pgm")]) == 0
        stdout = capsys.readouterr().out
        assert "serving metrics at http://" in stdout


class TestRunsLedger:
    """Run recording + runs list/show/diff + report (ISSUE 9)."""

    def _record_run(self, clip_file, tmp_path, iterations="10"):
        store = str(tmp_path / "store")
        out = str(tmp_path / f"mask-{iterations}.pgm")
        assert main(["ilt", clip_file, "--grid", "64",
                     "--iterations", iterations, "--out", out,
                     "--runs-dir", store]) == 0
        return store

    def test_ilt_records_manifest_and_quality(self, clip_file, tmp_path,
                                              capsys):
        import json

        from repro.runs import RunStore
        from repro.runtime import validate_record

        store = self._record_run(clip_file, tmp_path)
        assert "run recorded: " in capsys.readouterr().out
        run_store = RunStore(store)
        (run_id,) = run_store.run_ids()
        run = run_store.load(run_id)
        assert run.manifest.command == "ilt"
        assert run.manifest.status == "complete"
        assert run.manifest.config_hash
        assert "litho" in run.manifest.summary
        assert os.path.isfile(run.artifact_path("mask"))
        assert os.path.isfile(run.artifact_path("clip"))
        records = [json.loads(line)
                   for line in open(run.quality_log_path, encoding="utf-8")
                   if line.strip()]
        for record in records:
            validate_record(record)
        events = {record["event"] for record in records}
        assert {"run_manifest", "quality_sample", "clip_result"} <= events

    def test_no_run_record_leaves_store_empty(self, clip_file, tmp_path):
        store = str(tmp_path / "store")
        assert main(["ilt", clip_file, "--grid", "64",
                     "--iterations", "5",
                     "--out", str(tmp_path / "m.pgm"),
                     "--runs-dir", store, "--no-run-record"]) == 0
        assert not os.path.isdir(store)

    def test_runs_list_show_and_diff(self, clip_file, tmp_path, capsys):
        store = self._record_run(clip_file, tmp_path, iterations="5")
        self._record_run(clip_file, tmp_path, iterations="10")
        capsys.readouterr()

        assert main(["runs", "list", "--runs-dir", store]) == 0
        listing = capsys.readouterr().out
        assert listing.count("-ilt-") >= 2

        assert main(["runs", "show", "latest", "--runs-dir", store]) == 0
        shown = capsys.readouterr().out
        assert "params.iterations" in shown
        assert "l2_nm2" in shown

        from repro.runs import RunStore
        first, second = RunStore(store).run_ids()
        assert main(["runs", "diff", first, second,
                     "--runs-dir", store]) == 0
        diffed = capsys.readouterr().out
        assert "config deltas:" in diffed
        assert "params.iterations" in diffed
        assert "aggregate quality" in diffed

    def test_runs_unknown_token_fails(self, tmp_path, capsys):
        assert main(["runs", "show", "latest",
                     "--runs-dir", str(tmp_path / "empty")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_report_writes_self_contained_html(self, clip_file, tmp_path,
                                               capsys):
        store = self._record_run(clip_file, tmp_path)
        out = str(tmp_path / "report.html")
        assert main(["report", "latest", "--runs-dir", store,
                     "--out", out]) == 0
        document = open(out, encoding="utf-8").read()
        assert document.startswith("<!DOCTYPE html>")
        assert "<polyline" in document
        assert "http://" not in document and "https://" not in document
