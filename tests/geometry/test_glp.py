"""Unit and property tests for the text clip format."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Layout, Rect, glp


class TestRoundTrip:
    def test_dumps_loads(self):
        layout = Layout(extent=512.0, name="clip-a",
                        rects=[Rect(10, 20, 110, 100), Rect(0, 0, 80, 80)])
        recovered = glp.loads(glp.dumps(layout))
        assert recovered.extent == 512.0
        assert recovered.name == "clip-a"
        assert recovered.rects == layout.rects

    def test_file_round_trip(self, tmp_path):
        layout = Layout(extent=100.0, name="t", rects=[Rect(1, 2, 3, 4)])
        path = str(tmp_path / "clip.glp")
        glp.save(layout, path)
        assert glp.load(path).rects == layout.rects

    def test_file_object_round_trip(self):
        layout = Layout(extent=100.0, name="t", rects=[Rect(1, 2, 3, 4)])
        buffer = io.StringIO()
        glp.save(layout, buffer)
        buffer.seek(0)
        assert glp.load(buffer).rects == layout.rects

    @given(st.lists(
        st.tuples(st.floats(0, 400), st.floats(0, 400),
                  st.floats(1, 100), st.floats(1, 100)),
        min_size=0, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_random_layouts_round_trip(self, specs):
        rects = [Rect(x, y, x + w, y + h) for x, y, w, h in specs]
        layout = Layout(extent=1000.0, name="rand", rects=rects)
        recovered = glp.loads(glp.dumps(layout))
        assert len(recovered.rects) == len(rects)
        for original, parsed in zip(rects, recovered.rects):
            assert abs(original.x0 - parsed.x0) < 1e-6
            assert abs(original.y1 - parsed.y1) < 1e-6


class TestParsing:
    def test_comments_and_blanks_ignored(self):
        text = """
        # a comment
        CLIP test 100

        RECT 0 0 10 10  # trailing comment
        END
        """
        layout = glp.loads(text)
        assert len(layout.rects) == 1

    @pytest.mark.parametrize("text,message", [
        ("RECT 0 0 1 1\nEND", "before CLIP"),
        ("CLIP a 100\nCLIP b 100\nEND", "duplicate"),
        ("CLIP a 100\nRECT 0 0 1\nEND", "4 coordinates"),
        ("CLIP a\nEND", "name and extent"),
        ("CLIP a 100\nBLOB 1 2\nEND", "unknown keyword"),
        ("CLIP a 100\n", "missing END"),
        ("", "no CLIP header"),
        ("END", "before CLIP"),
        ("CLIP a 100\nEND\nRECT 0 0 1 1", "after END"),
    ])
    def test_malformed_inputs(self, text, message):
        with pytest.raises(ValueError, match=message):
            glp.loads(text)
