"""Unit and property tests for rasterization and the resolution bridge."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (Layout, Rect, average_pool, bilinear_upsample,
                            binarize, rasterize)


class TestRasterize:
    def test_pixel_aligned_rect_exact(self):
        layout = Layout(extent=64.0, rects=[Rect(16, 16, 48, 32)])
        image = rasterize(layout, 64)  # 1nm pixels
        assert image.sum() == 32 * 16
        assert image.max() == 1.0

    def test_antialiased_area_preserved(self):
        """Total raster mass equals geometric area / pixel area even for
        non-pixel-aligned shapes."""
        layout = Layout(extent=64.0, rects=[Rect(10.3, 20.7, 33.9, 29.1)])
        image = rasterize(layout, 32)  # 2nm pixels
        geometric = layout.pattern_area / 4.0
        np.testing.assert_allclose(image.sum(), geometric, rtol=1e-9)

    def test_center_sampling_mode(self):
        layout = Layout(extent=8.0, rects=[Rect(1.6, 1.6, 6.4, 6.4)])
        image = rasterize(layout, 8, antialias=False)
        assert set(np.unique(image)) <= {0.0, 1.0}

    def test_values_clipped_to_one_on_overlap(self):
        layout = Layout(extent=16.0, rects=[Rect(0, 0, 8, 8), Rect(0, 0, 8, 8)])
        image = rasterize(layout, 16)
        assert image.max() == 1.0

    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            rasterize(Layout(extent=10.0), 0)

    def test_raster_coordinates_match_geometry(self):
        """image[row, col] covers y in [row*px, (row+1)*px)."""
        layout = Layout(extent=16.0, rects=[Rect(0, 0, 4, 2)])
        image = rasterize(layout, 16)  # 1nm pixels
        assert image[0, 0] == 1.0 and image[1, 3] == 1.0
        assert image[2, 0] == 0.0  # above the rect in y


class TestAveragePool:
    def test_exact_blocks(self):
        image = np.arange(16.0).reshape(4, 4)
        pooled = average_pool(image, 2)
        np.testing.assert_allclose(pooled, [[2.5, 4.5], [10.5, 12.5]])

    def test_identity_factor_one(self):
        image = np.random.default_rng(0).random((4, 4))
        np.testing.assert_allclose(average_pool(image, 1), image)

    def test_mass_preserved(self):
        image = np.random.default_rng(0).random((16, 16))
        pooled = average_pool(image, 8)
        np.testing.assert_allclose(pooled.mean(), image.mean())

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            average_pool(np.zeros((10, 10)), 4)

    def test_negative_factor_raises(self):
        with pytest.raises(ValueError):
            average_pool(np.zeros((4, 4)), 0)


class TestBilinearUpsample:
    def test_shape(self):
        out = bilinear_upsample(np.ones((4, 4)), 8)
        assert out.shape == (32, 32)

    def test_constant_preserved(self):
        out = bilinear_upsample(np.full((4, 4), 0.7), 4)
        np.testing.assert_allclose(out, 0.7)

    def test_factor_one_copies(self):
        image = np.random.default_rng(0).random((4, 4))
        out = bilinear_upsample(image, 1)
        np.testing.assert_allclose(out, image)
        assert out is not image

    def test_values_interpolated_between_samples(self):
        image = np.array([[0.0, 1.0]])
        out = bilinear_upsample(image, 4)
        row = out[0]
        assert np.all(np.diff(row) >= 0)  # monotone ramp
        assert row[0] == 0.0 and row[-1] == 1.0

    def test_mean_approximately_preserved(self):
        rng = np.random.default_rng(1)
        image = rng.random((8, 8))
        out = bilinear_upsample(image, 8)
        assert abs(out.mean() - image.mean()) < 0.05

    @given(st.sampled_from([2, 4, 8]))
    @settings(max_examples=10, deadline=None)
    def test_pool_then_upsample_roundtrip_on_smooth(self, factor):
        """The paper's 8x8 pool + linear interp bridge must roughly
        invert on smooth images (Section 4)."""
        grid = 32
        ys, xs = np.mgrid[0:grid, 0:grid] / grid
        smooth = 0.5 + 0.4 * np.sin(2 * np.pi * xs) * np.cos(2 * np.pi * ys)
        bridged = bilinear_upsample(average_pool(smooth, factor), factor)
        assert np.abs(bridged - smooth).max() < 0.3
        # Reconstruction error grows with the pooling factor.
        assert np.abs(bridged - smooth).mean() < 0.01 * factor + 0.02


class TestBinarize:
    def test_default(self):
        np.testing.assert_allclose(binarize(np.array([0.2, 0.5, 0.9])),
                                   [0, 1, 1])

    def test_custom_level(self):
        np.testing.assert_allclose(binarize(np.array([0.2]), level=0.1), [1])
