"""Unit tests for the Table 1 design rules and checker."""

import pytest

from repro.geometry import (DesignRuleChecker, DesignRules, Layout, Rect)


@pytest.fixture()
def checker():
    return DesignRuleChecker(DesignRules.iccad32nm())


def _layout(*rects):
    return Layout(extent=2000.0, rects=list(rects))


class TestDesignRules:
    def test_table1_values(self):
        rules = DesignRules.iccad32nm()
        assert rules.critical_dimension == 80.0
        assert rules.pitch == 140.0
        assert rules.tip_to_tip == 60.0
        assert rules.spacing == 60.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DesignRules(critical_dimension=-1)
        with pytest.raises(ValueError):
            DesignRules(critical_dimension=100, pitch=90)


class TestWidthCheck:
    def test_clean_wire(self, checker):
        layout = _layout(Rect(0, 0, 400, 80))
        assert checker.check_width(layout) == []

    def test_narrow_wire_flagged(self, checker):
        layout = _layout(Rect(0, 0, 400, 60))
        violations = checker.check_width(layout)
        assert len(violations) == 1
        assert violations[0].kind == "width"
        assert violations[0].measured == 60.0

    def test_violation_string(self, checker):
        violation = checker.check_width(_layout(Rect(0, 0, 400, 60)))[0]
        assert "width" in str(violation)
        assert "60.0" in str(violation)


class TestSpacingCheck:
    def test_legal_parallel_wires(self, checker):
        layout = _layout(Rect(0, 0, 400, 80), Rect(0, 140, 400, 220))
        assert checker.check_spacing(layout) == []

    def test_tight_parallel_wires_flagged(self, checker):
        layout = _layout(Rect(0, 0, 400, 80), Rect(0, 120, 400, 200))
        violations = checker.check_spacing(layout)
        assert len(violations) == 1
        assert violations[0].kind == "spacing"
        assert violations[0].measured == 40.0

    def test_touching_rects_same_net_exempt(self, checker):
        # L-shape: vertical stub abutting a horizontal wire.
        layout = _layout(Rect(0, 0, 400, 80), Rect(0, 80, 80, 300))
        assert checker.check_spacing(layout) == []

    def test_legal_tip_to_tip(self, checker):
        layout = _layout(Rect(0, 0, 200, 80), Rect(260, 0, 400, 80))
        assert checker.check_spacing(layout) == []

    def test_tight_tip_to_tip_flagged(self, checker):
        layout = _layout(Rect(0, 0, 200, 80), Rect(240, 0, 400, 80))
        violations = checker.check_spacing(layout)
        assert len(violations) == 1
        assert violations[0].kind == "tip_to_tip"
        assert violations[0].measured == 40.0

    def test_tip_to_tip_between_40_and_60_is_legal_side_spacing_case(self, checker):
        """Facing ends at 60nm are legal even though side spacing would
        also be 60 — distinguishing the two rules."""
        layout = _layout(Rect(0, 0, 200, 80), Rect(260, 0, 400, 80))
        assert checker.is_clean(layout)

    def test_diagonal_neighbors_use_euclidean_gap(self, checker):
        # Corner-to-corner distance ~42nm < 60nm spacing.
        layout = _layout(Rect(0, 0, 100, 80), Rect(130, 110, 300, 190))
        violations = checker.check_spacing(layout)
        assert len(violations) == 1
        assert violations[0].kind == "spacing"

    def test_vertical_tip_to_tip(self, checker):
        layout = _layout(Rect(0, 0, 80, 200), Rect(0, 240, 80, 400))
        violations = checker.check_spacing(layout)
        assert len(violations) == 1
        assert violations[0].kind == "tip_to_tip"


class TestCombined:
    def test_check_aggregates(self, checker):
        layout = _layout(Rect(0, 0, 400, 60),  # narrow
                         Rect(0, 100, 400, 180))  # 40nm spacing
        violations = checker.check(layout)
        kinds = {v.kind for v in violations}
        assert kinds == {"width", "spacing"}

    def test_is_clean(self, checker):
        assert checker.is_clean(_layout(Rect(0, 0, 400, 80)))
        assert not checker.is_clean(_layout(Rect(0, 0, 400, 50)))
