"""Unit and property tests for rectilinear geometry primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect, bounding_box, union_area


def rects_strategy():
    coord = st.floats(0, 100, allow_nan=False)
    size = st.floats(1, 50, allow_nan=False)
    return st.builds(lambda x, y, w, h: Rect(x, y, x + w, y + h),
                     coord, coord, size, size)


class TestRect:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 0, 5)
        with pytest.raises(ValueError):
            Rect(0, 5, 5, 5)

    def test_measures(self):
        r = Rect(1, 2, 4, 8)
        assert r.width == 3 and r.height == 6
        assert r.area == 18
        assert r.center == (2.5, 5.0)
        assert r.min_dimension == 3
        assert not r.is_horizontal

    def test_intersects_open_vs_touches_closed(self):
        a = Rect(0, 0, 2, 2)
        edge = Rect(2, 0, 4, 2)
        apart = Rect(3, 0, 4, 2)
        assert not a.intersects(edge)
        assert a.touches(edge)
        assert not a.touches(apart)

    def test_contains(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(1, 1, 9, 9))
        assert not outer.contains_rect(Rect(5, 5, 11, 9))
        assert outer.contains_point(0, 0)
        assert not outer.contains_point(10, 10)  # half-open

    def test_intersection(self):
        a = Rect(0, 0, 4, 4)
        b = Rect(2, 2, 6, 6)
        assert a.intersection(b) == Rect(2, 2, 4, 4)
        with pytest.raises(ValueError):
            a.intersection(Rect(5, 5, 6, 6))

    def test_transformations(self):
        r = Rect(1, 1, 3, 3)
        assert r.expanded(1) == Rect(0, 0, 4, 4)
        assert r.translated(2, -1) == Rect(3, 0, 5, 2)
        assert r.scaled(2) == Rect(2, 2, 6, 6)

    def test_gap(self):
        a = Rect(0, 0, 2, 2)
        assert a.gap(Rect(5, 0, 6, 2)) == 3.0
        assert a.gap(Rect(0, 4, 2, 5)) == 2.0
        assert a.gap(Rect(1, 1, 5, 5)) == 0.0
        # Diagonal gap is Euclidean.
        assert abs(a.gap(Rect(5, 5, 6, 6)) - np.hypot(3, 3)) < 1e-12

    def test_axis_gaps(self):
        a = Rect(0, 0, 2, 2)
        assert a.axis_gaps(Rect(5, 1, 6, 3)) == (3.0, 0.0)
        assert a.axis_gaps(Rect(0, 3, 2, 4)) == (0.0, 1.0)


class TestUnionArea:
    def test_single(self):
        assert union_area([Rect(0, 0, 3, 4)]) == 12.0

    def test_disjoint_sum(self):
        assert union_area([Rect(0, 0, 1, 1), Rect(5, 5, 7, 7)]) == 5.0

    def test_overlap_not_double_counted(self):
        assert union_area([Rect(0, 0, 4, 4), Rect(2, 0, 6, 4)]) == 24.0

    def test_contained_rect_ignored(self):
        assert union_area([Rect(0, 0, 10, 10), Rect(2, 2, 4, 4)]) == 100.0

    def test_empty(self):
        assert union_area([]) == 0.0

    @given(st.lists(rects_strategy(), min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_matches_raster_monte_carlo(self, rects):
        """Union area agrees with a fine rasterization to within the
        raster quantization bound (perimeter * pixel size)."""
        resolution = 800
        scale = resolution / 160.0
        pixel = 1.0 / scale
        image = np.zeros((resolution, resolution), dtype=bool)
        for r in rects:
            x0, y0 = int(round(r.x0 * scale)), int(round(r.y0 * scale))
            x1, y1 = int(round(r.x1 * scale)), int(round(r.y1 * scale))
            image[y0:y1, x0:x1] = True
        raster_area = image.sum() / scale ** 2
        exact = union_area(rects)
        bound = sum(2 * (r.width + r.height) for r in rects) * pixel + 1.0
        assert abs(exact - raster_area) <= bound

    @given(st.lists(rects_strategy(), min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_bounds(self, rects):
        """max(single areas) <= union <= sum of areas."""
        union = union_area(rects)
        assert max(r.area for r in rects) <= union + 1e-9
        assert union <= sum(r.area for r in rects) + 1e-9


class TestBoundingBox:
    def test_simple(self):
        box = bounding_box([Rect(0, 0, 1, 1), Rect(5, -2, 6, 3)])
        assert box == Rect(0, -2, 6, 3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])
