"""Unit tests for the Layout clip container."""

import pytest

from repro.geometry import Layout, Rect


class TestLayout:
    def test_construction(self):
        layout = Layout(extent=100.0, rects=[Rect(10, 10, 20, 20)], name="x")
        assert len(layout) == 1
        assert layout.name == "x"
        assert layout.window == Rect(0, 0, 100, 100)

    def test_invalid_extent(self):
        with pytest.raises(ValueError):
            Layout(extent=0.0)

    def test_add_validates_window(self):
        layout = Layout(extent=50.0)
        layout.add(Rect(0, 0, 50, 10))
        with pytest.raises(ValueError):
            layout.add(Rect(40, 40, 60, 50))

    def test_extend(self):
        layout = Layout(extent=50.0)
        layout.extend([Rect(0, 0, 10, 10), Rect(20, 20, 30, 30)])
        assert len(layout) == 2

    def test_validate_catches_out_of_window(self):
        layout = Layout(extent=50.0, rects=[Rect(0, 0, 60, 10)])
        with pytest.raises(ValueError):
            layout.validate()

    def test_pattern_area_is_union(self):
        layout = Layout(extent=100.0,
                        rects=[Rect(0, 0, 10, 10), Rect(5, 0, 15, 10)])
        assert layout.pattern_area == 150.0
        assert layout.density == 150.0 / 10000.0

    def test_iteration(self):
        rects = [Rect(0, 0, 5, 5), Rect(10, 10, 15, 15)]
        layout = Layout(extent=20.0, rects=rects)
        assert list(layout) == rects

    def test_scaled(self):
        layout = Layout(extent=10.0, rects=[Rect(1, 1, 2, 2)])
        scaled = layout.scaled(4.0)
        assert scaled.extent == 40.0
        assert scaled.rects[0] == Rect(4, 4, 8, 8)

    def test_translated_into_window_centers_pattern(self):
        layout = Layout(extent=100.0, rects=[Rect(0, 0, 10, 10)])
        centered = layout.translated_into_window()
        assert centered.bounding_box().center == (50.0, 50.0)

    def test_bounding_box(self):
        layout = Layout(extent=100.0,
                        rects=[Rect(5, 5, 10, 10), Rect(50, 60, 70, 80)])
        assert layout.bounding_box() == Rect(5, 5, 70, 80)
