"""Shared-memory transport: ownership, attachment, lifetime."""

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.parallel.shm import SharedArray, ShmSpec, copy_out


class TestSharedArray:
    def test_create_is_zero_filled(self):
        with SharedArray.create((3, 4), np.float64) as shared:
            assert shared.array.shape == (3, 4)
            assert shared.array.dtype == np.float64
            np.testing.assert_array_equal(shared.array, 0.0)

    def test_from_array_roundtrip(self):
        data = np.arange(24.0).reshape(2, 3, 4)
        with SharedArray.from_array(data) as shared:
            np.testing.assert_array_equal(shared.array, data)
            # A copy, not a view: mutating the source does not leak in.
            data[0, 0, 0] = -1.0
            assert shared.array[0, 0, 0] == 0.0

    def test_attach_maps_same_pages(self):
        with SharedArray.create((4,), np.float64) as owner:
            attached = SharedArray.attach(owner.spec)
            try:
                attached.array[2] = 7.5
                assert owner.array[2] == 7.5
                assert not attached.owner
            finally:
                attached.close()

    def test_attached_unlink_refused(self):
        with SharedArray.create((2,), np.float64) as owner:
            attached = SharedArray.attach(owner.spec)
            try:
                with pytest.raises(RuntimeError):
                    attached.unlink()
            finally:
                attached.close()

    def test_owner_exit_unlinks(self):
        with SharedArray.create((2,), np.float64) as shared:
            name = shared.spec.name
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_spec_is_plain_data(self):
        with SharedArray.create((2, 2), np.float32) as shared:
            spec = shared.spec
            assert isinstance(spec, ShmSpec)
            assert spec.shape == (2, 2)
            assert np.dtype(spec.dtype) == np.float32

    def test_copy_out(self):
        assert copy_out(None) is None
        with SharedArray.from_array(np.ones((2, 2))) as shared:
            copied = copy_out(shared)
            shared.array[0, 0] = 5.0
            assert copied[0, 0] == 1.0
