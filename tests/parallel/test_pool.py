"""Worker pool semantics: ordering, error surfacing, crash handling."""

import os

import numpy as np
import pytest

from repro.parallel import (SharedArray, WorkerCrashError, WorkerPool,
                            WorkerTaskError, worker_state)


# Task functions must be module-level to be picklable.
def _square(x):
    return x * x


def _fail(x):
    raise ValueError(f"bad item {x}")


def _die():
    os._exit(3)


def _read_state(offset):
    return worker_state()["base"] + offset


def _write_slot(index, spec, value):
    from repro.parallel import attach_array
    attach_array(spec)[index] = value
    return index


class TestWorkerPool:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_map_preserves_submission_order(self):
        with WorkerPool(2) as pool:
            results = pool.map(_square, [(i,) for i in range(10)])
        assert results == [i * i for i in range(10)]

    def test_task_exception_surfaces_with_remote_traceback(self):
        with WorkerPool(2) as pool:
            with pytest.raises(WorkerTaskError) as excinfo:
                pool.map(_fail, [(7,)])
        assert "ValueError" in str(excinfo.value)
        assert "bad item 7" in str(excinfo.value)
        assert "Traceback" in excinfo.value.remote_traceback

    def test_worker_crash_raises_instead_of_hanging(self):
        with WorkerPool(2) as pool:
            with pytest.raises(WorkerCrashError):
                pool.map(_die, [() for _ in range(4)])

    def test_broadcast_state_reaches_workers(self):
        with WorkerPool(2, state={"base": 100}) as pool:
            results = pool.map(_read_state, [(i,) for i in range(4)])
        assert results == [100, 101, 102, 103]

    def test_tasks_write_shared_output(self):
        with SharedArray.create((6,), np.float64) as shared:
            with WorkerPool(2) as pool:
                pool.map(_write_slot,
                         [(i, shared.spec, float(10 * i)) for i in range(6)])
            np.testing.assert_array_equal(shared.array,
                                          [0.0, 10.0, 20.0, 30.0, 40.0, 50.0])

    def test_stats_accounting(self):
        with WorkerPool(2) as pool:
            pool.map(_square, [(i,) for i in range(8)])
            stats = pool.stats
        assert stats.tasks == 8
        assert stats.workers == 2
        assert stats.wall_seconds > 0.0
        assert sum(stats.task_counts.values()) == 8
        assert stats.total_busy_seconds >= 0.0
        table = stats.format_table()
        assert "worker pid" in table
        assert "total" in table
