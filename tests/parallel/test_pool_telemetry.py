"""Fleet observability through the worker pool (ISSUE 8 tentpole).

End-to-end checks that a parallel run is exactly as observable as a
serial one: engine-counter deltas always ship and sum correctly,
spans merge into one pid-laned Chrome trace when the parent traces,
the heartbeat/watchdog path flags a deliberately stalled task, and
the progress callback fires per completed task.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.litho import LithoConfig
from repro.obs import trace
from repro.parallel import WorkerPool
from repro.parallel.pool import worker_engine


def _forward_task(seed):
    """Run one engine forward in the worker; returns the aerial sum."""
    engine = worker_engine()
    rng = np.random.default_rng(seed)
    mask = (rng.random((engine.kernels.grid,) * 2) > 0.5).astype(float)
    return float(engine.aerial(mask).sum())


def _sleep_task(seconds):
    time.sleep(seconds)
    return os.getpid()


def _hung_task(seconds):
    """Fault injection: silence this worker's heartbeat, then hang.

    Stopping the beat thread mid-task is what a truly hung worker
    looks like from the parent's side — the slot stays task-active
    while its timestamp goes stale.
    """
    from repro.parallel.pool import _WORKER_STATE
    heartbeat = _WORKER_STATE["heartbeat"]
    if heartbeat is not None:
        heartbeat._stop.set()
    time.sleep(seconds)
    return os.getpid()


@pytest.fixture(scope="module")
def litho():
    return LithoConfig.small(32)


class TestEngineDeltaShipping:
    def test_fleet_totals_count_worker_calls(self, litho):
        with WorkerPool(2, litho_config=litho, health=False) as pool:
            pool.map(_forward_task, [(i,) for i in range(6)])
            totals = pool.stats.fleet.engine_totals
        assert totals["forward_calls"] == 6
        assert totals["forward_masks"] == 6
        assert totals["forward_seconds"] > 0.0
        assert pool.stats.fleet.tasks == 6

    def test_per_pid_breakdown_sums_to_fleet(self, litho):
        with WorkerPool(2, litho_config=litho, health=False) as pool:
            pool.map(_forward_task, [(i,) for i in range(8)])
            fleet = pool.stats.fleet
        assert sum(e["forward_calls"] for e in fleet.pid_engine.values()) \
            == fleet.engine_totals["forward_calls"]

    def test_deltas_ship_without_tracing(self, litho):
        assert not trace.is_enabled()
        with WorkerPool(1, litho_config=litho, health=False) as pool:
            pool.map(_forward_task, [(0,)])
            fleet = pool.stats.fleet
        assert fleet.engine_totals["forward_calls"] == 1
        assert fleet.span_summary == {}  # spans did not ship


class TestMergedTrace:
    def test_two_worker_chrome_round_trip(self, litho, tmp_path):
        """A tiled-style 2-worker run produces one Perfetto-loadable
        trace with litho spans from every worker pid, nested in time
        under the parent's ``parallel.map`` span."""
        tracer = trace.enable(trace.Tracer())
        try:
            with WorkerPool(2, litho_config=litho, health=False) as pool:
                pool.map(_forward_task, [(i,) for i in range(8)])
        finally:
            trace.disable()
        path = tracer.write_chrome_trace(str(tmp_path / "trace.json"))
        chrome = json.load(open(path, encoding="utf-8"))
        events = chrome["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        worker_pids = {e["pid"] for e in complete} - {os.getpid()}
        assert len(worker_pids) == 2

        # pid/tid lane correctness: every worker event keeps its own
        # pid, and the parent's events keep the parent pid.
        litho_spans = [e for e in complete if e["name"] == "litho.forward"]
        assert len(litho_spans) == 8
        assert {e["pid"] for e in litho_spans} == worker_pids
        parent_spans = [e for e in complete if e["name"] == "parallel.map"]
        assert [e["pid"] for e in parent_spans] == [os.getpid()]

        # Worker lanes are labeled via process_name metadata events.
        meta = [e for e in events if e.get("ph") == "M"]
        assert {e["pid"] for e in meta} == worker_pids

        # Time nesting: worker spans rebased onto the parent clock fall
        # inside the parent's map span.
        (map_span,) = parent_spans
        for event in litho_spans:
            assert event["ts"] >= map_span["ts"] - 1e3  # 1ms clock slack
            assert (event["ts"] + event["dur"]
                    <= map_span["ts"] + map_span["dur"] + 1e3)

    def test_fleet_reconciles_with_span_counts(self, litho):
        trace.enable(trace.Tracer())
        try:
            with WorkerPool(2, litho_config=litho, health=False) as pool:
                pool.map(_forward_task, [(i,) for i in range(6)])
                result = pool.stats.fleet.reconcile()
        finally:
            trace.disable()
        assert result["forward_calls"]["match"] is True
        assert result["forward_calls"]["stats"] == 6

    def test_span_cap_bounds_shipping(self, litho, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_SPAN_CAP", "1")
        trace.enable(trace.Tracer())
        try:
            with WorkerPool(1, litho_config=litho, health=False) as pool:
                pool.map(_forward_task, [(i,) for i in range(3)])
                fleet = pool.stats.fleet
        finally:
            trace.disable()
        assert fleet.dropped_spans > 0
        # The summary stays complete even though events were dropped.
        assert fleet.span_summary["litho.forward"]["count"] == 3


class TestHealth:
    def test_watchdog_flags_deliberately_stalled_task(self, litho):
        with WorkerPool(1, litho_config=litho, health=True,
                        stall_after=0.2, heartbeat_interval=0.05) as pool:
            pool.map(_hung_task, [(1.0,)])
            stalls = list(pool.stats.stalls)
        assert stalls, "watchdog missed the silent active task"
        assert stalls[0].gap_seconds >= 0.2
        # The same task is reported once, not once per scan.
        assert len({(s.pid, s.task_seq) for s in stalls}) == len(stalls)

    def test_healthy_fast_tasks_do_not_stall(self, litho):
        with WorkerPool(2, litho_config=litho, health=True,
                        stall_after=30.0) as pool:
            pool.map(_forward_task, [(i,) for i in range(4)])
            assert pool.stats.stalls == []

    def test_straggler_detection(self, litho):
        with WorkerPool(1, litho_config=litho, health=False) as pool:
            pool.map(_sleep_task,
                     [(0.01,), (0.01,), (0.01,), (0.01,), (0.25,)])
            stragglers = pool.stats.stragglers(k=3.0, min_tasks=4)
        assert len(stragglers) == 1
        assert stragglers[0][1] >= 0.25

    @pytest.mark.skipif(not os.path.exists("/proc/self/statm"),
                        reason="no procfs")
    def test_resource_samples_land_in_pool_registry(self, litho):
        with WorkerPool(1, litho_config=litho, health=True,
                        heartbeat_interval=0.02) as pool:
            pool.map(_sleep_task, [(0.2,)])
            gauges = pool.registry.snapshot()["gauges"]
        assert any(name.startswith("pool.worker.rss_bytes|pid=")
                   for name in gauges)


class TestProgress:
    def test_callback_fires_per_task_in_completion_order(self, litho):
        ticks = []
        with WorkerPool(2, litho_config=litho, health=False) as pool:
            pool.map(_forward_task, [(i,) for i in range(5)],
                     progress=lambda *args: ticks.append(args))
        assert [t[0] for t in ticks] == [1, 2, 3, 4, 5]
        assert all(t[1] == 5 for t in ticks)
        pids = {t[2] for t in ticks}
        assert pids and all(pid != os.getpid() for pid in pids)
        assert all(t[3] >= 0.0 for t in ticks)

    def test_pool_gauges_track_completion(self, litho):
        with WorkerPool(1, litho_config=litho, health=False) as pool:
            pool.map(_forward_task, [(i,) for i in range(3)])
            snapshot = pool.registry.snapshot()
        assert snapshot["gauges"]["pool.tasks_total"] == 3
        assert snapshot["gauges"]["pool.tasks_done"] == 3
        assert snapshot["histograms"]["pool.task_seconds"]["count"] == 3
