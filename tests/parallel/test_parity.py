"""Parallel execution must not change results.

Float64 runs are **bit-exact** against the serial code path (ILT is
noise-free descent on identical inputs); f32 runs carry the documented
precision tolerance (DESIGN.md §10): litho error within 1e-3 relative
of the f64 result.
"""

import numpy as np
import pytest

from repro.core import GanOpcConfig, GanOpcFlow, MaskGenerator
from repro.ilt import ILTConfig
from repro.ilt.batched import BatchedILTOptimizer
from repro.layoutgen import SyntheticDataset
from repro.litho import LithoConfig, LithoEngine, build_kernels
from repro.parallel import parallel_batched_ilt, parallel_ilt, shard_bounds

GRID = 32
ITERS = 10


@pytest.fixture(scope="module")
def litho():
    return LithoConfig.small(GRID)


@pytest.fixture(scope="module")
def targets(litho):
    rng = np.random.default_rng(5)
    return (rng.random((4, GRID, GRID)) > 0.75).astype(float)


@pytest.fixture(scope="module")
def ilt_config():
    return ILTConfig(max_iterations=ITERS)


class TestParallelILTParity:
    def test_f64_bit_exact(self, litho, targets, ilt_config):
        serial = parallel_ilt(targets, litho, ilt_config, workers=1)
        parallel = parallel_ilt(targets, litho, ilt_config, workers=2)
        assert parallel.workers == 2
        for s, p in zip(serial.results, parallel.results):
            np.testing.assert_array_equal(p.mask, s.mask)
            np.testing.assert_array_equal(p.mask_relaxed, s.mask_relaxed)
            np.testing.assert_array_equal(p.params, s.params)
            assert p.l2 == s.l2
            assert p.l2_history == s.l2_history
            assert p.relaxed_history == s.relaxed_history
            assert p.iterations == s.iterations
            assert p.converged == s.converged

    def test_warm_start_bit_exact(self, litho, targets, ilt_config):
        initial = np.clip(targets + 0.25, 0.0, 1.0)
        serial = parallel_ilt(targets, litho, ilt_config, workers=1,
                              initial_masks=initial)
        parallel = parallel_ilt(targets, litho, ilt_config, workers=2,
                                initial_masks=initial)
        np.testing.assert_array_equal(parallel.masks, serial.masks)

    def test_f32_parallel_matches_f32_serial(self, litho, targets,
                                             ilt_config):
        serial = parallel_ilt(targets, litho, ilt_config, workers=1,
                              precision="f32")
        parallel = parallel_ilt(targets, litho, ilt_config, workers=2,
                                precision="f32")
        np.testing.assert_array_equal(parallel.masks, serial.masks)
        np.testing.assert_array_equal(parallel.l2, serial.l2)

    def test_f32_litho_error_within_tolerance(self, litho, targets,
                                              ilt_config):
        """The documented f32 tolerance: final relaxed litho error
        within 1e-3 relative of the f64 run's."""
        run64 = parallel_ilt(targets, litho, ilt_config, workers=1)
        run32 = parallel_ilt(targets, litho, ilt_config, workers=2,
                             precision="f32")
        engine = LithoEngine.for_kernels(build_kernels(litho))
        relaxed64 = np.stack([r.mask_relaxed for r in run64.results])
        relaxed32 = np.stack([r.mask_relaxed for r in run32.results])
        err64 = engine.litho_error(relaxed64, targets)
        err32 = engine.litho_error(relaxed32, targets)
        delta = np.abs(err32 - err64) / np.maximum(err64, 1.0)
        assert delta.max() <= 1e-3, delta

    def test_pool_stats_populated(self, litho, targets, ilt_config):
        result = parallel_ilt(targets, litho, ilt_config, workers=2)
        assert result.pool_stats is not None
        assert result.pool_stats.tasks == len(targets)
        assert result.runtime_seconds > 0.0


class TestParallelBatchedILTParity:
    def test_shard_bounds_cover_range(self):
        for n in (1, 4, 7, 10):
            for shards in (1, 2, 3, 5, 12):
                bounds = shard_bounds(n, shards)
                covered = [i for start, stop in bounds
                           for i in range(start, stop)]
                assert covered == list(range(n))

    def test_f64_masks_and_l2_bit_exact(self, litho, targets, ilt_config):
        serial = BatchedILTOptimizer(litho, ilt_config).optimize(targets)
        parallel = parallel_batched_ilt(targets, litho, ilt_config,
                                        workers=2)
        np.testing.assert_array_equal(parallel.masks, serial.masks)
        np.testing.assert_array_equal(parallel.l2, serial.l2)
        assert parallel.iterations == serial.iterations
        np.testing.assert_allclose(parallel.relaxed_history,
                                   serial.relaxed_history, rtol=1e-12)

    def test_batched_optimizer_workers_kwarg(self, litho, targets,
                                             ilt_config):
        optimizer = BatchedILTOptimizer(litho, ilt_config)
        serial = optimizer.optimize(targets)
        parallel = optimizer.optimize(targets, workers=2)
        np.testing.assert_array_equal(parallel.masks, serial.masks)


class TestDatasetParity:
    def test_precompute_parallel_bit_exact(self, litho):
        ilt_config = ILTConfig(max_iterations=6)
        kwargs = dict(size=3, seed=11, ilt_config=ilt_config)
        serial = SyntheticDataset(litho, **kwargs)
        serial.precompute()
        parallel = SyntheticDataset(litho, **kwargs)
        parallel.precompute(workers=2)
        for i in range(3):
            np.testing.assert_array_equal(parallel.target(i),
                                          serial.target(i))
            np.testing.assert_array_equal(parallel.reference_mask(i),
                                          serial.reference_mask(i))
            assert parallel.layout(i).rects == serial.layout(i).rects

    def test_precompute_parallel_skips_cached(self, litho):
        dataset = SyntheticDataset(litho, size=2, seed=11,
                                   ilt_config=ILTConfig(max_iterations=4))
        dataset.precompute()
        masks = [dataset.reference_mask(i).copy() for i in range(2)]
        dataset.precompute(workers=2)  # everything cached: no-op
        for i in range(2):
            np.testing.assert_array_equal(dataset.reference_mask(i),
                                          masks[i])


class TestFlowParity:
    def test_optimize_batch_parallel_bit_exact(self, litho, targets):
        config = GanOpcConfig.small(GRID)
        generator = MaskGenerator(config.generator_channels,
                                  rng=np.random.default_rng(2))
        generator.eval()
        flow = GanOpcFlow(generator, litho,
                          ILTConfig(max_iterations=6, patience=4))
        serial = flow.optimize_batch(targets)
        parallel = flow.optimize_batch(targets, workers=2)
        assert len(parallel) == len(serial)
        for s, p in zip(serial, parallel):
            np.testing.assert_array_equal(p.generated_mask, s.generated_mask)
            np.testing.assert_array_equal(p.mask, s.mask)
            assert p.l2 == s.l2
            assert p.ilt_result.iterations == s.ilt_result.iterations
