"""Backend registry + numpy reference backend bit-exactness.

The numpy backend must be a pure pass-through: every seam method
returns bit-identical results to the inline numpy calls the engine and
nn substrate used to make before the seam existed.  The cupy backend
is environment-dependent: on machines without a working GPU install it
must raise :class:`BackendUnavailableError` at *resolve* time (tests
skip, they never fail, and nothing cupy-related is imported at module
import time).
"""

import numpy as np
import pytest

from repro.backend import (ArrayBackend, BackendUnavailableError, BACKENDS,
                           CupyBackend, NumpyBackend, available_backends,
                           get_backend, resolve_backend, set_backend)
from repro.nn import functional as F


class TestResolution:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend(None).name == "numpy"

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert resolve_backend(None).name == "numpy"

    @pytest.mark.parametrize("alias", ["numpy", "np", "cpu", "NumPy", " np "])
    def test_aliases(self, alias):
        assert resolve_backend(alias).name == "numpy"

    def test_instance_passthrough(self):
        backend = resolve_backend("numpy")
        assert resolve_backend(backend) is backend

    def test_memoized(self):
        assert resolve_backend("numpy") is resolve_backend("cpu")

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("tpu")

    def test_registry_contents(self):
        assert BACKENDS["numpy"] is NumpyBackend
        assert BACKENDS["cupy"] is CupyBackend

    def test_available_backends_never_raises(self):
        availability = available_backends()
        assert availability["numpy"] is True
        assert isinstance(availability["cupy"], bool)

    def test_set_backend_roundtrip(self):
        try:
            installed = set_backend("numpy")
            assert get_backend() is installed
        finally:
            set_backend(None)

    def test_set_backend_none_resets_to_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        set_backend(None)
        assert get_backend().name == "numpy"


class TestCupyUnavailable:
    """cupy without a GPU must skip, not fail."""

    def test_resolve_skips_or_works(self):
        if not CupyBackend.is_available():
            with pytest.raises(BackendUnavailableError,
                               match="cupy backend unavailable"):
                resolve_backend("cupy")
            pytest.skip("cupy backend unavailable on this machine")
        backend = resolve_backend("cupy")
        host = np.arange(12.0).reshape(3, 4)
        device = backend.asarray(host)
        assert backend.is_native(device)
        np.testing.assert_array_equal(backend.to_numpy(device), host)

    def test_is_available_false_without_exception(self):
        # Must not raise regardless of the environment.
        assert CupyBackend.is_available() in (True, False)


class TestNumpyBitExactness:
    """Every seam method forwards to the exact numpy call."""

    def setup_method(self):
        self.backend = resolve_backend("numpy")
        self.rng = np.random.default_rng(7)

    def test_identity_and_nativeness(self):
        x = self.rng.random((4, 4))
        assert self.backend.asarray(x) is x
        assert self.backend.to_numpy(x) is x
        assert self.backend.is_native(x)
        assert not self.backend.is_native([1.0, 2.0])
        assert self.backend.xp is np

    def test_alloc(self):
        z = self.backend.zeros((3, 5), dtype=np.float32)
        assert z.shape == (3, 5) and z.dtype == np.float32
        assert not z.any()
        e = self.backend.empty((2, 2), dtype=np.complex128)
        assert e.shape == (2, 2) and e.dtype == np.complex128

    def test_matmul(self):
        a = self.rng.random((5, 6)) + 1j * self.rng.random((5, 6))
        b = self.rng.random((6, 7)) + 1j * self.rng.random((6, 7))
        np.testing.assert_array_equal(self.backend.matmul(a, b), a @ b)
        out = np.empty((5, 7), dtype=complex)
        result = self.backend.matmul(a, b, out=out)
        assert result is out
        np.testing.assert_array_equal(out, a @ b)

    def test_einsum(self):
        a = self.rng.random((3, 4, 5))
        b = self.rng.random((5, 6))
        np.testing.assert_array_equal(
            self.backend.einsum("nij,jk->nik", a, b),
            np.einsum("nij,jk->nik", a, b))

    def test_fft_family(self):
        x = self.rng.random((2, 8, 8))
        np.testing.assert_array_equal(self.backend.rfft2(x),
                                      np.fft.rfft2(x, axes=(-2, -1)))
        spec = np.fft.rfft2(x, axes=(-2, -1))
        np.testing.assert_array_equal(
            self.backend.irfft2(spec, s=(8, 8)),
            np.fft.irfft2(spec, s=(8, 8), axes=(-2, -1)))
        c = x.astype(complex)
        np.testing.assert_array_equal(self.backend.fft2(c),
                                      np.fft.fft2(c, axes=(-2, -1)))
        np.testing.assert_array_equal(self.backend.ifft2(c),
                                      np.fft.ifft2(c, axes=(-2, -1)))

    def test_im2col_col2im_match_nn_functional(self):
        x = self.rng.random((2, 3, 9, 9))
        kernel, stride, padding = (3, 3), (2, 2), (1, 1)
        cols_backend = self.backend.im2col(x, kernel, stride, padding)
        cols_nn = F.im2col(x, kernel, stride, padding)
        np.testing.assert_array_equal(cols_backend, cols_nn)
        image_backend = self.backend.col2im(cols_backend, x.shape, kernel,
                                            stride, padding)
        image_nn = F.col2im(cols_nn, x.shape, kernel, stride, padding)
        np.testing.assert_array_equal(image_backend, image_nn)

    def test_elementwise_and_reductions(self):
        a = self.rng.random((4, 4)) + 1j * self.rng.random((4, 4))
        b = self.rng.random((4, 4)) + 1j * self.rng.random((4, 4))
        np.testing.assert_array_equal(self.backend.conjugate(a), np.conj(a))
        np.testing.assert_array_equal(self.backend.multiply(a, b), a * b)
        out = np.empty_like(a)
        assert self.backend.multiply(a, b, out=out) is out
        np.testing.assert_array_equal(out, a * b)
        x = self.rng.random((3, 5))
        np.testing.assert_array_equal(self.backend.sum(x, axis=0),
                                      np.sum(x, axis=0))
        np.testing.assert_array_equal(self.backend.mean(x, axis=1),
                                      np.mean(x, axis=1))

    def test_ascontiguousarray(self):
        x = self.rng.random((6, 6))[::2]
        assert not x.flags.c_contiguous
        y = self.backend.ascontiguousarray(x)
        assert y.flags.c_contiguous
        np.testing.assert_array_equal(y, x)

    def test_synchronize_is_noop(self):
        assert self.backend.synchronize() is None

    def test_is_array_backend(self):
        assert isinstance(self.backend, ArrayBackend)


class TestEngineBackendParity:
    """An engine built with an explicit numpy backend is bit-identical
    to one built with no backend argument at all."""

    def test_forward_and_gradient_bit_exact(self):
        from repro.litho import LithoConfig, LithoEngine, build_kernels
        kernels = build_kernels(LithoConfig.small(32))
        rng = np.random.default_rng(0)
        masks = rng.random((2, 32, 32))
        targets = (rng.random((2, 32, 32)) > 0.5).astype(float)

        default = LithoEngine(kernels=kernels)
        explicit = LithoEngine(kernels=kernels,
                               backend=resolve_backend("numpy"))
        np.testing.assert_array_equal(default.aerial(masks),
                                      explicit.aerial(masks))
        e0, g0 = default.error_and_gradient_wrt_mask(masks, targets)
        e1, g1 = explicit.error_and_gradient_wrt_mask(masks, targets)
        np.testing.assert_array_equal(e0, e1)
        np.testing.assert_array_equal(g0, g1)
