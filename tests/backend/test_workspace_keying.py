"""Workspace arenas must never alias buffers across dtypes/backends.

Regression tests for the composite ``(key, dtype, backend)`` storage
keys: before them, an arena shared by f32 and f64 call paths thrashed
one slot per key (reallocating on every precision switch) — and worse,
a same-shape request could hand an f32 caller a live f64 buffer's
memory reinterpreted.
"""

import numpy as np

from repro.backend import resolve_backend
from repro.backend.numpy_backend import NumpyBackend
from repro.workspace import Workspace


class TestDtypeKeying:
    def test_cross_dtype_never_aliases(self):
        ws = Workspace(enabled=True)
        a32 = ws.get("scratch", (8, 8), np.float32)
        a64 = ws.get("scratch", (8, 8), np.float64)
        assert a32.dtype == np.float32
        assert a64.dtype == np.float64
        assert not np.shares_memory(a32, a64)
        # Writing through one slot must not corrupt the other.
        a32.fill(1.0)
        a64.fill(2.0)
        assert float(a32[0, 0]) == 1.0
        assert float(a64[0, 0]) == 2.0

    def test_cross_dtype_does_not_thrash(self):
        ws = Workspace(enabled=True)
        a32 = ws.get("scratch", (4, 4), np.float32)
        a64 = ws.get("scratch", (4, 4), np.float64)
        # Alternating dtypes must hit both slots, not reallocate.
        assert ws.get("scratch", (4, 4), np.float32) is a32
        assert ws.get("scratch", (4, 4), np.float64) is a64
        assert ws.get("scratch", (4, 4), np.float32) is a32
        assert ws.hits == 3 and ws.misses == 2

    def test_complex_dtypes_keyed_separately(self):
        ws = Workspace(enabled=True)
        c64 = ws.get("spec", (4, 4), np.complex64)
        c128 = ws.get("spec", (4, 4), np.complex128)
        assert c64.dtype == np.complex64 and c128.dtype == np.complex128
        assert not np.shares_memory(c64, c128)

    def test_shape_change_reallocates_within_dtype(self):
        ws = Workspace(enabled=True)
        small = ws.get("buf", (2, 2), np.float64)
        big = ws.get("buf", (4, 4), np.float64)
        assert small is not big
        assert ws.get("buf", (4, 4), np.float64) is big

    def test_dtype_spec_normalized(self):
        ws = Workspace(enabled=True)
        a = ws.get("buf", (2, 2), np.float64)
        # "float64", np.float64 and np.dtype(np.float64) are one slot.
        assert ws.get("buf", (2, 2), "float64") is a
        assert ws.get("buf", (2, 2), np.dtype(np.float64)) is a


class TestBackendKeying:
    class _FakeBackend(NumpyBackend):
        name = "fake"

    def test_backend_name_in_storage_key(self):
        fake = self._FakeBackend()
        ws = Workspace(enabled=True, backend=fake)
        buffer = ws.get("buf", (2, 2), np.float64)
        assert ("buf", np.dtype(np.float64), "fake") in ws._buffers
        assert ws.get("buf", (2, 2), np.float64) is buffer

    def test_default_backend_name_is_numpy(self):
        ws = Workspace(enabled=True)
        ws.get("buf", (2, 2), np.float64)
        assert ("buf", np.dtype(np.float64), "numpy") in ws._buffers

    def test_allocation_goes_through_backend(self):
        calls = []

        class SpyBackend(NumpyBackend):
            name = "spy"

            def empty(self, shape, dtype):
                calls.append((tuple(shape), np.dtype(dtype)))
                return super().empty(shape, dtype=dtype)

        ws = Workspace(enabled=True, backend=SpyBackend())
        ws.get("buf", (3, 3), np.float32)
        assert calls == [((3, 3), np.dtype(np.float32))]

    def test_engine_workspace_carries_engine_backend(self):
        from repro.litho import LithoConfig, LithoEngine, build_kernels
        engine = LithoEngine(kernels=build_kernels(LithoConfig.small(32)),
                             backend=resolve_backend("numpy"))
        assert engine.workspace._backend_name == "numpy"


class TestDisabled:
    def test_disabled_always_allocates(self):
        ws = Workspace(enabled=False)
        a = ws.get("buf", (2, 2), np.float64)
        b = ws.get("buf", (2, 2), np.float64)
        assert a is not b
