"""Autotuner: pure deterministic choice, FLOP model, preset persistence.

Measurement (wall-clock) and choice are separated by design:
:func:`choose_tuning` is a pure function of a
:class:`MeasurementTable`, so every determinism property here is
tested without timing anything.  The timing path itself
(:func:`measure_engine`) is exercised once on a tiny engine, and the
chosen tunings are checked for numerical parity against the reference
configuration.
"""

import json

import numpy as np
import pytest

from repro.backend import resolve_backend
from repro.backend.autotune import (AutotuneResult, EngineTuning,
                                    MeasurementTable, adjoint_flops,
                                    autotune_engine, blas_threads,
                                    candidate_key, choose_tuning,
                                    default_candidates, env_tuning,
                                    forward_flops, hardware_key,
                                    load_preset, measure_engine,
                                    parse_candidate_key, preset_key,
                                    save_preset)
from repro.litho import LithoConfig, LithoEngine, build_kernels
from repro.obs.profiler import matmul_flops


@pytest.fixture(scope="module")
def kernels():
    return build_kernels(LithoConfig.small(32))


def _table(entries, **overrides):
    kwargs = dict(backend="numpy", precision="f64", grid=64, batch=8,
                  flops=10**9, hardware="test-hw")
    kwargs.update(overrides)
    table = MeasurementTable(**kwargs)
    for key, seconds in entries.items():
        table.entries[key] = seconds
    return table


class TestTuningKeys:
    def test_candidate_key_roundtrip(self):
        for tuning in (EngineTuning(), EngineTuning(4, 2),
                       EngineTuning(None, 8), EngineTuning(16, 1)):
            assert parse_candidate_key(candidate_key(tuning)) == tuning

    def test_key_format(self):
        assert candidate_key(EngineTuning()) == "chunkauto/block1"
        assert candidate_key(EngineTuning(8, 4)) == "chunk8/block4"

    def test_to_from_dict(self):
        tuning = EngineTuning(batch_chunk=4, passband_block=2)
        assert EngineTuning.from_dict(tuning.to_dict()) == tuning
        assert EngineTuning.from_dict({}) == EngineTuning()


class TestChooseTuning:
    def test_fastest_wins(self):
        table = _table({"chunkauto/block1": 2.0, "chunk8/block4": 1.0,
                        "chunkauto/block2": 1.5})
        assert choose_tuning(table) == EngineTuning(8, 4)

    def test_deterministic_given_fixed_table(self):
        entries = {"chunkauto/block1": 1.25, "chunk8/block1": 1.25,
                   "chunkauto/block4": 0.75, "chunk8/block4": 0.75,
                   "chunkauto/block2": 0.9}
        # Dict insertion order must not matter.
        forward = _table(dict(entries))
        backward = _table(dict(reversed(list(entries.items()))))
        chosen = choose_tuning(forward)
        assert chosen == choose_tuning(backward)
        for _ in range(5):
            assert choose_tuning(forward) == chosen

    def test_ties_break_toward_reference(self):
        # Exact tie everywhere -> smallest block, then auto chunk.
        table = _table({key: 1.0 for key in
                        ("chunk8/block4", "chunkauto/block1",
                         "chunk8/block1", "chunkauto/block4")})
        assert choose_tuning(table) == EngineTuning(None, 1)

    def test_empty_table_is_reference(self):
        assert choose_tuning(_table({})) == EngineTuning()

    def test_roundtrip_through_dict(self):
        table = _table({"chunkauto/block1": 2.0, "chunk4/block2": 1.0})
        restored = MeasurementTable.from_dict(table.to_dict())
        assert restored == table
        assert choose_tuning(restored) == choose_tuning(table)

    def test_gflops(self):
        table = _table({"chunkauto/block1": 2.0}, flops=4 * 10**9)
        assert table.gflops("chunkauto/block1") == pytest.approx(2.0)


class TestFlopModel:
    def test_complex_matmul_is_4x_real(self):
        assert (forward_flops(64, (9, 9), 1, 1)
                > 4 * matmul_flops((9, 64), (1, 64, 64)))

    def test_linear_in_batch(self):
        one = forward_flops(64, (9, 9), 12, 1)
        four = forward_flops(64, (9, 9), 12, 4)
        assert four == pytest.approx(4 * one, rel=1e-12)

    def test_linear_in_kernels_above_spectrum(self):
        spec = forward_flops(64, (9, 9), 0, 2)
        k1 = forward_flops(64, (9, 9), 1, 2) - spec
        k12 = forward_flops(64, (9, 9), 12, 2) - spec
        assert k12 == 12 * k1

    def test_adjoint_includes_forward(self):
        fwd = forward_flops(64, (9, 9), 12, 4)
        adj = adjoint_flops(64, (9, 9), (17, 17), 12, 4)
        assert adj > fwd

    def test_matches_engine_passband(self, kernels):
        engine = LithoEngine(kernels=kernels)
        pb, apb = engine.passband_shape
        flops = adjoint_flops(engine.grid, pb, apb,
                              len(engine.kernels.weights), 2)
        assert flops > 0


class TestDefaultCandidates:
    def test_batch_one_has_no_chunk_candidates(self):
        chunks = {c.batch_chunk for c in default_candidates(1)}
        assert chunks == {None}

    def test_reference_always_included(self):
        assert EngineTuning() in default_candidates(8)

    def test_blocks_cover_grid(self):
        blocks = {c.passband_block for c in default_candidates(8)}
        assert blocks == {1, 2, 4, 8}


class TestPresets:
    def _result(self, tuning=EngineTuning(8, 2), **overrides):
        table = _table({candidate_key(tuning): 1.0,
                        "chunkauto/block1": 2.0}, **overrides)
        return AutotuneResult(tuning=tuning, table=table)

    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "presets.json"
        save_preset(path, self._result(), hardware="test-hw")
        loaded = load_preset(path, "numpy", "f64", 64, hardware="test-hw")
        assert loaded == EngineTuning(8, 2)

    def test_merge_preserves_other_presets(self, tmp_path):
        path = tmp_path / "presets.json"
        save_preset(path, self._result(), hardware="hw-a")
        save_preset(path, self._result(tuning=EngineTuning(None, 4),
                                       precision="f32"), hardware="hw-a")
        assert load_preset(path, "numpy", "f64", 64,
                           hardware="hw-a") == EngineTuning(8, 2)
        assert load_preset(path, "numpy", "f32", 64,
                           hardware="hw-a") == EngineTuning(None, 4)

    def test_hardware_fallback(self, tmp_path):
        path = tmp_path / "presets.json"
        save_preset(path, self._result(), hardware="some-other-machine")
        # No exact match for this machine -> portable fallback.
        assert load_preset(path, "numpy", "f64", 64,
                           hardware="this-machine") == EngineTuning(8, 2)

    def test_no_match_returns_none(self, tmp_path):
        path = tmp_path / "presets.json"
        save_preset(path, self._result(), hardware="hw")
        assert load_preset(path, "numpy", "f32", 64) is None
        assert load_preset(path, "numpy", "f64", 128) is None
        assert load_preset(tmp_path / "absent.json",
                           "numpy", "f64", 64) is None

    def test_schema_mismatch_returns_none(self, tmp_path):
        path = tmp_path / "presets.json"
        path.write_text(json.dumps({"schema": 999, "presets": {}}))
        assert load_preset(path, "numpy", "f64", 64) is None

    def test_save_rejects_schema_mismatch(self, tmp_path):
        path = tmp_path / "presets.json"
        path.write_text(json.dumps({"schema": 999}))
        with pytest.raises(ValueError, match="schema"):
            save_preset(path, self._result())

    def test_document_shape(self, tmp_path):
        path = tmp_path / "presets.json"
        document = save_preset(path, self._result(), hardware="hw")
        assert document["schema"] == 1
        key = preset_key("numpy", "f64", 64, "hw")
        entry = document["presets"][key]
        assert entry["tuning"] == {"batch_chunk": 8, "passband_block": 2}
        assert entry["gflops"] == pytest.approx(1.0)
        assert entry["measurements"]["entries"]

    def test_hardware_key_stable(self):
        assert hardware_key() == hardware_key()
        assert blas_threads() in hardware_key()


class TestEnvTuning:
    def test_unset_and_off(self, monkeypatch):
        for value in (None, "", "off", "0", "none", "OFF"):
            if value is None:
                monkeypatch.delenv("REPRO_AUTOTUNE", raising=False)
            else:
                monkeypatch.setenv("REPRO_AUTOTUNE", value)
            assert env_tuning("numpy", "f64", 64) is None

    def test_path_lookup(self, tmp_path, monkeypatch):
        path = tmp_path / "presets.json"
        table = _table({"chunk4/block2": 1.0})
        save_preset(path, AutotuneResult(tuning=EngineTuning(4, 2),
                                         table=table), hardware="hw")
        monkeypatch.setenv("REPRO_AUTOTUNE", str(path))
        assert env_tuning("numpy", "f64", 64) == EngineTuning(4, 2)

    def test_engine_adopts_env_preset(self, tmp_path, monkeypatch, kernels):
        path = tmp_path / "presets.json"
        table = _table({"chunk2/block2": 1.0}, grid=32)
        save_preset(path, AutotuneResult(tuning=EngineTuning(2, 2),
                                         table=table), hardware="hw")
        monkeypatch.setenv("REPRO_AUTOTUNE", str(path))
        engine = LithoEngine(kernels=kernels)
        assert engine.tuning == EngineTuning(2, 2)

    def test_explicit_tuning_beats_env(self, tmp_path, monkeypatch, kernels):
        path = tmp_path / "presets.json"
        table = _table({"chunk2/block8": 1.0}, grid=32)
        save_preset(path, AutotuneResult(tuning=EngineTuning(2, 8),
                                         table=table), hardware="hw")
        monkeypatch.setenv("REPRO_AUTOTUNE", str(path))
        engine = LithoEngine(kernels=kernels, tuning=EngineTuning())
        assert engine.tuning == EngineTuning()


class TestMeasureAndParity:
    def test_measure_engine_smoke(self, kernels):
        engine = LithoEngine(kernels=kernels)
        candidates = [EngineTuning(), EngineTuning(2, 2)]
        table = measure_engine(engine, batch=2, candidates=candidates,
                               repeats=1)
        assert set(table.entries) == {candidate_key(c) for c in candidates}
        assert all(seconds > 0 for seconds in table.entries.values())
        assert table.backend == "numpy" and table.grid == 32
        assert table.flops > 0

    def test_autotune_engine_returns_candidate(self, kernels):
        engine = LithoEngine(kernels=kernels)
        candidates = [EngineTuning(), EngineTuning(2, 4)]
        result = autotune_engine(engine, batch=2, candidates=candidates,
                                 repeats=1)
        assert result.tuning in candidates
        assert result.gflops > 0

    def test_batch_chunk_is_bit_exact(self, kernels):
        rng = np.random.default_rng(3)
        masks = rng.random((4, 32, 32))
        targets = (rng.random((4, 32, 32)) > 0.5).astype(float)
        reference = LithoEngine(kernels=kernels)
        chunked = LithoEngine(kernels=kernels, tuning=EngineTuning(2, 1))
        e0, g0 = reference.error_and_gradient_wrt_mask(masks, targets)
        e1, g1 = chunked.error_and_gradient_wrt_mask(masks, targets)
        # Samples are independent -> chunking them is exactly the same
        # arithmetic in the same order.
        np.testing.assert_array_equal(e0, e1)
        np.testing.assert_array_equal(g0, g1)

    @pytest.mark.parametrize("block", [2, 4, 8])
    def test_passband_block_parity(self, kernels, block):
        rng = np.random.default_rng(4)
        masks = rng.random((2, 32, 32))
        targets = (rng.random((2, 32, 32)) > 0.5).astype(float)
        reference = LithoEngine(kernels=kernels)
        blocked = LithoEngine(kernels=kernels,
                              tuning=EngineTuning(None, block))
        np.testing.assert_allclose(blocked.aerial(masks),
                                   reference.aerial(masks),
                                   rtol=0, atol=1e-12)
        e0, g0 = reference.error_and_gradient_wrt_mask(masks, targets)
        e1, g1 = blocked.error_and_gradient_wrt_mask(masks, targets)
        # Per-kernel accumulation order is preserved inside blocks, so
        # the only difference is batched-GEMM summation order in BLAS.
        np.testing.assert_allclose(e0, e1, rtol=1e-10)
        np.testing.assert_allclose(g0, g1, rtol=0, atol=1e-12)

    def test_block_one_is_bit_exact(self, kernels):
        rng = np.random.default_rng(5)
        masks = rng.random((2, 32, 32))
        targets = (rng.random((2, 32, 32)) > 0.5).astype(float)
        reference = LithoEngine(kernels=kernels)
        explicit = LithoEngine(kernels=kernels, tuning=EngineTuning(None, 1))
        e0, g0 = reference.error_and_gradient_wrt_mask(masks, targets)
        e1, g1 = explicit.error_and_gradient_wrt_mask(masks, targets)
        np.testing.assert_array_equal(e0, e1)
        np.testing.assert_array_equal(g0, g1)
