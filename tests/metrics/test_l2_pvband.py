"""Unit tests for L2 (Definition 1) and PV band metrics."""

import numpy as np
import pytest

from repro.litho import ProcessCorners
from repro.metrics import (mask_pv_band, pv_band, pv_band_nm2, squared_l2,
                           squared_l2_nm2)


class TestSquaredL2:
    def test_zero_for_identical(self):
        image = np.ones((8, 8))
        assert squared_l2(image, image) == 0.0

    def test_equals_xor_count_for_binary(self, rng):
        a = (rng.random((16, 16)) > 0.5).astype(float)
        b = (rng.random((16, 16)) > 0.5).astype(float)
        assert squared_l2(a, b) == np.logical_xor(a > 0, b > 0).sum()

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            squared_l2(np.zeros((4, 4)), np.zeros((5, 5)))

    def test_nm2_scaling(self):
        a = np.zeros((4, 4))
        b = a.copy()
        b[0, 0] = 1.0
        assert squared_l2_nm2(a, b, pixel_nm=8.0) == 64.0

    def test_symmetry(self, rng):
        a = rng.random((8, 8))
        b = rng.random((8, 8))
        assert squared_l2(a, b) == squared_l2(b, a)


class TestPVBand:
    def _corners(self, inner, outer):
        return ProcessCorners(nominal=outer, inner=inner, outer=outer)

    def test_zero_when_corners_agree(self):
        image = np.ones((4, 4))
        corners = ProcessCorners(nominal=image, inner=image, outer=image)
        assert pv_band(corners) == 0.0

    def test_counts_band_pixels(self):
        inner = np.zeros((4, 4))
        outer = np.zeros((4, 4))
        outer[1:3, 1:3] = 1.0
        corners = ProcessCorners(nominal=outer, inner=inner, outer=outer)
        assert pv_band(corners) == 4.0
        assert pv_band_nm2(corners, 8.0) == 256.0

    def test_shape_mismatch_raises(self):
        corners = ProcessCorners(nominal=np.zeros((4, 4)),
                                 inner=np.zeros((4, 4)),
                                 outer=np.zeros((5, 5)))
        with pytest.raises(ValueError):
            pv_band(corners)

    def test_mask_pv_band_positive_for_printing_mask(self, sim64):
        mask = np.zeros((64, 64))
        mask[27:37, 8:56] = 1.0
        assert mask_pv_band(sim64, mask) > 0.0

    def test_empty_mask_zero_band(self, sim64):
        assert mask_pv_band(sim64, np.zeros((64, 64))) == 0.0
