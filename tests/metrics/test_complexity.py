"""Unit tests for mask complexity metrics."""

import numpy as np
import pytest

from repro.metrics import corner_count, edge_length, shot_count_estimate


def _rect_mask(grid=16, r0=4, r1=12, c0=2, c1=14):
    mask = np.zeros((grid, grid))
    mask[r0:r1, c0:c1] = 1.0
    return mask


class TestEdgeLength:
    def test_single_rectangle(self):
        mask = _rect_mask()  # 8 x 12 pixels
        assert edge_length(mask) == 2 * (8 + 12)

    def test_pixel_scaling(self):
        mask = _rect_mask()
        assert edge_length(mask, pixel_nm=8.0) == 2 * (8 + 12) * 8.0

    def test_empty_mask(self):
        assert edge_length(np.zeros((8, 8))) == 0.0

    def test_full_mask_counts_border(self):
        assert edge_length(np.ones((4, 4))) == 16.0

    def test_rougher_mask_longer_boundary(self, rng):
        smooth = _rect_mask()
        rough = smooth.copy()
        rough[4, 4:12:2] = 0.0  # serrate the top edge
        assert edge_length(rough) > edge_length(smooth)

    def test_validates_rank(self):
        with pytest.raises(ValueError):
            edge_length(np.zeros((2, 2, 2)))


class TestCornerCount:
    def test_rectangle_has_four(self):
        assert corner_count(_rect_mask()) == 4

    def test_l_shape_has_six(self):
        mask = np.zeros((16, 16))
        mask[4:12, 2:6] = 1.0
        mask[8:12, 2:14] = 1.0
        assert corner_count(mask) == 6

    def test_empty(self):
        assert corner_count(np.zeros((4, 4))) == 0

    def test_single_pixel(self):
        mask = np.zeros((4, 4))
        mask[1, 1] = 1.0
        assert corner_count(mask) == 4

    def test_diagonal_checkerboard(self):
        mask = np.zeros((4, 4))
        mask[1, 1] = mask[2, 2] = 1.0
        # Two single-pixel squares: 8 corners, the shared 2x2 window is
        # a checkerboard contributing 2 of them.
        assert corner_count(mask) == 8


class TestShotCount:
    def test_rectangle_is_one_shot(self):
        assert shot_count_estimate(_rect_mask()) == 1

    def test_two_rectangles(self):
        mask = np.zeros((16, 16))
        mask[2:6, 2:6] = 1.0
        mask[10:14, 8:12] = 1.0
        assert shot_count_estimate(mask) == 2

    def test_l_shape_is_two_shots(self):
        mask = np.zeros((16, 16))
        mask[4:12, 2:6] = 1.0
        mask[8:12, 2:14] = 1.0
        assert shot_count_estimate(mask) == 2

    def test_empty(self):
        assert shot_count_estimate(np.zeros((4, 4))) == 0

    def test_ilt_mask_more_complex_than_target(self, litho32, kernels32):
        """Free-form ILT masks must cost more shots than the drawn
        rectilinear target — the manufacturability trade the metric
        exists to expose."""
        from repro.ilt import ILTConfig, ILTOptimizer
        target = _rect_mask(32, 12, 22, 4, 28)
        result = ILTOptimizer(litho32, ILTConfig(max_iterations=60),
                              kernels=kernels32).optimize(target)
        assert shot_count_estimate(result.mask) >= shot_count_estimate(target)
        assert corner_count(result.mask) >= corner_count(target)
