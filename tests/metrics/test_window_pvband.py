"""Window PV band over a condition stack, and window columns in
mask evaluation reports."""

import numpy as np
import pytest

from repro.litho import ConditionSet, LithoEngine
from repro.metrics import (evaluate_mask, mask_pv_band, mask_window_pv_band,
                           window_band, window_pv_band, window_pv_band_nm2)


class TestWindowBand:
    def test_requires_corner_stack(self):
        with pytest.raises(ValueError):
            window_band(np.zeros((4, 4), dtype=bool))
        with pytest.raises(ValueError):
            window_band(np.zeros((2, 2, 4, 4), dtype=bool))

    def test_union_minus_intersection(self):
        wafers = np.zeros((3, 4, 4), dtype=bool)
        wafers[0, 0:2, 0:2] = True
        wafers[1, 0:3, 0:2] = True
        wafers[2, 0:2, 0:2] = True
        band = window_band(wafers)
        expected = np.zeros((4, 4), dtype=bool)
        expected[2, 0:2] = True  # printed at one corner, not at all
        np.testing.assert_array_equal(band, expected)
        assert window_pv_band(wafers) == 2.0
        assert window_pv_band_nm2(wafers, pixel_nm=8.0) == 128.0

    def test_two_corner_stack_is_xor(self, rng):
        wafers = rng.random((2, 8, 8)) > 0.5
        np.testing.assert_array_equal(
            window_band(wafers), np.logical_xor(wafers[0], wafers[1]))

    def test_identical_corners_give_zero(self):
        wafer = np.ones((1, 4, 4), dtype=bool).repeat(5, axis=0)
        assert window_pv_band(wafer) == 0.0


class TestMaskWindowPVBand:
    def test_dose_band_brackets_nominal_pvband(self, litho32, kernels32,
                                               sim32):
        """The +-dose window band equals the classic inner/outer PV band
        when the corner stack is exactly the dose bracket."""
        mask = np.zeros((32, 32))
        mask[10:22, 8:24] = 1.0
        dv = litho32.dose_variation
        engine = LithoEngine.for_conditions(
            kernels32, ConditionSet.grid(defocuses=(0.0,),
                                         doses=(1.0 - dv, 1.0, 1.0 + dv)))
        assert mask_window_pv_band(engine, mask) == mask_pv_band(sim32, mask)

    def test_defocus_widens_band(self, kernels32):
        mask = np.zeros((32, 32))
        mask[10:22, 8:24] = 1.0
        dose_only = LithoEngine.for_conditions(
            kernels32, ConditionSet.dose_corners(0.02))
        with_focus = LithoEngine.for_conditions(
            kernels32, ConditionSet.grid(defocuses=(0.0, 60.0),
                                         doses=(0.98, 1.0, 1.02)))
        assert (mask_window_pv_band(with_focus, mask)
                >= mask_window_pv_band(dose_only, mask))


class TestEvaluationWindowColumns:
    @pytest.fixture(scope="class")
    def mask_and_target(self):
        target = np.zeros((32, 32))
        target[12:20, 6:26] = 1.0
        mask = target.copy()
        mask[11:21, 5:27] = 1.0
        return mask, target

    def test_fields_default_to_none(self, sim32, mask_and_target):
        mask, target = mask_and_target
        evaluation = evaluate_mask(sim32, mask, target, name="plain")
        assert evaluation.window_pvband_nm2 is None
        assert evaluation.worst_corner_l2_nm2 is None
        assert evaluation.worst_corner_epe is None
        assert evaluation.as_dict()["window_pvband_nm2"] is None

    def test_condition_engine_fills_window_columns(self, sim32, kernels32,
                                                   mask_and_target):
        mask, target = mask_and_target
        engine = LithoEngine.for_conditions(
            kernels32, ConditionSet.grid(defocuses=(0.0, 40.0),
                                         doses=(0.98, 1.02)))
        evaluation = evaluate_mask(sim32, mask, target, name="window",
                                   condition_engine=engine)
        assert evaluation.window_pvband_nm2 is not None
        assert evaluation.window_pvband_nm2 >= 0.0
        # Worst corner can be no better than the nominal column.
        assert evaluation.worst_corner_l2_nm2 >= 0.0
        payload = evaluation.as_dict()
        assert payload["window_pvband_nm2"] == evaluation.window_pvband_nm2
        assert payload["worst_corner_l2_nm2"] == \
            evaluation.worst_corner_l2_nm2

    def test_worst_corner_epe_needs_layout(self, sim32, kernels32, litho32,
                                           mask_and_target):
        from repro.geometry import Layout, Rect
        mask, target = mask_and_target
        extent = litho32.extent_nm
        px = extent / 32
        layout = Layout(extent=extent,
                        rects=[Rect(6 * px, 12 * px, 26 * px, 20 * px)],
                        name="bar")
        engine = LithoEngine.for_conditions(kernels32,
                                            ConditionSet.dose_corners())
        without = evaluate_mask(sim32, mask, target, name="no-layout",
                                condition_engine=engine)
        assert without.worst_corner_epe is None
        with_layout = evaluate_mask(sim32, mask, target, layout=layout,
                                    name="layout", condition_engine=engine)
        assert with_layout.worst_corner_epe is not None
        assert with_layout.worst_corner_epe >= with_layout.epe_violations
