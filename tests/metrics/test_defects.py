"""Unit tests for neck/bridge defect detectors (Figure 2 semantics)."""

import numpy as np
import pytest

from repro.metrics import detect_bridges, detect_necks
from repro.metrics.defects import _run_lengths


class TestRunLengths:
    def test_horizontal_runs(self):
        image = np.array([[1, 1, 0, 1]], dtype=bool)
        runs = _run_lengths(image, axis=1)
        np.testing.assert_array_equal(runs, [[2, 2, 0, 1]])

    def test_vertical_runs(self):
        image = np.array([[1], [1], [0], [1]], dtype=bool)
        runs = _run_lengths(image, axis=0)
        np.testing.assert_array_equal(runs.ravel(), [2, 2, 0, 1])

    def test_all_off(self):
        runs = _run_lengths(np.zeros((3, 3), dtype=bool), axis=1)
        assert runs.sum() == 0


class TestNeckDetection:
    def _wire_with_neck(self):
        target = np.zeros((16, 16))
        target[6:10, 1:15] = 1.0  # 4px wide wire
        wafer = target.copy()
        wafer[6, 7:9] = 0.0  # pinch to 3px... go further
        wafer[7, 7:9] = 0.0  # now 2px at columns 7-8
        return wafer, target

    def test_detects_pinch(self):
        wafer, target = self._wire_with_neck()
        defects = detect_necks(wafer, target, min_width_px=3)
        assert len(defects) == 1
        defect = defects[0]
        assert defect.width_px == 2
        assert 7 <= defect.col <= 8

    def test_healthy_wire_clean(self):
        target = np.zeros((16, 16))
        target[6:10, 1:15] = 1.0
        assert detect_necks(target, target, min_width_px=3) == []

    def test_threshold_sensitivity(self):
        wafer, target = self._wire_with_neck()
        assert detect_necks(wafer, target, min_width_px=2) == []
        assert len(detect_necks(wafer, target, min_width_px=4)) >= 1

    def test_off_target_material_not_a_neck(self):
        """Printed slivers outside any target wire are not necks (they
        are handled by L2/bridge analysis)."""
        target = np.zeros((16, 16))
        target[2:6, 2:14] = 1.0
        wafer = target.copy()
        wafer[12, 2:5] = 1.0  # stray 1px-high sliver, off target
        assert detect_necks(wafer, target, min_width_px=3) == []

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            detect_necks(np.zeros((4, 4)), np.zeros((5, 5)), 2)
        with pytest.raises(ValueError):
            detect_necks(np.zeros((4, 4)), np.zeros((4, 4)), 0)

    def test_multiple_necks_reported_separately(self):
        target = np.zeros((16, 32))
        target[6:10, 1:31] = 1.0
        wafer = target.copy()
        wafer[6:8, 6:8] = 0.0    # neck 1
        wafer[8:10, 22:24] = 0.0  # neck 2 (disconnected violation region)
        defects = detect_necks(wafer, target, min_width_px=3)
        assert len(defects) == 2


class TestBridgeDetection:
    def _two_wires(self):
        target = np.zeros((16, 16))
        target[3:6, 1:15] = 1.0
        target[10:13, 1:15] = 1.0
        return target

    def test_clean_print_no_bridge(self):
        target = self._two_wires()
        assert detect_bridges(target, target) == []

    def test_short_detected(self):
        target = self._two_wires()
        wafer = target.copy()
        wafer[6:10, 7:9] = 1.0  # material connecting the wires
        defects = detect_bridges(wafer, target)
        assert len(defects) == 1
        assert len(defects[0].component_labels) == 2

    def test_stray_blob_touching_nothing_ignored(self):
        target = self._two_wires()
        wafer = target.copy()
        wafer[7:9, 1:3] = 1.0  # blob between wires but touching neither
        # The blob is a separate wafer component overlapping zero target
        # components -> not a bridge.
        wafer[6, :] = 0.0
        wafer[9, :] = 0.0
        assert detect_bridges(wafer, target) == []

    def test_three_way_short(self):
        target = np.zeros((24, 16))
        target[2:5, 1:15] = 1.0
        target[10:13, 1:15] = 1.0
        target[18:21, 1:15] = 1.0
        wafer = target.copy()
        wafer[:, 7:9] = 1.0  # vertical short across all three
        defects = detect_bridges(wafer, target)
        assert len(defects) == 1
        assert len(defects[0].component_labels) == 3

    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            detect_bridges(np.zeros((4, 4)), np.zeros((5, 5)))
