"""Unit tests for edge placement error measurement (Figure 2)."""

import numpy as np

from repro.geometry import Layout, Rect, rasterize
from repro.metrics import EPEReport, EPESample, control_points, measure_epe


def _layout_and_perfect_wafer(grid=64, extent=512.0):
    layout = Layout(extent=extent, rects=[Rect(64, 208, 448, 288)])
    wafer = rasterize(layout, grid, antialias=False)
    return layout, wafer


class TestControlPoints:
    def test_four_edges_sampled(self):
        points = control_points(Rect(0, 0, 100, 100), spacing=40.0,
                                edge_margin=10.0)
        normals = {n for _, _, n in points}
        assert normals == {(0, -1), (0, 1), (-1, 0), (1, 0)}

    def test_short_edge_gets_midpoint(self):
        points = control_points(Rect(0, 0, 15, 15), spacing=40.0,
                                edge_margin=10.0)
        bottom = [(x, y) for x, y, n in points if n == (0, -1)]
        assert bottom == [(7.5, 0.0)]

    def test_spacing_respected(self):
        points = control_points(Rect(0, 0, 200, 80), spacing=40.0,
                                edge_margin=10.0)
        bottom_x = sorted(x for x, y, n in points if n == (0, -1))
        assert len(bottom_x) >= 4
        assert all(b - a <= 41 for a, b in zip(bottom_x[:-1], bottom_x[1:]))


class TestMeasureEPE:
    def test_perfect_print_zero_epe(self):
        layout, wafer = _layout_and_perfect_wafer()
        report = measure_epe(wafer, layout, threshold=10.0)
        assert report.violations == 0
        assert all(abs(s.epe) < 8.0 + 1e-9 for s in report.samples)

    def test_uniform_growth_positive_epe(self):
        layout, wafer = _layout_and_perfect_wafer()
        grown = np.zeros_like(wafer, dtype=bool)
        # Dilate by 2 pixels (16nm) in every direction.
        for dy in range(-2, 3):
            for dx in range(-2, 3):
                grown |= np.roll(np.roll(wafer.astype(bool), dy, 0), dx, 1)
        report = measure_epe(grown.astype(float), layout, threshold=10.0)
        outward = [s.epe for s in report.samples]
        assert np.median(outward) >= 8.0  # ~2 px growth
        assert report.violations > 0

    def test_pullback_negative_epe(self):
        layout = Layout(extent=512.0, rects=[Rect(64, 208, 448, 288)])
        # Print a shorter wire: 3px (24nm) pulled back on the right end.
        shrunk = Layout(extent=512.0, rects=[Rect(64, 208, 424, 288)])
        wafer = rasterize(shrunk, 64, antialias=False)
        report = measure_epe(wafer, layout, threshold=10.0)
        right_edge = [s for s in report.samples if s.normal == (1, 0)]
        assert all(s.epe < 0 for s in right_edge)
        assert any(s.violates(10.0) for s in right_edge)

    def test_nothing_printed_infinite_epe(self):
        layout = Layout(extent=512.0, rects=[Rect(64, 208, 448, 288)])
        wafer = np.zeros((64, 64))
        report = measure_epe(wafer, layout, threshold=10.0)
        assert report.violations == len(report.samples)
        assert report.max_abs_epe == float("inf")

    def test_report_counts(self):
        samples = [EPESample(0, 0, (1, 0), 5.0),
                   EPESample(0, 0, (1, 0), -15.0),
                   EPESample(0, 0, (1, 0), 25.0)]
        report = EPEReport(samples=samples, threshold=10.0)
        assert report.violations == 2
        assert report.max_abs_epe == 25.0

    def test_threshold_changes_violations(self):
        layout, wafer = _layout_and_perfect_wafer()
        grown = np.zeros_like(wafer, dtype=bool)
        for dy in range(-2, 3):
            for dx in range(-2, 3):
                grown |= np.roll(np.roll(wafer.astype(bool), dy, 0), dx, 1)
        strict = measure_epe(grown.astype(float), layout, threshold=8.0)
        loose = measure_epe(grown.astype(float), layout, threshold=40.0)
        assert strict.violations > loose.violations


class TestHotspots:
    """Hotspot extraction feeds clip_result telemetry and the HTML
    report's overlay (ISSUE 9)."""

    def _report(self):
        samples = [EPESample(0, 0, (1, 0), 5.0),      # sub-threshold
                   EPESample(1, 0, (1, 0), -15.0),
                   EPESample(2, 0, (1, 0), 25.0),
                   EPESample(3, 0, (1, 0), float("inf")),
                   EPESample(4, 0, (1, 0), -10.0)]    # exactly at: no
        return EPEReport(samples=samples, threshold=10.0)

    def test_only_violating_samples_extracted(self):
        hotspots = self._report().hotspots()
        assert len(hotspots) == 3
        assert {spot["x"] for spot in hotspots} == {1.0, 2.0, 3.0}

    def test_sorted_worst_first_nonfinite_ahead(self):
        hotspots = self._report().hotspots()
        assert not np.isfinite(hotspots[0]["epe"])
        assert [spot["epe"] for spot in hotspots[1:]] == [25.0, -15.0]

    def test_limit_keeps_worst_sites(self):
        hotspots = self._report().hotspots(limit=2)
        assert len(hotspots) == 2
        assert hotspots[1]["epe"] == 25.0

    def test_dict_payload_shape(self):
        for spot in self._report().hotspots():
            assert set(spot) == {"x", "y", "epe"}
            assert isinstance(spot["x"], float)
            assert isinstance(spot["epe"], float)

    def test_no_violations_is_empty(self):
        report = EPEReport(samples=[EPESample(0, 0, (1, 0), 1.0)],
                           threshold=10.0)
        assert report.hotspots() == []

    def test_clip_boundary_segments_measured(self):
        # A wire touching the clip boundary: hotspots from a pulled-back
        # print carry real edge coordinates inside the window.
        layout = Layout(extent=512.0, rects=[Rect(0, 208, 512, 288)])
        shrunk = Layout(extent=512.0, rects=[Rect(0, 208, 472, 288)])
        wafer = rasterize(shrunk, 64, antialias=False)
        report = measure_epe(wafer, layout, threshold=10.0)
        hotspots = report.hotspots()
        assert hotspots
        for spot in hotspots:
            assert 0.0 <= spot["x"] <= 512.0
            assert 0.0 <= spot["y"] <= 512.0
