"""Unit tests for edge placement error measurement (Figure 2)."""

import numpy as np

from repro.geometry import Layout, Rect, rasterize
from repro.metrics import EPEReport, EPESample, control_points, measure_epe


def _layout_and_perfect_wafer(grid=64, extent=512.0):
    layout = Layout(extent=extent, rects=[Rect(64, 208, 448, 288)])
    wafer = rasterize(layout, grid, antialias=False)
    return layout, wafer


class TestControlPoints:
    def test_four_edges_sampled(self):
        points = control_points(Rect(0, 0, 100, 100), spacing=40.0,
                                edge_margin=10.0)
        normals = {n for _, _, n in points}
        assert normals == {(0, -1), (0, 1), (-1, 0), (1, 0)}

    def test_short_edge_gets_midpoint(self):
        points = control_points(Rect(0, 0, 15, 15), spacing=40.0,
                                edge_margin=10.0)
        bottom = [(x, y) for x, y, n in points if n == (0, -1)]
        assert bottom == [(7.5, 0.0)]

    def test_spacing_respected(self):
        points = control_points(Rect(0, 0, 200, 80), spacing=40.0,
                                edge_margin=10.0)
        bottom_x = sorted(x for x, y, n in points if n == (0, -1))
        assert len(bottom_x) >= 4
        assert all(b - a <= 41 for a, b in zip(bottom_x[:-1], bottom_x[1:]))


class TestMeasureEPE:
    def test_perfect_print_zero_epe(self):
        layout, wafer = _layout_and_perfect_wafer()
        report = measure_epe(wafer, layout, threshold=10.0)
        assert report.violations == 0
        assert all(abs(s.epe) < 8.0 + 1e-9 for s in report.samples)

    def test_uniform_growth_positive_epe(self):
        layout, wafer = _layout_and_perfect_wafer()
        grown = np.zeros_like(wafer, dtype=bool)
        # Dilate by 2 pixels (16nm) in every direction.
        for dy in range(-2, 3):
            for dx in range(-2, 3):
                grown |= np.roll(np.roll(wafer.astype(bool), dy, 0), dx, 1)
        report = measure_epe(grown.astype(float), layout, threshold=10.0)
        outward = [s.epe for s in report.samples]
        assert np.median(outward) >= 8.0  # ~2 px growth
        assert report.violations > 0

    def test_pullback_negative_epe(self):
        layout = Layout(extent=512.0, rects=[Rect(64, 208, 448, 288)])
        # Print a shorter wire: 3px (24nm) pulled back on the right end.
        shrunk = Layout(extent=512.0, rects=[Rect(64, 208, 424, 288)])
        wafer = rasterize(shrunk, 64, antialias=False)
        report = measure_epe(wafer, layout, threshold=10.0)
        right_edge = [s for s in report.samples if s.normal == (1, 0)]
        assert all(s.epe < 0 for s in right_edge)
        assert any(s.violates(10.0) for s in right_edge)

    def test_nothing_printed_infinite_epe(self):
        layout = Layout(extent=512.0, rects=[Rect(64, 208, 448, 288)])
        wafer = np.zeros((64, 64))
        report = measure_epe(wafer, layout, threshold=10.0)
        assert report.violations == len(report.samples)
        assert report.max_abs_epe == float("inf")

    def test_report_counts(self):
        samples = [EPESample(0, 0, (1, 0), 5.0),
                   EPESample(0, 0, (1, 0), -15.0),
                   EPESample(0, 0, (1, 0), 25.0)]
        report = EPEReport(samples=samples, threshold=10.0)
        assert report.violations == 2
        assert report.max_abs_epe == 25.0

    def test_threshold_changes_violations(self):
        layout, wafer = _layout_and_perfect_wafer()
        grown = np.zeros_like(wafer, dtype=bool)
        for dy in range(-2, 3):
            for dx in range(-2, 3):
                grown |= np.roll(np.roll(wafer.astype(bool), dy, 0), dx, 1)
        strict = measure_epe(grown.astype(float), layout, threshold=8.0)
        loose = measure_epe(grown.astype(float), layout, threshold=40.0)
        assert strict.violations > loose.violations
