"""Unit tests for mask evaluation reports and the Table 2 formatter."""

import pytest

from repro.geometry import Layout, Rect, rasterize
from repro.metrics import MaskEvaluation, comparison_table, evaluate_mask


@pytest.fixture(scope="module")
def clip64():
    return Layout(extent=512.0, rects=[Rect(64, 216, 448, 296)],
                  name="report-clip")


class TestEvaluateMask:
    def test_full_evaluation(self, sim64, clip64):
        target = (rasterize(clip64, 64) >= 0.5).astype(float)
        evaluation = evaluate_mask(sim64, target, target, layout=clip64,
                                   name="raw-target", runtime_seconds=1.5)
        assert evaluation.name == "raw-target"
        assert evaluation.l2_px >= 0
        assert evaluation.l2_nm2 == evaluation.l2_px * 64.0
        assert evaluation.pvband_nm2 >= 0
        assert evaluation.epe_violations is not None
        assert evaluation.runtime_seconds == 1.5

    def test_without_layout_skips_epe(self, sim64, clip64):
        target = (rasterize(clip64, 64) >= 0.5).astype(float)
        evaluation = evaluate_mask(sim64, target, target)
        assert evaluation.epe_violations is None
        assert evaluation.neck_defects is not None

    def test_as_dict(self, sim64, clip64):
        target = (rasterize(clip64, 64) >= 0.5).astype(float)
        data = evaluate_mask(sim64, target, target).as_dict()
        assert set(data) >= {"name", "l2_nm2", "pvband_nm2"}


def _eval(name, l2, pvb, rt):
    return MaskEvaluation(name=name, l2_px=l2, l2_nm2=l2 * 64, pvband_nm2=pvb,
                          runtime_seconds=rt)


class TestComparisonTable:
    def test_format_contains_rows_and_ratio(self):
        columns = {
            "ILT": [_eval("c1", 100, 500, 10.0), _eval("c2", 200, 700, 12.0)],
            "GAN-OPC": [_eval("c1", 90, 450, 5.0), _eval("c2", 180, 650, 6.0)],
        }
        table = comparison_table(columns, baseline="ILT")
        assert "c1" in table and "c2" in table
        assert "average" in table and "ratio" in table
        # GAN L2 ratio = (90+180)/(100+200) = 0.9
        assert "0.900" in table

    def test_validates_empty(self):
        with pytest.raises(ValueError):
            comparison_table({})

    def test_validates_unequal_lengths(self):
        with pytest.raises(ValueError):
            comparison_table({"a": [_eval("c", 1, 1, 1)],
                              "b": []})

    def test_validates_unknown_baseline(self):
        with pytest.raises(ValueError):
            comparison_table({"a": [_eval("c", 1, 1, 1)]}, baseline="zzz")

    def test_default_baseline_is_first(self):
        columns = {"first": [_eval("c", 100, 100, 1.0)],
                   "second": [_eval("c", 50, 100, 1.0)]}
        table = comparison_table(columns)
        assert "0.500" in table
