"""Integration tests for the experiment harness (quick scale)."""

import numpy as np
import pytest

from repro.bench import (ExperimentConfig, Pipeline, iccad13_suite,
                         run_figure8, run_figure9, run_table2,
                         train_generators)


@pytest.fixture(scope="module")
def pipeline():
    return Pipeline.build(ExperimentConfig.quick())


@pytest.fixture(scope="module")
def generators(pipeline):
    return train_generators(pipeline)


@pytest.fixture(scope="module")
def table2(pipeline, generators):
    clips = iccad13_suite(pipeline.litho)[:3]
    return run_table2(pipeline, generators, clips=clips)


class TestExperimentConfig:
    def test_presets_scale_down(self):
        assert ExperimentConfig.quick().grid < ExperimentConfig().grid
        assert ExperimentConfig.paper().dataset_size == 4000


class TestTrainGenerators:
    def test_histories_cover_iterations(self, pipeline, generators):
        cfg = pipeline.config
        assert generators.gan_history.iterations == cfg.gan_iterations
        assert generators.pgan_history.iterations == cfg.gan_iterations
        assert generators.pretrain_history.iterations == cfg.pretrain_iterations

    def test_generators_distinct(self, pipeline, generators, rng):
        from repro import nn
        x = nn.Tensor(rng.random((1, 1, pipeline.config.grid,
                                  pipeline.config.grid)))
        generators.gan.eval(), generators.pgan.eval()
        assert not np.allclose(generators.gan(x).data,
                               generators.pgan(x).data)


class TestTable2:
    def test_columns_cover_methods_and_clips(self, table2):
        assert set(table2.columns) == {"ILT", "GAN-OPC", "PGAN-OPC"}
        for evals in table2.columns.values():
            assert len(evals) == 3

    def test_masks_recorded(self, table2):
        for method, masks in table2.masks.items():
            assert len(masks) == 3
            for mask in masks:
                assert set(np.unique(mask)) <= {0.0, 1.0}

    def test_runtimes_positive(self, table2):
        for evals in table2.columns.values():
            assert all(e.runtime_seconds > 0 for e in evals)

    def test_table_text_formatted(self, table2):
        assert "ratio" in table2.table
        assert "iccad13-01" in table2.table

    def test_averages_and_ratio(self, table2):
        l2, pvb, rt = table2.averages("ILT")
        assert l2 >= 0 and pvb >= 0 and rt > 0
        ratios = table2.ratio("GAN-OPC")
        assert len(ratios) == 3
        assert table2.ratio("ILT") == (1.0, 1.0, 1.0)

    def test_stage_seconds_per_clip(self, table2):
        assert set(table2.stage_seconds) == {"ILT", "GAN-OPC", "PGAN-OPC"}
        for method, stages in table2.stage_seconds.items():
            assert len(stages) == 3
            for entry in stages:
                assert set(entry) == {"generation", "refinement"}
        # ILT has no generator stage; the flows do.
        assert all(s["generation"] == 0.0
                   for s in table2.stage_seconds["ILT"])
        assert all(s["generation"] > 0.0
                   for s in table2.stage_seconds["PGAN-OPC"])

    def test_stage_averages_consistent_with_runtime(self, table2):
        for method in ("ILT", "GAN-OPC", "PGAN-OPC"):
            stages = table2.stage_averages(method)
            _, _, runtime = table2.averages(method)
            total = stages["generation"] + stages["refinement"]
            # Stage split covers (almost all of) the reported runtime;
            # the ILT column times the optimize call from outside, so
            # allow bookkeeping slack around the stage sum.  Both sides
            # are wall-clock on tiny workloads, so the lower bound is
            # generous — it guards against the split dropping a stage,
            # not against scheduler noise.
            assert total <= runtime * 1.001
            assert total >= runtime * 0.25


class TestWindowTable2:
    @pytest.fixture(scope="class")
    def window_table2(self, pipeline, generators):
        from repro.litho import ConditionSet
        clips = iccad13_suite(pipeline.litho)[:2]
        return run_table2(pipeline, generators, clips=clips,
                          conditions=ConditionSet.dose_corners(
                              pipeline.litho.dose_variation))

    def test_nominal_run_has_no_window_metrics(self, table2):
        assert not table2.has_window_metrics
        assert table2.window_averages("ILT") is None

    def test_window_metrics_populated(self, window_table2):
        assert window_table2.has_window_metrics
        for evals in window_table2.columns.values():
            assert len(evals) == 2
            for evaluation in evals:
                assert evaluation.window_pvband_nm2 is not None
                assert evaluation.worst_corner_l2_nm2 >= evaluation.l2_nm2

    def test_window_averages_and_table(self, window_table2):
        averages = window_table2.window_averages("PGAN-OPC")
        assert averages["window_pvband_nm2"] >= 0.0
        assert averages["worst_corner_l2_nm2"] > 0.0
        text = window_table2.window_table()
        for method in ("ILT", "GAN-OPC", "PGAN-OPC"):
            assert method in text

    def test_reporting_corners_keep_nominal_masks(self, table2,
                                                  window_table2):
        """--corners without a pw-objective only adds reporting: the
        optimized masks are bit-exact with the nominal run."""
        for method, masks in table2.masks.items():
            for i, window_mask in enumerate(window_table2.masks[method][:2]):
                np.testing.assert_array_equal(window_mask, masks[i])


class TestFigures:
    def test_figure8_gallery_rows(self, pipeline, table2):
        rows = run_figure8(pipeline, table2)
        assert len(rows) == 5  # masks x2, wafers x2, targets
        assert all(len(row) == 3 for row in rows)
        grid = pipeline.config.grid
        assert rows[0][0].shape == (grid, grid)

    def test_figure9_defect_census(self, pipeline, table2):
        comparisons = run_figure9(pipeline, table2)
        assert len(comparisons) == 3
        for comp in comparisons:
            assert comp.ilt_bridges >= 0
            assert comp.pgan_necks >= 0
            assert comp.ilt_overlay.shape == comp.pgan_overlay.shape


class TestTable2Parity:
    """Parallel Table 2 must account for every worker litho call
    (ISSUE 8 satellite): the shipped engine-counter deltas summed over
    the fleet reconcile 1:1 with the serial run's parent counters."""

    @pytest.fixture(scope="class")
    def parallel_table2(self, pipeline, generators):
        clips = iccad13_suite(pipeline.litho)[:3]
        return run_table2(pipeline, generators, clips=clips, workers=2)

    def test_engine_counts_match_serial(self, table2, parallel_table2):
        assert table2.pool_stats is None
        assert parallel_table2.pool_stats is not None
        for counter in ("forward_calls", "forward_masks",
                        "gradient_calls", "gradient_masks"):
            assert int(parallel_table2.engine_stats[counter]) == \
                int(table2.engine_stats[counter]), counter

    def test_fleet_table_renders(self, parallel_table2):
        text = parallel_table2.pool_stats.format_table()
        assert "litho engine" in text
        assert parallel_table2.engine_table()  # engine_stats populated

    def test_results_match_serial(self, table2, parallel_table2):
        for method in ("ILT", "GAN-OPC", "PGAN-OPC"):
            for serial, parallel in zip(table2.columns[method],
                                        parallel_table2.columns[method]):
                assert serial.l2_nm2 == pytest.approx(parallel.l2_nm2)
                assert serial.pvband_nm2 == \
                    pytest.approx(parallel.pvband_nm2)
