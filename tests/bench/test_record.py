"""Tests for the machine-readable benchmark record writer."""

import json

import pytest

from repro.bench.record import (RECORD_SCHEMA_VERSION, BenchRecorder,
                                load_record, measure)


class TestMeasure:
    def test_returns_best_of_positive_timing(self):
        calls = []
        seconds = measure(lambda: calls.append(1), repeats=3, warmup=2)
        assert seconds >= 0.0
        assert len(calls) == 5  # warmup + repeats


class TestBenchRecorder:
    def test_add_derives_throughput(self):
        recorder = BenchRecorder("substrate")
        entry = recorder.add("fwd/grid64/batch8", 0.5, grid=64, batch=8)
        assert entry == {"seconds": 0.5, "grid": 64, "batch": 8,
                         "throughput_per_second": 16.0}

    def test_add_without_batch_has_no_throughput(self):
        recorder = BenchRecorder("substrate")
        entry = recorder.add("flow_generation/grid32", 0.25, grid=32,
                             iterations=10)
        assert entry == {"seconds": 0.25, "grid": 32, "iterations": 10.0}

    def test_timeit_records_measured_entry(self):
        recorder = BenchRecorder("substrate")
        recorder.timeit("noop", lambda: None, batch=4, repeats=2)
        entry = recorder.entries["noop"]
        assert entry["seconds"] >= 0.0
        assert entry["batch"] == 4

    def test_write_round_trips_as_strict_json(self, tmp_path):
        recorder = BenchRecorder("substrate")
        recorder.add("b/grid64/batch1", 0.1, grid=64, batch=1)
        recorder.add("a/grid64/batch1", 0.2, grid=64, batch=1)
        path = recorder.write(str(tmp_path / "BENCH_test.json"))
        record = load_record(path)
        assert record["schema"] == RECORD_SCHEMA_VERSION
        assert record["benchmark"] == "substrate"
        assert list(record["entries"]) == ["a/grid64/batch1",
                                           "b/grid64/batch1"]
        assert "platform" in record["machine"]
        # Strict JSON: re-parse with NaN literals rejected.
        with open(path, "r", encoding="utf-8") as fh:
            json.load(fh, parse_constant=lambda t: pytest.fail(
                f"non-strict literal {t!r}"))

    def test_write_is_atomic_replacement(self, tmp_path):
        path = str(tmp_path / "BENCH_test.json")
        first = BenchRecorder("substrate")
        first.add("x", 1.0)
        first.write(path)
        second = BenchRecorder("substrate")
        second.add("y", 2.0)
        second.write(path)
        record = load_record(path)
        assert list(record["entries"]) == ["y"]

    def test_checked_in_substrate_record_is_loadable(self):
        import os
        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        path = os.path.join(root, "BENCH_substrate.json")
        record = load_record(path)
        assert record["benchmark"] == "substrate"
        assert any(name.startswith("engine_forward/")
                   for name in record["entries"])
        assert any(name.startswith("flow_generation/")
                   for name in record["entries"])